//! Cross-crate integration tests: the full SQL → parse → bind →
//! normalize → optimize → execute pipeline through the `Database`
//! facade, validated against the reference interpreter.

use orthopt::common::row::{bag_eq, bag_eq_approx};
use orthopt::common::{DataType, Error, Prng, Value};
use orthopt::storage::{ColumnDef, TableDef};
use orthopt::{Database, OptimizerLevel};

/// A richer schema than the unit fixtures: three tables, nullable
/// columns, an index, and deterministic pseudo-random content.
fn db(seed: u64, customers: usize) -> Database {
    let mut db = Database::new();
    db.catalog_mut()
        .create_table(TableDef::new(
            "customer",
            vec![
                ColumnDef::new("c_custkey", DataType::Int),
                ColumnDef::new("c_nation", DataType::Int),
                ColumnDef::nullable("c_acctbal", DataType::Float),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    db.catalog_mut()
        .create_table(TableDef::new(
            "orders",
            vec![
                ColumnDef::new("o_orderkey", DataType::Int),
                ColumnDef::new("o_custkey", DataType::Int),
                ColumnDef::nullable("o_totalprice", DataType::Float),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    db.catalog_mut()
        .create_table(TableDef::new(
            "nation",
            vec![
                ColumnDef::new("n_nationkey", DataType::Int),
                ColumnDef::new("n_name", DataType::Str),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    let mut rng = Prng::new(seed);
    let c = db.catalog().resolve("customer").unwrap();
    let o = db.catalog().resolve("orders").unwrap();
    let n = db.catalog().resolve("nation").unwrap();
    for i in 0..5i64 {
        db.catalog_mut()
            .table_mut(n)
            .insert(vec![Value::Int(i), Value::str(format!("nation{i}"))])
            .unwrap();
    }
    let mut orderkey = 0i64;
    for i in 0..customers as i64 {
        let bal = if rng.chance(0.15) {
            Value::Null
        } else {
            Value::Float(rng.float_range(-500.0, 5000.0))
        };
        db.catalog_mut()
            .table_mut(c)
            .insert(vec![Value::Int(i), Value::Int(rng.int_range(0, 4)), bal])
            .unwrap();
        for _ in 0..rng.int_range(0, 5) {
            let price = if rng.chance(0.1) {
                Value::Null
            } else {
                Value::Float(rng.float_range(1.0, 900.0))
            };
            db.catalog_mut()
                .table_mut(o)
                .insert(vec![Value::Int(orderkey), Value::Int(i), price])
                .unwrap();
            orderkey += 1;
        }
    }
    db.catalog_mut().table_mut(o).build_index(vec![1]).unwrap();
    db.analyze();
    db
}

/// All levels must agree with the naive reference execution.
fn check_all_levels(db: &Database, sql: &str) {
    let oracle = db.execute_reference(sql).expect(sql);
    for level in OptimizerLevel::ALL {
        let got = db.execute_with(sql, level).expect(sql);
        assert!(
            bag_eq_approx(&oracle.rows, &got.rows, 1e-9),
            "{sql} at {level:?}:\noracle={:?}\ngot={:?}",
            oracle.rows,
            got.rows
        );
    }
}

#[test]
fn scalar_aggregate_subqueries() {
    let db = db(11, 40);
    for sql in [
        "select c_custkey from customer where 800 < \
         (select sum(o_totalprice) from orders where o_custkey = c_custkey)",
        "select c_custkey from customer where 2 <= \
         (select count(*) from orders where o_custkey = c_custkey)",
        "select c_custkey, (select max(o_totalprice) from orders \
         where o_custkey = c_custkey) as biggest from customer",
        "select c_custkey from customer where \
         (select min(o_totalprice) from orders where o_custkey = c_custkey) < 100",
        "select c_custkey from customer where \
         (select avg(o_totalprice) from orders where o_custkey = c_custkey) > 400",
    ] {
        check_all_levels(&db, sql);
    }
}

#[test]
fn existential_subqueries() {
    let db = db(12, 40);
    for sql in [
        "select c_custkey from customer where exists \
         (select 1 from orders where o_custkey = c_custkey and o_totalprice > 500)",
        "select c_custkey from customer where not exists \
         (select 1 from orders where o_custkey = c_custkey)",
        "select c_custkey from customer where c_custkey in \
         (select o_custkey from orders where o_totalprice > 700)",
        "select c_custkey from customer where c_acctbal not in \
         (select o_totalprice from orders where o_custkey = c_custkey)",
        "select c_custkey from customer where c_acctbal > any \
         (select o_totalprice from orders where o_custkey = c_custkey)",
        "select c_custkey from customer where c_acctbal <= all \
         (select o_totalprice from orders where o_custkey = c_custkey)",
    ] {
        check_all_levels(&db, sql);
    }
}

#[test]
fn aggregation_queries() {
    let db = db(13, 60);
    for sql in [
        "select c_nation, count(*) from customer group by c_nation",
        "select o_custkey, sum(o_totalprice), count(o_totalprice), count(*) \
         from orders group by o_custkey having count(*) >= 2",
        "select c_nation, sum(o_totalprice) from customer, orders \
         where c_custkey = o_custkey group by c_nation",
        "select n_name, count(*) from nation, customer \
         where n_nationkey = c_nation group by n_name",
        "select count(*), sum(o_totalprice), avg(o_totalprice) from orders",
        "select distinct c_nation from customer",
        "select count(distinct o_custkey) from orders",
    ] {
        check_all_levels(&db, sql);
    }
}

#[test]
fn joins_and_outerjoins() {
    let db = db(14, 40);
    for sql in [
        "select c_custkey, o_orderkey from customer, orders \
         where c_custkey = o_custkey and o_totalprice > 300",
        "select c_custkey, o_orderkey from customer left outer join orders \
         on o_custkey = c_custkey",
        "select c_custkey from customer left outer join orders \
         on o_custkey = c_custkey and o_totalprice > 600 \
         where o_orderkey is null",
        "select n_name, c_custkey, o_orderkey from nation, customer, orders \
         where n_nationkey = c_nation and c_custkey = o_custkey",
    ] {
        check_all_levels(&db, sql);
    }
}

#[test]
fn set_operations_and_case() {
    let db = db(15, 30);
    for sql in [
        "select c_custkey from customer where c_nation = 1 \
         union all select c_custkey from customer where c_acctbal > 1000",
        "select c_custkey, case when c_acctbal is null then 'unknown' \
         when c_acctbal < 0 then 'debt' else 'ok' end as status from customer",
        "select c_custkey from customer where c_nation in (1, 2, 3)",
        "select c_custkey from customer where c_acctbal between 100 and 2000",
    ] {
        check_all_levels(&db, sql);
    }
}

#[test]
fn nested_subqueries_two_levels() {
    let db = db(16, 25);
    check_all_levels(
        &db,
        "select c_custkey from customer where 1 <= \
         (select count(*) from orders where o_custkey = c_custkey and o_totalprice > \
            (select avg(o_totalprice) from orders where o_custkey = c_custkey))",
    );
}

#[test]
fn exception_subquery_error_matches_reference() {
    let db = db(17, 30);
    // Multiple orders per customer exist, so the scalar subquery without
    // aggregation errors at run time at every level.
    let sql = "select c_custkey, (select o_orderkey from orders \
               where o_custkey = c_custkey) from customer";
    let oracle = db.execute_reference(sql);
    assert_eq!(oracle.unwrap_err(), Error::SubqueryReturnedMoreThanOneRow);
    for level in OptimizerLevel::ALL {
        assert_eq!(
            db.execute_with(sql, level).unwrap_err(),
            Error::SubqueryReturnedMoreThanOneRow,
            "{level:?}"
        );
    }
}

#[test]
fn order_by_is_respected() {
    let db = db(18, 20);
    let r = db
        .execute("select c_custkey, c_acctbal from customer order by c_acctbal, c_custkey")
        .unwrap();
    for w in r.rows.windows(2) {
        let cmp = w[0][1].total_cmp(&w[1][1]);
        assert!(cmp != std::cmp::Ordering::Greater);
    }
}

#[test]
fn empty_inputs_everywhere() {
    let mut empty = Database::new();
    empty
        .catalog_mut()
        .create_table(TableDef::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::nullable("b", DataType::Int),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    empty.analyze();
    for sql in [
        "select a from t",
        "select count(*), sum(b) from t",
        "select a from t where 1 < (select sum(b) from t as u where u.a = t.a)",
        "select a from t where exists (select 1 from t as u where u.a = t.a)",
        "select a, count(*) from t group by a",
    ] {
        let oracle = empty.execute_reference(sql).expect(sql);
        for level in OptimizerLevel::ALL {
            let got = empty.execute_with(sql, level).expect(sql);
            assert!(bag_eq(&oracle.rows, &got.rows), "{sql} at {level:?}");
        }
    }
}

#[test]
fn reproducible_across_identical_databases() {
    let a = db(21, 35);
    let b = db(21, 35);
    let sql = "select c_nation, sum(o_totalprice) from customer, orders \
               where c_custkey = o_custkey group by c_nation";
    assert_eq!(a.execute(sql).unwrap().rows, b.execute(sql).unwrap().rows);
}

#[test]
fn order_by_desc_and_limit() {
    let db = db(22, 25);
    let r = db
        .execute(
            "select c_custkey, c_acctbal from customer order by c_acctbal desc, c_custkey limit 5",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    for w in r.rows.windows(2) {
        assert!(w[0][1].total_cmp(&w[1][1]) != std::cmp::Ordering::Less);
    }
    // Matches the reference path (which applies order + limit too).
    let oracle = db
        .execute_reference(
            "select c_custkey, c_acctbal from customer order by c_acctbal desc, c_custkey limit 5",
        )
        .unwrap();
    assert_eq!(r.rows, oracle.rows);
    // limit 0 yields nothing.
    let empty = db
        .execute("select c_custkey from customer limit 0")
        .unwrap();
    assert!(empty.rows.is_empty());
}

#[test]
fn planning_is_deterministic() {
    let db = db(23, 30);
    let sql = "select c_custkey from customer where 400 < \
               (select sum(o_totalprice) from orders where o_custkey = c_custkey)";
    let a = db.plan(sql, OptimizerLevel::Full).unwrap();
    let b = db.plan(sql, OptimizerLevel::Full).unwrap();
    assert_eq!(a.physical, b.physical);
    assert_eq!(a.search.best_cost, b.search.best_cost);
}

#[test]
fn query_result_renders_as_table() {
    let db = db(24, 5);
    let r = db
        .execute("select c_custkey, c_nation from customer order by c_custkey limit 2")
        .unwrap();
    let table = r.to_table();
    assert!(table.contains("c_custkey"));
    assert!(table.lines().count() >= 4); // header + separator + 2 rows
}

#[test]
fn multiple_subqueries_in_one_predicate() {
    // "a sequence of Apply operators compute the various subqueries
    // over the relational input" (§2.2) — two and three subqueries per
    // predicate, mixing scalar and existential forms.
    let db = db(25, 30);
    for sql in [
        "select c_custkey from customer where \
         (select count(*) from orders where o_custkey = c_custkey) >= 1 and \
         (select max(o_totalprice) from orders where o_custkey = c_custkey) > 300",
        "select c_custkey from customer where exists \
         (select 1 from orders where o_custkey = c_custkey) and \
         c_acctbal > (select avg(o_totalprice) from orders where o_custkey = c_custkey)",
        "select c_custkey, \
         (select min(o_totalprice) from orders where o_custkey = c_custkey) as lo, \
         (select max(o_totalprice) from orders where o_custkey = c_custkey) as hi \
         from customer",
        "select c_custkey from customer where \
         (select count(*) from orders where o_custkey = c_custkey) > \
         (select count(*) from orders where o_custkey = c_custkey and o_totalprice > 400)",
    ] {
        check_all_levels(&db, sql);
    }
}

#[test]
fn subquery_inside_aggregate_argument() {
    let db = db(26, 20);
    check_all_levels(
        &db,
        "select c_nation, sum(c_acctbal) from customer \
         where c_custkey in (select o_custkey from orders) group by c_nation",
    );
}

#[test]
fn correlated_subquery_in_having() {
    // HAVING over a grouped query referencing a second aggregate level.
    let db = db(27, 25);
    check_all_levels(
        &db,
        "select o_custkey, sum(o_totalprice) as total from orders \
         group by o_custkey having sum(o_totalprice) > \
         (select avg(o_totalprice) from orders)",
    );
}
