//! The paper's benchmark queries on generated TPC-H data: every
//! optimizer level must agree on every query, and the marquee plan
//! features (index-lookup Apply for Q2's baseline, SegmentApply
//! availability for Q17) must be present where the paper says they
//! matter.

use orthopt::common::row::bag_eq_approx;
use orthopt::common::Value;
use orthopt::tpch::queries;
use orthopt::{Database, OptimizerLevel};

fn tpch() -> Database {
    Database::tpch(0.002).unwrap()
}

fn check_levels_agree(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    let mut baseline: Option<Vec<Vec<Value>>> = None;
    for level in OptimizerLevel::ALL {
        let got = db.execute_with(sql, level).expect(sql);
        match &baseline {
            None => baseline = Some(got.rows),
            Some(expect) => assert!(
                bag_eq_approx(expect, &got.rows, 1e-6),
                "{sql}\nlevel {level:?} diverged:\n{:?}\nvs\n{:?}",
                expect,
                got.rows
            ),
        }
    }
    baseline.unwrap()
}

#[test]
fn paper_q1_levels_agree_and_find_spenders() {
    let db = tpch();
    let rows = check_levels_agree(&db, &queries::paper_q1(800_000.0));
    assert!(!rows.is_empty());
}

#[test]
fn q2_levels_agree() {
    let db = tpch();
    // The classic parameters may select zero parts at tiny scale; that
    // is fine for agreement, but also run a relaxed variant that is
    // guaranteed non-empty.
    check_levels_agree(&db, &queries::q2_default());
    let relaxed = "select s_acctbal, s_name, p_partkey \
        from part, supplier, partsupp \
        where p_partkey = ps_partkey and s_suppkey = ps_suppkey \
          and p_size < 10 \
          and ps_supplycost = (select min(ps_supplycost) from partsupp \
                               where p_partkey = ps_partkey) \
        order by s_acctbal, s_name, p_partkey";
    let rows = check_levels_agree(&db, relaxed);
    assert!(!rows.is_empty());
}

#[test]
fn q4_levels_agree_and_group_by_priority() {
    let db = tpch();
    let rows = check_levels_agree(&db, &queries::q4("1992-01-01", "1999-01-01"));
    assert!(!rows.is_empty() && rows.len() <= 5);
    // Counts are positive.
    for r in &rows {
        match &r[1] {
            Value::Int(n) => assert!(*n > 0),
            other => panic!("bad count {other:?}"),
        }
    }
}

#[test]
fn q17_levels_agree() {
    let db = tpch();
    let rows = check_levels_agree(&db, &queries::q17_brand_only("brand#23"));
    // Scalar aggregate: exactly one row, possibly NULL at tiny scale.
    assert_eq!(rows.len(), 1);
}

#[test]
fn q17_full_level_explores_segment_apply() {
    let db = tpch();
    let sql = queries::q17_brand_only("brand#23");
    let full = db.plan(&sql, OptimizerLevel::Full).unwrap();
    let without = db.plan(&sql, OptimizerLevel::GroupByReorder).unwrap();
    assert!(
        full.search.exprs > without.search.exprs,
        "SegmentApply rule added nothing: {} vs {} exprs",
        full.search.exprs,
        without.search.exprs
    );
}

#[test]
fn q17_normalizes_flat() {
    let db = tpch();
    let plan = db
        .plan(&queries::q17_default(), OptimizerLevel::Full)
        .unwrap();
    assert_eq!(plan.normal_form.applies, 0, "Q17 should fully flatten");
}

#[test]
fn power_run_is_deterministic() {
    let a = tpch();
    let b = tpch();
    for (name, sql) in queries::power_run() {
        let ra = a.execute(&sql).expect(name);
        let rb = b.execute(&sql).expect(name);
        assert_eq!(ra.rows, rb.rows, "{name}");
    }
}

#[test]
fn q22ish_levels_agree_and_flatten() {
    let db = tpch();
    let rows = check_levels_agree(&db, &queries::q22ish());
    assert!(!rows.is_empty());
    let plan = db.plan(&queries::q22ish(), OptimizerLevel::Full).unwrap();
    assert_eq!(plan.normal_form.applies, 0);
    assert_eq!(plan.normal_form.max1rows, 0);
}

#[test]
fn explain_analyze_covers_q2_and_q17_at_every_level() {
    let db = tpch();
    for sql in [
        queries::q2(15, "standard anodized", "europe"),
        queries::q17_brand_only("brand#23"),
    ] {
        for level in OptimizerLevel::ALL {
            let rendered = db.explain_analyze(&sql, level).expect(&sql);
            assert!(rendered.contains("analyzed:"), "{level:?}\n{rendered}");
            assert!(rendered.contains("rows="), "{level:?}\n{rendered}");
            assert!(rendered.contains("opens="), "{level:?}\n{rendered}");
            // The static verifier signs off on every compiled plan.
            assert!(rendered.contains("plancheck: ok"), "{level:?}\n{rendered}");
            // Every operator line carries a stats block.
            for line in rendered.lines().skip(1) {
                assert!(
                    line.contains("[rows=") || line.contains("plancheck:"),
                    "unannotated line: {line}"
                );
            }
        }
    }
}
