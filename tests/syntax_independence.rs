//! E-SYNTAX: §1.2's syntax-independence claim. "The query processor
//! should then produce the same efficient execution plan for the
//! various equivalent SQL formulations" — verified on the three Q1
//! formulations from §1.1 of the paper.

use orthopt::common::row::bag_eq;
use orthopt::ir::iso;
use orthopt::tpch::queries;
use orthopt::{Database, OptimizerLevel};

fn formulations(threshold: f64) -> [(&'static str, String); 3] {
    [
        ("subquery", queries::paper_q1(threshold)),
        ("outerjoin+having", queries::paper_q1_outerjoin(threshold)),
        ("derived-table", queries::paper_q1_derived(threshold)),
    ]
}

#[test]
fn all_formulations_return_identical_results_at_all_levels() {
    let db = Database::tpch(0.002).unwrap();
    let forms = formulations(800_000.0);
    let reference = db.execute_reference(&forms[0].1).unwrap();
    assert!(!reference.rows.is_empty(), "threshold too high for fixture");
    for (name, sql) in &forms {
        for level in OptimizerLevel::ALL {
            let got = db.execute_with(sql, level).unwrap();
            assert!(
                bag_eq(&reference.rows, &got.rows),
                "{name} at {level:?} diverged"
            );
        }
    }
}

#[test]
fn subquery_and_outerjoin_forms_normalize_to_isomorphic_plans() {
    let db = Database::tpch(0.002).unwrap();
    let forms = formulations(800_000.0);
    let a = db.plan(&forms[0].1, OptimizerLevel::Full).unwrap();
    let b = db.plan(&forms[1].1, OptimizerLevel::Full).unwrap();
    assert!(
        iso::rel_isomorphic(&a.logical, &b.logical).is_some(),
        "normalized plans differ:\n{}\nvs\n{}",
        orthopt::ir::explain::explain(&a.logical),
        orthopt::ir::explain::explain(&b.logical)
    );
}

#[test]
fn derived_table_form_flattens_completely_too() {
    let db = Database::tpch(0.002).unwrap();
    let forms = formulations(800_000.0);
    let c = db.plan(&forms[2].1, OptimizerLevel::Full).unwrap();
    assert_eq!(c.normal_form.applies, 0);
    assert_eq!(c.normal_form.max1rows, 0);
}

#[test]
fn search_costs_converge_across_formulations() {
    // Beyond isomorphic normal forms: with the full rule set, the
    // *chosen* plans of all three formulations cost the same (the rules
    // connect the Figure-1 lattice in both directions). Pinned to
    // serial planning: exchange placement is a greedy post-pass whose
    // opportunities depend on physical plan shape, so its savings are
    // not covered by the §1.2 convergence claim.
    let mut db = Database::tpch(0.002).unwrap();
    db.set_parallelism(1);
    let forms = formulations(800_000.0);
    let costs: Vec<f64> = forms
        .iter()
        .map(|(_, sql)| db.plan(sql, OptimizerLevel::Full).unwrap().search.best_cost)
        .collect();
    let max = costs.iter().copied().fold(f64::MIN, f64::max);
    let min = costs.iter().copied().fold(f64::MAX, f64::min);
    assert!((max - min) / max < 0.05, "best costs diverge: {costs:?}");
}
