#!/usr/bin/env bash
# Regenerates every paper-reproduction artifact into results/.
# See DESIGN.md for the per-experiment index and EXPERIMENTS.md for the
# recorded paper-vs-measured discussion.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results

cargo build --release -p orthopt-bench --bins

echo "== E-FIG1: strategy lattice =="
./target/release/fig1_table "${FIG1_SCALE:-0.005}" | tee results/fig1_table.txt
echo
echo "== E-FIG8: power-run table =="
./target/release/fig8_table "${FIG8_SCALE:-0.005}" | tee results/fig8_table.txt
echo
echo "== E-FIG9: Q2/Q17 series =="
./target/release/fig9_table "${FIG9_MAX_SCALE:-0.02}" | tee results/fig9_table.txt
echo
echo "== quick probe (plans + costs at every level) =="
./target/release/power_probe "${PROBE_SCALE:-0.005}" | tee results/power_probe.txt
echo
echo "== criterion ablations (fig1/fig9/abl_*) =="
cargo bench -p orthopt-bench 2>&1 | tee results/criterion.txt
