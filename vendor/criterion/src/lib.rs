//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small API slice the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros — measuring wall-clock medians and printing
//! one line per benchmark instead of criterion's statistical reports.

use std::time::{Duration, Instant};

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            rounds: self.sample_size,
        };
        f(&mut b, input);
        b.samples.sort();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!("  {:<40} median {:>12.3?}", id.0, median);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; runs and times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    rounds: usize,
}

impl Bencher {
    /// Times `routine` once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.rounds {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
        }
    }
}

/// Opaque "black box" re-export used by benches to defeat optimization.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
