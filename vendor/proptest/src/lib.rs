//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the slice of proptest the workspace's property
//! tests rely on:
//!
//! * [`Strategy`] with `prop_map`, ranges, tuples, [`Just`], regex-ish
//!   string strategies, and [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], and [`prop_assert*`] macros;
//! * [`test_runner::Config`] (`ProptestConfig`) with a `cases` knob.
//!
//! Differences from real proptest: generation is a deterministic
//! splitmix64 stream seeded from the test name and case index, and there
//! is **no shrinking** — a failing case panics with the generated inputs
//! instead.

/// Test-runner types: configuration and case-level errors.
pub mod test_runner {
    /// Configuration for a `proptest!` block (`ProptestConfig` in the
    /// prelude). Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Shrink-iteration budget. Accepted for source compatibility
        /// with real proptest; this stub never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            Config {
                cases,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with a message.
        Fail(String),
        /// Case rejected (counted, not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one named test case: same (name, case) → same stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A generator of values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            T: std::fmt::Debug,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(move |rng| self.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Fn(&mut TestRng) -> V>;

    impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        T: std::fmt::Debug,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Weighted choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u32,
    }

    impl<V: std::fmt::Debug> Union<V> {
        /// A union of `(weight, strategy)` arms; weights must sum > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<V: std::fmt::Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i64, i32, u32, usize);

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Pattern strings as strategies, supporting the subset of regex the
    /// tests use: literal chars, `[a-c]` classes, `\PC` (any printable),
    /// each optionally repeated with `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for (atom, lo, hi) in &atoms {
                let n = *lo + rng.below((*hi - *lo + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(atom.pick(rng));
                }
            }
            out
        }
    }

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    impl Atom {
        fn pick(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::Literal(c) => *c,
                Atom::Printable => (b' ' + rng.below(95) as u8) as char,
                Atom::Class(ranges) => {
                    let total: u64 = ranges.iter().map(|(a, b)| *b as u64 - *a as u64 + 1).sum();
                    let mut pick = rng.below(total);
                    for (a, b) in ranges {
                        let span = *b as u64 - *a as u64 + 1;
                        if pick < span {
                            return char::from_u32(*a as u32 + pick as u32).unwrap();
                        }
                        pick -= span;
                    }
                    unreachable!()
                }
            }
        }
    }

    fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    // Only `\PC` (printable) is supported; other escapes
                    // fall back to the escaped literal character.
                    if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                        i += 3;
                        Atom::Printable
                    } else {
                        i += 2;
                        Atom::Literal(chars[i - 1])
                    }
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated character class")
                        + i;
                    let mut ranges = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            ranges.push((chars[j], chars[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((chars[j], chars[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    Atom::Class(ranges)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional {m,n} repetition.
            let (lo, hi) = if chars.get(i) == Some(&'{') {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated repetition")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                    None => {
                        let n = body.parse().unwrap();
                        (n, n)
                    }
                };
                i = close + 1;
                (lo, hi)
            } else {
                (1, 1)
            };
            out.push((atom, lo, hi));
        }
        out
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};

    /// A `Vec` whose length is uniform in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Defines `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($config:expr;
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::strategy::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let inputs = format!("{:?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => {
                            panic!("case {case}/{}: {e}\ninputs: {inputs}", config.cases)
                        }
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strat`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion that fails the current case (instead of panicking) so the
/// runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the crate root (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}
