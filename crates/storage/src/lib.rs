#![warn(missing_docs)]
//! In-memory storage layer: tables, declared keys, hash indexes,
//! per-column statistics and a catalog.
//!
//! This is the substrate under the optimizer and executor. Declared keys
//! feed the IR's key derivation (identities (7)–(9) of the paper require
//! a key on the outer relation); hash indexes enable the *re-introduction
//! of correlated execution* as index-lookup joins (§4); statistics feed
//! cardinality estimation in the cost-based optimizer (§4).

pub mod catalog;
pub mod index;
pub mod stats;
pub mod table;

pub use catalog::Catalog;
pub use index::Index;
pub use stats::{ColumnStats, TableStats};
pub use table::{ColumnDef, Table, TableDef};
