//! Table statistics for cardinality estimation.

use std::collections::HashSet;

use orthopt_common::{Row, Value};

use crate::table::TableDef;

/// Per-column statistics.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of distinct non-NULL values.
    pub ndv: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Minimum non-NULL value (total order), if any rows exist.
    pub min: Option<Value>,
    /// Maximum non-NULL value, if any rows exist.
    pub max: Option<Value>,
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total row count.
    pub row_count: u64,
    /// One entry per column, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Exact statistics from a full scan — fine at in-memory scale, and
    /// it keeps the cost model's inputs honest in experiments.
    pub fn compute(def: &TableDef, rows: &[Row]) -> TableStats {
        let ncols = def.columns.len();
        let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); ncols];
        let mut nulls = vec![0u64; ncols];
        let mut mins: Vec<Option<Value>> = vec![None; ncols];
        let mut maxs: Vec<Option<Value>> = vec![None; ncols];
        for row in rows {
            for (i, v) in row.iter().enumerate() {
                if v.is_null() {
                    nulls[i] += 1;
                    continue;
                }
                distinct[i].insert(v.clone());
                match &mins[i] {
                    Some(m) if m.total_cmp(v).is_le() => {}
                    _ => mins[i] = Some(v.clone()),
                }
                match &maxs[i] {
                    Some(m) if m.total_cmp(v).is_ge() => {}
                    _ => maxs[i] = Some(v.clone()),
                }
            }
        }
        let columns = (0..ncols)
            .map(|i| ColumnStats {
                ndv: distinct[i].len() as u64,
                null_count: nulls[i],
                min: mins[i].take(),
                max: maxs[i].take(),
            })
            .collect();
        TableStats {
            row_count: rows.len() as u64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnDef;
    use orthopt_common::DataType;

    #[test]
    fn compute_counts_ndv_nulls_min_max() {
        let def = TableDef::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::nullable("b", DataType::Int),
            ],
            vec![],
        );
        let rows = vec![
            vec![Value::Int(3), Value::Null],
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(3), Value::Int(20)],
        ];
        let s = TableStats::compute(&def, &rows);
        assert_eq!(s.row_count, 3);
        assert_eq!(s.columns[0].ndv, 2);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[1].null_count, 1);
        assert_eq!(s.columns[1].ndv, 2);
    }

    #[test]
    fn empty_table_stats() {
        let def = TableDef::new("t", vec![ColumnDef::new("a", DataType::Int)], vec![]);
        let s = TableStats::compute(&def, &[]);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].ndv, 0);
        assert!(s.columns[0].min.is_none());
    }
}
