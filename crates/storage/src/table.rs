//! Table definitions and row storage.

use std::sync::OnceLock;

use orthopt_common::column::{Bitmap, ColData, Column, ColumnData};
use orthopt_common::{DataType, Error, Result, Row, Value};

use crate::index::Index;
use crate::stats::TableStats;

/// Schema of one column of a base table.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name as referenced in SQL (lower-cased by the catalog).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Whether NULLs may appear. Non-nullable columns matter for the
    /// paper's `COUNT(*) → COUNT(c)` rewrite (identity (9)) and for
    /// outerjoin simplification.
    pub nullable: bool,
}

impl ColumnDef {
    /// Convenience constructor for a non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            ty,
            nullable: false,
        }
    }

    /// Convenience constructor for a nullable column.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            nullable: true,
            ..ColumnDef::new(name, ty)
        }
    }
}

/// Static definition of a table: name, columns, and declared keys
/// (each key is a set of column positions whose combination is unique).
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name (lower-cased).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Declared unique keys, as positional column index sets.
    pub keys: Vec<Vec<usize>>,
}

impl TableDef {
    /// Creates a definition; key positions are validated on table creation.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>, keys: Vec<Vec<usize>>) -> Self {
        TableDef {
            name: name.into().to_ascii_lowercase(),
            columns,
            keys,
        }
    }

    /// Finds a column position by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }
}

/// A heap of rows plus secondary hash indexes and gathered statistics.
#[derive(Debug)]
pub struct Table {
    /// Schema and key declarations.
    pub def: TableDef,
    rows: Vec<Row>,
    indexes: Vec<Index>,
    stats: Option<TableStats>,
    /// Columnar mirror of `rows`, built lazily on first columnar scan
    /// and invalidated by mutation. Scans slice these columns zero-copy.
    columnar: OnceLock<Vec<Column>>,
}

impl Table {
    /// Creates an empty table, validating column/key declarations.
    pub fn new(def: TableDef) -> Result<Self> {
        let ncols = def.columns.len();
        for key in &def.keys {
            if key.is_empty() || key.iter().any(|&i| i >= ncols) {
                return Err(Error::internal(format!(
                    "invalid key declaration on table {}",
                    def.name
                )));
            }
        }
        Ok(Table {
            def,
            rows: Vec::new(),
            indexes: Vec::new(),
            stats: None,
            columnar: OnceLock::new(),
        })
    }

    /// Appends a row after checking arity and types. Hash indexes are
    /// maintained incrementally; statistics are invalidated (recompute
    /// via [`Table::analyze`] after bulk loads).
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.def.columns.len() {
            return Err(Error::Exec(format!(
                "row arity {} does not match table {} ({} columns)",
                row.len(),
                self.def.name,
                self.def.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.def.columns) {
            match v.data_type() {
                None if !c.nullable => {
                    return Err(Error::Exec(format!(
                        "NULL in non-nullable column {}.{}",
                        self.def.name, c.name
                    )));
                }
                Some(t) if t != c.ty => {
                    return Err(Error::TypeMismatch(format!(
                        "{}.{} expects {}, got {t}",
                        self.def.name, c.name, c.ty
                    )));
                }
                _ => {}
            }
        }
        let pos = self.rows.len();
        for ix in &mut self.indexes {
            ix.insert_row(pos, &row);
        }
        self.rows.push(row);
        self.stats = None;
        self.columnar = OnceLock::new();
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Columnar mirror of the table, one [`Column`] per schema column,
    /// in insertion order. Built on first call after a mutation (O(n)
    /// typed transpose — insert validation already guarantees each
    /// value matches the declared type or is NULL), then served from
    /// cache; scans slice the cached columns zero-copy.
    pub fn columns(&self) -> &[Column] {
        self.columnar.get_or_init(|| {
            self.def
                .columns
                .iter()
                .enumerate()
                .map(|(j, c)| {
                    let validity = Bitmap::from_flags(self.rows.iter().map(|r| !r[j].is_null()));
                    let data = match c.ty {
                        DataType::Int => ColData::Int(
                            self.rows
                                .iter()
                                .map(|r| if let Value::Int(i) = r[j] { i } else { 0 })
                                .collect(),
                        ),
                        DataType::Float => ColData::Float(
                            self.rows
                                .iter()
                                .map(|r| if let Value::Float(f) = r[j] { f } else { 0.0 })
                                .collect(),
                        ),
                        DataType::Bool => ColData::Bool(
                            self.rows
                                .iter()
                                .map(|r| matches!(r[j], Value::Bool(true)))
                                .collect(),
                        ),
                        DataType::Str => ColData::Str(
                            self.rows
                                .iter()
                                .map(|r| {
                                    if let Value::Str(s) = &r[j] {
                                        s.clone()
                                    } else {
                                        std::sync::Arc::from("")
                                    }
                                })
                                .collect(),
                        ),
                        DataType::Date => ColData::Date(
                            self.rows
                                .iter()
                                .map(|r| if let Value::Date(d) = r[j] { d } else { 0 })
                                .collect(),
                        ),
                    };
                    Column::from_data(ColumnData { data, validity })
                })
                .collect()
        })
    }

    /// Builds (or rebuilds) a hash index over the given column positions.
    pub fn build_index(&mut self, cols: Vec<usize>) -> Result<()> {
        if cols.iter().any(|&i| i >= self.def.columns.len()) {
            return Err(Error::internal("index column out of range"));
        }
        // Replace an existing index on the same columns.
        self.indexes.retain(|ix| ix.cols != cols);
        let index = Index::build(cols, &self.rows);
        self.indexes.push(index);
        Ok(())
    }

    /// Drops the index on exactly these column positions, if present
    /// (used by experiments that isolate set-oriented strategies).
    pub fn drop_index(&mut self, cols: &[usize]) {
        self.indexes.retain(|ix| {
            !(ix.cols.len() == cols.len() && cols.iter().all(|c| ix.cols.contains(c)))
        });
    }

    /// Finds an index whose columns are exactly `cols` (order-insensitive).
    pub fn index_on(&self, cols: &[usize]) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.cols.len() == cols.len() && cols.iter().all(|c| ix.cols.contains(c)))
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Index *selection*: given the base-column positions equality
    /// predicates are available on, picks the index those predicates
    /// can drive — the widest index whose columns are all among
    /// `candidates` — and returns its columns in canonical (strictly
    /// ascending) order, the order correlated index-lookup plans probe
    /// in. `None` when no index is fully covered.
    pub fn select_index(&self, candidates: &[usize]) -> Option<Vec<usize>> {
        self.indexes
            .iter()
            .filter(|ix| ix.cols.iter().all(|c| candidates.contains(c)))
            .max_by_key(|ix| ix.cols.len())
            .map(|ix| {
                let mut cols = ix.cols.clone();
                cols.sort_unstable();
                cols
            })
    }

    /// Computes statistics over the current contents.
    pub fn analyze(&mut self) {
        self.stats = Some(TableStats::compute(&self.def, &self.rows));
    }

    /// Gathered statistics, if [`Table::analyze`] has run since the last
    /// mutation.
    pub fn stats(&self) -> Option<&TableStats> {
        self.stats.as_ref()
    }

    /// Row indexes matching `key` through the index on `cols`, or `None`
    /// when no such index exists. NULL key parts never match (SQL
    /// equality semantics).
    pub fn index_lookup(&self, cols: &[usize], key: &[Value]) -> Option<&[usize]> {
        self.index_on(cols).map(|ix| ix.lookup_ordered(cols, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_def() -> TableDef {
        TableDef::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::nullable("b", DataType::Str),
            ],
            vec![vec![0]],
        )
    }

    #[test]
    fn insert_checks_arity() {
        let mut t = Table::new(two_col_def()).unwrap();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_checks_types() {
        let mut t = Table::new(two_col_def()).unwrap();
        assert!(t.insert(vec![Value::str("oops"), Value::str("x")]).is_err());
    }

    #[test]
    fn insert_checks_nullability() {
        let mut t = Table::new(two_col_def()).unwrap();
        assert!(t.insert(vec![Value::Null, Value::str("x")]).is_err());
        assert!(t.insert(vec![Value::Int(1), Value::Null]).is_ok());
    }

    #[test]
    fn bad_key_declaration_rejected() {
        let def = TableDef::new("t", vec![ColumnDef::new("a", DataType::Int)], vec![vec![3]]);
        assert!(Table::new(def).is_err());
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let def = two_col_def();
        assert_eq!(def.column_index("A"), Some(0));
        assert_eq!(def.column_index("missing"), None);
    }

    #[test]
    fn index_roundtrip() {
        let mut t = Table::new(two_col_def()).unwrap();
        t.insert_all([
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(2), Value::str("y")],
            vec![Value::Int(1), Value::str("z")],
        ])
        .unwrap();
        t.build_index(vec![0]).unwrap();
        let hits = t.index_lookup(&[0], &[Value::Int(1)]).unwrap();
        assert_eq!(hits, &[0, 2]);
        assert!(t.index_lookup(&[0], &[Value::Int(9)]).unwrap().is_empty());
    }

    #[test]
    fn select_index_picks_widest_covered_canonical() {
        let def = TableDef::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
                ColumnDef::new("c", DataType::Int),
            ],
            vec![vec![0]],
        );
        let mut t = Table::new(def).unwrap();
        t.insert(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap();
        t.build_index(vec![0]).unwrap();
        // Declared in permuted order; selection reports canonical order.
        t.build_index(vec![1, 0]).unwrap();
        assert_eq!(t.select_index(&[0]), Some(vec![0]));
        assert_eq!(t.select_index(&[1, 0, 2]), Some(vec![0, 1]));
        assert_eq!(t.select_index(&[2]), None);
        assert_eq!(t.select_index(&[1]), None);
    }

    #[test]
    fn analyze_populates_stats() {
        let mut t = Table::new(two_col_def()).unwrap();
        t.insert_all([
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::str("y")],
        ])
        .unwrap();
        t.analyze();
        let s = t.stats().unwrap();
        assert_eq!(s.row_count, 2);
        assert_eq!(s.columns[0].ndv, 2);
        assert_eq!(s.columns[1].null_count, 1);
    }
}

#[cfg(test)]
mod incremental_index_tests {
    use super::*;
    use orthopt_common::{DataType, Value};

    #[test]
    fn inserts_after_index_build_are_visible() {
        let def = TableDef::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::nullable("b", DataType::Int),
            ],
            vec![vec![0]],
        );
        let mut t = Table::new(def).unwrap();
        t.insert(vec![Value::Int(1), Value::Int(10)]).unwrap();
        t.build_index(vec![1]).unwrap();
        t.insert(vec![Value::Int(2), Value::Int(10)]).unwrap();
        t.insert(vec![Value::Int(3), Value::Null]).unwrap();
        let hits = t.index_lookup(&[1], &[Value::Int(10)]).unwrap();
        assert_eq!(hits, &[0, 1]);
        // The NULL-keyed row stays unindexed.
        assert_eq!(t.index_on(&[1]).unwrap().distinct_keys(), 1);
    }
}

#[cfg(test)]
mod columnar_mirror_tests {
    use super::*;

    #[test]
    fn columns_mirror_rows_and_invalidate_on_insert() {
        let def = TableDef::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::nullable("b", DataType::Str),
            ],
            vec![vec![0]],
        );
        let mut t = Table::new(def).unwrap();
        t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        {
            let cols = t.columns();
            assert_eq!(cols.len(), 2);
            assert_eq!(cols[0].value(1), Value::Int(2));
            assert_eq!(cols[1].value(0), Value::str("x"));
            assert_eq!(cols[1].value(1), Value::Null);
        }
        t.insert(vec![Value::Int(3), Value::str("z")]).unwrap();
        let cols = t.columns();
        assert_eq!(cols[0].len(), 3);
        assert_eq!(cols[1].value(2), Value::str("z"));
    }
}
