//! The catalog: a named collection of tables.

use std::collections::HashMap;

use orthopt_common::{Error, Result, TableId};

use crate::table::{Table, TableDef};

/// Owns all tables of a database and resolves names to [`TableId`]s.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a table and returns its id. Fails on duplicate names or
    /// invalid key declarations.
    pub fn create_table(&mut self, def: TableDef) -> Result<TableId> {
        let name = def.name.clone();
        if self.by_name.contains_key(&name) {
            return Err(Error::Bind(format!("table {name} already exists")));
        }
        let table = Table::new(def)?;
        let id = TableId(self.tables.len() as u32);
        self.tables.push(table);
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Resolves a table name (case-insensitive).
    pub fn resolve(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Immutable access by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Mutable access by id (loading, indexing, analyzing).
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.0 as usize]
    }

    /// Immutable access by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        Ok(self.table(self.resolve(name)?))
    }

    /// Iterates over `(id, table)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// Runs [`Table::analyze`] on every table.
    pub fn analyze_all(&mut self) {
        for t in &mut self.tables {
            t.analyze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnDef;
    use orthopt_common::DataType;

    fn def(name: &str) -> TableDef {
        TableDef::new(
            name,
            vec![ColumnDef::new("a", DataType::Int)],
            vec![vec![0]],
        )
    }

    #[test]
    fn create_and_resolve() {
        let mut c = Catalog::new();
        let id = c.create_table(def("Orders")).unwrap();
        assert_eq!(c.resolve("orders").unwrap(), id);
        assert_eq!(c.resolve("ORDERS").unwrap(), id);
        assert!(c.resolve("missing").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.create_table(def("t")).unwrap();
        assert!(c.create_table(def("T")).is_err());
    }

    #[test]
    fn analyze_all_covers_every_table() {
        let mut c = Catalog::new();
        c.create_table(def("a")).unwrap();
        c.create_table(def("b")).unwrap();
        c.analyze_all();
        for (_, t) in c.iter() {
            assert!(t.stats().is_some());
        }
    }
}
