//! Secondary hash indexes.
//!
//! An index on columns `(a, b)` maps each non-NULL key tuple to the row
//! positions holding it. SQL equality never matches NULL, so rows with a
//! NULL in any indexed column are simply absent from the map — an equality
//! seek could never return them anyway.

use std::collections::HashMap;

use orthopt_common::{Row, Value};

/// Hash index over a set of column positions.
#[derive(Debug)]
pub struct Index {
    /// Indexed column positions, in declaration order.
    pub cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<usize>>,
    empty: Vec<usize>,
}

impl Index {
    /// Builds the index from the current table contents.
    pub fn build(cols: Vec<usize>, rows: &[Row]) -> Self {
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        'row: for (pos, row) in rows.iter().enumerate() {
            let mut key = Vec::with_capacity(cols.len());
            for &c in &cols {
                if row[c].is_null() {
                    continue 'row;
                }
                key.push(row[c].clone());
            }
            map.entry(key).or_default().push(pos);
        }
        Index {
            cols,
            map,
            empty: Vec::new(),
        }
    }

    /// Row positions whose indexed columns equal `key` (key values given
    /// in the index's own column order). NULL key parts match nothing.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        if key.iter().any(Value::is_null) {
            return &self.empty;
        }
        self.map.get(key).map_or(&self.empty[..], |v| &v[..])
    }

    /// Like [`Index::lookup`], but `key` is given in the order of
    /// `query_cols` (a permutation of the index columns) and is reordered
    /// internally.
    pub fn lookup_ordered(&self, query_cols: &[usize], key: &[Value]) -> &[usize] {
        debug_assert_eq!(query_cols.len(), self.cols.len());
        if query_cols == self.cols.as_slice() {
            return self.lookup(key);
        }
        let reordered: Vec<Value> = self
            .cols
            .iter()
            .map(|c| {
                let pos = query_cols.iter().position(|q| q == c).expect("permutation");
                key[pos].clone()
            })
            .collect();
        self.lookup(&reordered)
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Incrementally indexes one appended row (NULL key parts are
    /// skipped, as at build time).
    pub fn insert_row(&mut self, pos: usize, row: &Row) {
        let mut key = Vec::with_capacity(self.cols.len());
        for &c in &self.cols {
            if row[c].is_null() {
                return;
            }
            key.push(row[c].clone());
        }
        self.map.entry(key).or_default().push(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(1), Value::str("c")],
            vec![Value::Null, Value::str("d")],
        ]
    }

    #[test]
    fn lookup_groups_row_positions() {
        let ix = Index::build(vec![0], &rows());
        assert_eq!(ix.lookup(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(ix.lookup(&[Value::Int(2)]), &[1]);
    }

    #[test]
    fn null_rows_are_unindexed_and_null_probe_matches_nothing() {
        let ix = Index::build(vec![0], &rows());
        assert_eq!(ix.distinct_keys(), 2);
        assert!(ix.lookup(&[Value::Null]).is_empty());
    }

    #[test]
    fn multi_column_lookup_with_permutation() {
        let ix = Index::build(vec![0, 1], &rows());
        let direct = ix.lookup(&[Value::Int(1), Value::str("c")]);
        assert_eq!(direct, &[2]);
        let permuted = ix.lookup_ordered(&[1, 0], &[Value::str("c"), Value::Int(1)]);
        assert_eq!(permuted, &[2]);
    }
}
