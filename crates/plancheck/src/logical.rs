//! Invariant checks over the logical IR ([`RelExpr`]).
//!
//! The checker performs a scoped pre-order walk. At every point it
//! knows which columns are *visible*: the outputs of the node's inputs,
//! plus the bindings contributed by enclosing scopes (`Apply` left
//! sides, subquery owner scopes, `SegmentApply` segments). A column
//! reference outside that set is classified as:
//!
//! * a **scope violation** when the column is produced somewhere in the
//!   checked tree — it exists but cannot flow to the reference point
//!   (a sibling leak, a column destroyed by aggregation/projection);
//! * in **closed mode** ([`check_closed`]), additionally a violation
//!   when the column is produced nowhere — a fully decorrelated plan
//!   must contain zero residual outer references. In fragment mode
//!   ([`check_logical`]) such references are assumed to be legitimate
//!   outer parameters of the fragment.

use std::collections::BTreeSet;

use orthopt_common::ColId;
use orthopt_ir::{AggDef, AggFunc, GroupKind, RelExpr, ScalarExpr};

use crate::{CheckKind, Violation};

/// Checks a plan *fragment*: references to columns produced nowhere in
/// the fragment are treated as outer parameters and allowed. This is
/// the mode used after each individual rewrite/optimizer rule, where
/// the rule only sees a subtree of the full query.
pub fn check_logical(rel: &RelExpr) -> Vec<Violation> {
    run(rel, false)
}

/// Checks a complete plan: every reference must resolve, the root must
/// have no free columns, and every LocalGroupBy must be combined by a
/// global GroupBy above it.
pub fn check_closed(rel: &RelExpr) -> Vec<Violation> {
    run(rel, true)
}

fn run(rel: &RelExpr, closed: bool) -> Vec<Violation> {
    let mut cx = Cx {
        produced: rel.produced_cols(),
        closed,
        out: Vec::new(),
    };
    let scope = Scope::default();
    cx.check(rel, &scope);
    let mut ancestors: Vec<&RelExpr> = Vec::new();
    cx.check_locals(rel, &mut ancestors);
    cx.out
}

/// One-line description of a node, used to anchor violations.
pub(crate) fn describe(rel: &RelExpr) -> String {
    match rel {
        RelExpr::Get(g) => format!("Get({})", g.table_name),
        RelExpr::ConstRel { .. } => "ConstRel".into(),
        RelExpr::Select { .. } => "Select".into(),
        RelExpr::Map { .. } => "Map".into(),
        RelExpr::Project { .. } => "Project".into(),
        RelExpr::Join { kind, .. } => kind.to_string(),
        RelExpr::Apply { kind, .. } => kind.to_string(),
        RelExpr::SegmentApply { .. } => "SegmentApply".into(),
        RelExpr::SegmentRef { .. } => "SegmentRef".into(),
        RelExpr::GroupBy { kind, .. } => kind.to_string(),
        RelExpr::UnionAll { .. } => "UnionAll".into(),
        RelExpr::Except { .. } => "Except".into(),
        RelExpr::Max1Row { .. } => "Max1Row".into(),
        RelExpr::Enumerate { .. } => "Enumerate".into(),
    }
}

#[derive(Clone, Default)]
struct Scope {
    /// Columns bound by enclosing scopes (Apply left sides, subquery
    /// owners).
    outer: BTreeSet<ColId>,
    /// Stack of segment scopes: output ids of enclosing `SegmentApply`
    /// inputs, innermost last.
    segments: Vec<BTreeSet<ColId>>,
}

struct Cx {
    /// All ids produced anywhere in the checked tree.
    produced: BTreeSet<ColId>,
    closed: bool,
    out: Vec<Violation>,
}

impl Cx {
    fn violation(&mut self, kind: CheckKind, node: &RelExpr, message: String) {
        self.out.push(Violation {
            kind,
            node: describe(node),
            message,
        });
    }

    fn check(&mut self, rel: &RelExpr, scope: &Scope) {
        // Every operator must expose a duplicate-free output layout.
        let outs = rel.output_col_ids();
        let distinct: BTreeSet<ColId> = outs.iter().copied().collect();
        if distinct.len() != outs.len() {
            self.violation(
                CheckKind::Arity,
                rel,
                format!("duplicate column ids in output layout {outs:?}"),
            );
        }

        match rel {
            RelExpr::Get(g) => {
                if g.cols.len() != g.positions.len() {
                    self.violation(
                        CheckKind::Arity,
                        rel,
                        format!(
                            "{} bound columns but {} base positions",
                            g.cols.len(),
                            g.positions.len()
                        ),
                    );
                }
            }
            RelExpr::ConstRel { cols, rows } => {
                if let Some(bad) = rows.iter().find(|r| r.len() != cols.len()) {
                    self.violation(
                        CheckKind::Arity,
                        rel,
                        format!("row width {} != declared width {}", bad.len(), cols.len()),
                    );
                }
            }
            RelExpr::Select { input, predicate } => {
                let vis = id_set(input);
                self.scalar(predicate, &vis, scope, rel, CheckKind::Scope, "predicate");
                self.check(input, scope);
            }
            RelExpr::Map { input, defs } => {
                // Computed columns see only the input layout (plus outer
                // bindings) — never each other; execution appends them
                // without re-exposing earlier definitions.
                let vis = id_set(input);
                for d in defs {
                    self.scalar(
                        &d.expr,
                        &vis,
                        scope,
                        rel,
                        CheckKind::Scope,
                        "computed column",
                    );
                }
                self.check(input, scope);
            }
            RelExpr::Project { input, cols } => {
                let vis = id_set(input);
                for c in cols {
                    if !vis.contains(c) {
                        self.violation(
                            CheckKind::Scope,
                            rel,
                            format!("retained column {c} is not produced by the input"),
                        );
                    }
                }
                self.check(input, scope);
            }
            RelExpr::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let mut vis = id_set(left);
                vis.extend(id_set(right));
                self.scalar(
                    predicate,
                    &vis,
                    scope,
                    rel,
                    CheckKind::Scope,
                    "join predicate",
                );
                // Join inputs are independent: each side is checked in the
                // enclosing scope, so a reference from one side to a column
                // produced by the other is caught as out-of-scope.
                self.check(left, scope);
                self.check(right, scope);
            }
            RelExpr::Apply { left, right, .. } => {
                self.check(left, scope);
                // Correlation scoping (invariant b): the inner side may
                // reference exactly the outer side's output bindings (plus
                // enclosing scopes).
                let mut rscope = scope.clone();
                rscope.outer.extend(id_set(left));
                self.check(right, &rscope);
            }
            RelExpr::SegmentApply {
                input,
                segment_cols,
                inner,
            } => {
                let inset = id_set(input);
                for c in segment_cols {
                    if !inset.contains(c) {
                        self.violation(
                            CheckKind::Scope,
                            rel,
                            format!("segmenting column {c} is not produced by the input"),
                        );
                    }
                }
                self.check(input, scope);
                // The inner expression reads the segment only through
                // SegmentRef leaves; direct references to input columns
                // would be unbound at execution time.
                let mut iscope = scope.clone();
                iscope.segments.push(inset);
                self.check(inner, &iscope);
            }
            RelExpr::SegmentRef { cols } => match scope.segments.last() {
                None => {
                    // In fragment mode the enclosing SegmentApply may lie
                    // outside the checked subtree (the optimizer checks
                    // rule outputs inside the inner group); only a closed
                    // plan must contain it.
                    if self.closed {
                        self.violation(
                            CheckKind::Correlation,
                            rel,
                            "SegmentRef outside any SegmentApply inner expression".into(),
                        );
                    }
                }
                Some(seg) => {
                    for (_, src) in cols {
                        if !seg.contains(src) {
                            self.violation(
                                CheckKind::Scope,
                                rel,
                                format!(
                                    "segment source {src} is not produced by the segment input"
                                ),
                            );
                        }
                    }
                }
            },
            RelExpr::GroupBy {
                kind,
                input,
                group_cols,
                aggs,
            } => {
                let vis = id_set(input);
                if *kind == GroupKind::Scalar && !group_cols.is_empty() {
                    self.violation(
                        CheckKind::GroupBy,
                        rel,
                        format!("scalar GroupBy with grouping columns {group_cols:?}"),
                    );
                }
                for c in group_cols {
                    if !vis.contains(c) {
                        self.violation(
                            CheckKind::GroupBy,
                            rel,
                            format!("grouping column {c} is not produced by the input"),
                        );
                    }
                }
                for a in aggs {
                    match (&a.arg, a.func) {
                        (None, AggFunc::CountStar) => {}
                        (None, f) => self.violation(
                            CheckKind::GroupBy,
                            rel,
                            format!("aggregate {f:?} ({}) has no argument", a.out.id),
                        ),
                        (Some(arg), _) => {
                            self.scalar(
                                arg,
                                &vis,
                                scope,
                                rel,
                                CheckKind::GroupBy,
                                "aggregate argument",
                            );
                        }
                    }
                }
                self.check(input, scope);
            }
            RelExpr::UnionAll {
                left,
                right,
                cols,
                left_map,
                right_map,
            } => {
                if left_map.len() != cols.len() || right_map.len() != cols.len() {
                    self.violation(
                        CheckKind::Arity,
                        rel,
                        format!(
                            "output width {} but branch maps have widths {}/{}",
                            cols.len(),
                            left_map.len(),
                            right_map.len()
                        ),
                    );
                }
                let lvis = id_set(left);
                let rvis = id_set(right);
                for c in left_map {
                    if !lvis.contains(c) {
                        self.violation(
                            CheckKind::Scope,
                            rel,
                            format!(
                                "left branch map column {c} is not produced by the left branch"
                            ),
                        );
                    }
                }
                for c in right_map {
                    if !rvis.contains(c) {
                        self.violation(
                            CheckKind::Scope,
                            rel,
                            format!(
                                "right branch map column {c} is not produced by the right branch"
                            ),
                        );
                    }
                }
                self.check(left, scope);
                self.check(right, scope);
            }
            RelExpr::Except {
                left,
                right,
                right_map,
            } => {
                let lw = left.output_col_ids().len();
                if right_map.len() != lw {
                    self.violation(
                        CheckKind::Arity,
                        rel,
                        format!("left width {lw} but right map width {}", right_map.len()),
                    );
                }
                let rvis = id_set(right);
                for c in right_map {
                    if !rvis.contains(c) {
                        self.violation(
                            CheckKind::Scope,
                            rel,
                            format!("right map column {c} is not produced by the right branch"),
                        );
                    }
                }
                self.check(left, scope);
                self.check(right, scope);
            }
            RelExpr::Max1Row { input } | RelExpr::Enumerate { input, .. } => {
                self.check(input, scope);
            }
        }
    }

    /// Checks one scalar expression: every column reference must resolve
    /// in `visible` or an enclosing scope, and subquery bodies are
    /// checked with the owning node's scope added as outer bindings.
    fn scalar(
        &mut self,
        e: &ScalarExpr,
        visible: &BTreeSet<ColId>,
        scope: &Scope,
        node: &RelExpr,
        kind: CheckKind,
        what: &str,
    ) {
        match e {
            ScalarExpr::Column(c) => {
                if !visible.contains(c) && !scope.outer.contains(c) {
                    let produced = self.produced.contains(c);
                    if produced {
                        self.violation(
                            kind,
                            node,
                            format!(
                                "{what} references {c}, which is produced elsewhere in the plan \
                                 but not visible here (sibling leak or destroyed column)"
                            ),
                        );
                    } else if self.closed {
                        self.violation(
                            CheckKind::Correlation,
                            node,
                            format!("{what} references {c}, a residual outer reference in a closed plan"),
                        );
                    }
                }
            }
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                self.scalar(left, visible, scope, node, kind, what);
                self.scalar(right, visible, scope, node, kind, what);
            }
            ScalarExpr::Neg(x) | ScalarExpr::Not(x) => {
                self.scalar(x, visible, scope, node, kind, what);
            }
            ScalarExpr::And(parts) | ScalarExpr::Or(parts) => {
                for p in parts {
                    self.scalar(p, visible, scope, node, kind, what);
                }
            }
            ScalarExpr::IsNull { expr, .. } => self.scalar(expr, visible, scope, node, kind, what),
            ScalarExpr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(op) = operand {
                    self.scalar(op, visible, scope, node, kind, what);
                }
                for (w, t) in whens {
                    self.scalar(w, visible, scope, node, kind, what);
                    self.scalar(t, visible, scope, node, kind, what);
                }
                if let Some(el) = else_ {
                    self.scalar(el, visible, scope, node, kind, what);
                }
            }
            ScalarExpr::Subquery(rel) | ScalarExpr::Exists { rel, .. } => {
                self.subquery(rel, visible, scope);
            }
            ScalarExpr::InSubquery { expr, rel, .. } => {
                self.scalar(expr, visible, scope, node, kind, what);
                self.subquery(rel, visible, scope);
            }
            ScalarExpr::QuantifiedCmp { expr, rel, .. } => {
                self.scalar(expr, visible, scope, node, kind, what);
                self.subquery(rel, visible, scope);
            }
        }
    }

    fn subquery(&mut self, rel: &RelExpr, visible: &BTreeSet<ColId>, scope: &Scope) {
        let mut sub = scope.clone();
        sub.outer.extend(visible.iter().copied());
        self.check(rel, &sub);
    }

    /// Invariant (c), second half: every LocalGroupBy output must be
    /// combined above by a global GroupBy through the matching
    /// [`AggFunc::split`] pair, so that global∘local reconstructs the
    /// original aggregate (§3.3).
    fn check_locals<'t>(&mut self, rel: &'t RelExpr, ancestors: &mut Vec<&'t RelExpr>) {
        if let RelExpr::GroupBy {
            kind: GroupKind::Local,
            aggs,
            ..
        } = rel
        {
            for la in aggs {
                match find_combiner(la, ancestors) {
                    Some((global_node, gf)) if !valid_split_pair(la.func, gf) => {
                        self.out.push(Violation {
                            kind: CheckKind::GroupBy,
                            node: describe(global_node),
                            message: format!(
                                "global aggregate {gf:?} over LocalGroupBy output {} does not \
                                 reconstruct any original aggregate (local part {:?}; no \
                                 AggFunc::split yields this pair)",
                                la.out.id, la.func
                            ),
                        });
                    }
                    Some(_) => {}
                    None if self.closed => {
                        self.violation(
                            CheckKind::GroupBy,
                            rel,
                            format!(
                                "LocalGroupBy output {} ({:?}) is never combined by a global \
                                 GroupBy above",
                                la.out.id, la.func
                            ),
                        );
                    }
                    None => {}
                }
            }
        }
        ancestors.push(rel);
        for c in rel.children() {
            self.check_locals(c, ancestors);
        }
        ancestors.pop();
    }
}

fn id_set(rel: &RelExpr) -> BTreeSet<ColId> {
    rel.output_col_ids().into_iter().collect()
}

/// Finds the nearest enclosing global (vector/scalar) GroupBy consuming
/// the local aggregate's output column, returning it with the combining
/// function.
fn find_combiner<'t>(local: &AggDef, ancestors: &[&'t RelExpr]) -> Option<(&'t RelExpr, AggFunc)> {
    for anc in ancestors.iter().rev() {
        if let RelExpr::GroupBy {
            kind: GroupKind::Vector | GroupKind::Scalar,
            aggs,
            ..
        } = anc
        {
            for g in aggs {
                if let Some(ScalarExpr::Column(c)) = &g.arg {
                    if *c == local.out.id {
                        return Some((anc, g.func));
                    }
                }
            }
        }
    }
    None
}

/// Whether `(local, global)` is a pair produced by some
/// [`AggFunc::split`] — i.e. the global function over the local partial
/// results reconstructs an original aggregate.
pub(crate) fn valid_split_pair(local: AggFunc, global: AggFunc) -> bool {
    [
        AggFunc::CountStar,
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Avg,
    ]
    .iter()
    .any(|f| f.split() == Some((local, global)))
}
