#![warn(missing_docs)]
//! Static plan-invariant verifier for `orthopt`.
//!
//! The paper's claim is that many small orthogonal rewrites — the
//! Apply-removal identities (1)–(9), GroupBy reordering, LocalGroupBy
//! splits, outerjoin simplification — compose safely. That only holds
//! if every intermediate plan preserves a handful of invariants, and a
//! rule that silently breaks one is only caught much later as a wrong
//! answer. This crate checks the invariants *statically*, per node:
//!
//! * **(a) schema/arity propagation** — every column reference resolves
//!   in the node's visible scope; positional maps (`UnionAll`,
//!   `Except`, `Concat`) have matching widths.
//! * **(b) correlation scoping** — free variables of an `Apply` /
//!   `SegmentApply` inner side are a subset of the outer side's
//!   bindings, and fully decorrelated plans ([`check_closed`]) contain
//!   zero residual outer references.
//! * **(c) GroupBy soundness** — aggregate inputs and grouping keys are
//!   drawn from the child's output, and every LocalGroupBy is combined
//!   above by a global GroupBy that reconstructs the original aggregate
//!   through [`AggFunc::split`](orthopt_ir::AggFunc::split).
//! * **(d) outerjoin-simplification audit** — every `LOJ → Join`
//!   conversion carries a checkable null-rejecting witness
//!   ([`orthopt_ir::NullRejectWitness`]), re-verified here.
//! * **(e) physical legality** — `Exchange` placement obeys the shape
//!   grammar in `orthopt-exec::parallel`, and widths/scopes are
//!   consistent along pipelines.
//!
//! The rewrite pipeline and the optimizer invoke these checks after
//! every individual rule application (under their `plancheck` cargo
//! feature); a failure is reported as a [`BlameReport`] naming the rule,
//! the Apply-removal identity number when applicable, the first
//! offending node and before/after plan explains.

use orthopt_synccheck::sync::atomic::{AtomicU8, Ordering};
use std::fmt;
use std::sync::OnceLock;

use orthopt_common::Error;
use orthopt_ir::{JoinKind, NullRejectWitness, RelExpr};

mod logical;
mod physical;

pub use logical::{check_closed, check_logical};
pub use physical::check_physical;

/// Which invariant family a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// A column reference that does not resolve in its visible scope.
    Scope,
    /// A positional map / width mismatch.
    Arity,
    /// Correlation scoping: a sibling leak or a residual outer reference.
    Correlation,
    /// GroupBy soundness, including LocalGroupBy reconstruction.
    GroupBy,
    /// An outerjoin conversion whose null-rejection witness fails.
    Witness,
    /// Physical plan legality (Exchange grammar, operator wiring).
    Physical,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::Scope => "scope",
            CheckKind::Arity => "arity",
            CheckKind::Correlation => "correlation",
            CheckKind::GroupBy => "groupby",
            CheckKind::Witness => "witness",
            CheckKind::Physical => "physical",
        };
        f.write_str(s)
    }
}

/// One invariant violation, anchored at the first offending node.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Invariant family.
    pub kind: CheckKind,
    /// One-line description of the offending node.
    pub node: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.kind, self.node, self.message)
    }
}

/// A violation report blaming the rule application that introduced it.
#[derive(Debug, Clone)]
pub struct BlameReport {
    /// Name of the rewrite pass or optimizer rule.
    pub rule: String,
    /// Apply-removal identity number (1–9) when the rule is one of the
    /// paper's identities.
    pub identity: Option<u8>,
    /// The violations, first offending node first.
    pub violations: Vec<Violation>,
    /// Plan explain before the rule ran (empty when not captured).
    pub before: String,
    /// Plan explain after the rule ran.
    pub after: String,
}

impl BlameReport {
    /// Wraps the report into the shared error type.
    pub fn into_error(self) -> Error {
        Error::Plancheck(self.to_string())
    }
}

impl fmt::Display for BlameReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule `{}`", self.rule)?;
        if let Some(n) = self.identity {
            write!(f, " (identity ({n}))")?;
        }
        writeln!(f, " broke {} plan invariant(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if !self.before.is_empty() {
            writeln!(f, "before:")?;
            for line in self.before.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        if !self.after.is_empty() {
            writeln!(f, "after:")?;
            for line in self.after.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Audits outerjoin simplification: the number of `LOJ → Join`
/// conversions between `before` and `after` must equal the number of
/// recorded witnesses, and every witness must verify on its own.
pub fn check_witnesses(
    before: &RelExpr,
    after: &RelExpr,
    witnesses: &[NullRejectWitness],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let converted = count_loj(before).saturating_sub(count_loj(after));
    if converted != witnesses.len() {
        out.push(Violation {
            kind: CheckKind::Witness,
            node: "Select/LeftOuterJoin".into(),
            message: format!(
                "{converted} LOJ→Join conversion(s) but {} null-rejection witness(es) recorded",
                witnesses.len()
            ),
        });
    }
    for w in witnesses {
        if let Err(reason) = w.verify() {
            out.push(Violation {
                kind: CheckKind::Witness,
                node: "LeftOuterJoin".into(),
                message: format!("unsound LOJ→Join witness: {reason}"),
            });
        }
    }
    out
}

/// Number of left-outer joins in the tree (including subquery bodies).
pub fn count_loj(rel: &RelExpr) -> usize {
    let mut n = 0;
    rel.walk(&mut |r| {
        if matches!(
            r,
            RelExpr::Join {
                kind: JoinKind::LeftOuter,
                ..
            }
        ) {
            n += 1;
        }
    });
    n
}

// --- runtime gate -------------------------------------------------------

/// 0 = unset (env / profile default), 1 = forced off, 2 = forced on.
static FORCE: AtomicU8 = AtomicU8::new(0);

/// Programmatic override of [`enabled`]; tests use this to exercise the
/// verifier in release builds.
pub fn set_enabled(on: bool) {
    // relaxed-ok: an isolated tri-state toggle; readers act on the value
    // alone and no other memory is published through it.
    FORCE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Clears a [`set_enabled`] override, restoring the default policy.
pub fn clear_enabled_override() {
    // relaxed-ok: see set_enabled().
    FORCE.store(0, Ordering::Relaxed);
}

/// Whether per-rule verification should run. Defaults to on in debug
/// builds and off in release; the `ORTHOPT_PLANCHECK` environment
/// variable (`1`/`0`) overrides the profile default, and
/// [`set_enabled`] overrides both.
pub fn enabled() -> bool {
    // relaxed-ok: see set_enabled().
    match FORCE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<Option<bool>> = OnceLock::new();
            let env = ENV.get_or_init(|| match std::env::var("ORTHOPT_PLANCHECK") {
                Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Some(true),
                Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") => Some(false),
                _ => None,
            });
            env.unwrap_or(cfg!(debug_assertions))
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use orthopt_common::{ColId, DataType, TableId, Value};
    use orthopt_exec::PhysExpr;
    use orthopt_ir::{AggDef, AggFunc, ColumnMeta, GroupKind, ScalarExpr};

    use super::*;

    fn const_rel(ids: &[u32]) -> RelExpr {
        RelExpr::ConstRel {
            cols: ids
                .iter()
                .map(|&id| ColumnMeta::new(ColId(id), format!("c{id}"), DataType::Int, true))
                .collect(),
            rows: vec![vec![Value::Int(0); ids.len()]],
        }
    }

    fn loj(left: RelExpr, right: RelExpr) -> RelExpr {
        RelExpr::Join {
            kind: JoinKind::LeftOuter,
            left: Box::new(left),
            right: Box::new(right),
            predicate: ScalarExpr::true_(),
        }
    }

    #[test]
    fn witness_audit_counts_conversions() {
        let before = loj(const_rel(&[1]), const_rel(&[2]));
        let after = RelExpr::Join {
            kind: JoinKind::Inner,
            left: Box::new(const_rel(&[1])),
            right: Box::new(const_rel(&[2])),
            predicate: ScalarExpr::true_(),
        };
        // One conversion, zero witnesses: the audit fires.
        let vs = check_witnesses(&before, &after, &[]);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, CheckKind::Witness);
        // No conversion, no witnesses: clean.
        assert!(check_witnesses(&before, &before, &[]).is_empty());
    }

    #[test]
    fn witness_audit_reverifies_each_witness() {
        let before = loj(const_rel(&[1]), const_rel(&[2]));
        let after = const_rel(&[1]);
        // Count matches, but TRUE rejects no NULLs on the padded side.
        let bogus = NullRejectWitness {
            predicate: ScalarExpr::true_(),
            padded_cols: BTreeSet::from([ColId(2)]),
            via_groupby: None,
        };
        let vs = check_witnesses(&before, &after, &[bogus]);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("unsound"), "{}", vs[0].message);
        // A genuinely null-rejecting predicate passes.
        let sound = NullRejectWitness {
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(2)), ScalarExpr::lit(1i64)),
            padded_cols: BTreeSet::from([ColId(2)]),
            via_groupby: None,
        };
        assert!(check_witnesses(&before, &after, &[sound]).is_empty());
    }

    #[test]
    fn const_scan_columns_must_be_monotyped() {
        // NULLs fit any column; a mixed int/str column does not.
        let ok = PhysExpr::ConstScan {
            cols: vec![ColId(1), ColId(2)],
            rows: vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Null, Value::Str("x".into())],
            ],
        };
        assert!(check_physical(&ok).is_empty());
        let mixed = PhysExpr::ConstScan {
            cols: vec![ColId(1)],
            rows: vec![vec![Value::Int(1)], vec![Value::Str("x".into())]],
        };
        let vs = check_physical(&mixed);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("mixes"), "{}", vs[0].message);
    }

    #[test]
    fn count_loj_walks_the_whole_tree() {
        let nested = loj(loj(const_rel(&[1]), const_rel(&[2])), const_rel(&[3]));
        assert_eq!(count_loj(&nested), 2);
        assert_eq!(count_loj(&const_rel(&[1])), 0);
    }

    #[test]
    fn fragment_allows_outer_params_closed_does_not() {
        // A Select whose predicate references a column produced nowhere
        // in the fragment: an outer parameter in fragment mode, a
        // residual correlation in closed mode.
        let frag = RelExpr::Select {
            input: Box::new(const_rel(&[1])),
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(1)), ScalarExpr::col(ColId(99))),
        };
        assert!(check_logical(&frag).is_empty());
        let vs = check_closed(&frag);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, CheckKind::Correlation);
    }

    #[test]
    fn local_groupby_split_pairs_are_checked() {
        let local = RelExpr::GroupBy {
            kind: GroupKind::Local,
            input: Box::new(const_rel(&[1, 2])),
            group_cols: vec![ColId(1)],
            aggs: vec![AggDef::new(
                ColumnMeta::new(ColId(3), "ln", DataType::Int, false),
                AggFunc::CountStar,
                None,
            )],
        };
        let global = |f: AggFunc| RelExpr::GroupBy {
            kind: GroupKind::Vector,
            input: Box::new(local.clone()),
            group_cols: vec![ColId(1)],
            aggs: vec![AggDef::new(
                ColumnMeta::new(ColId(4), "n", DataType::Int, false),
                f,
                Some(ScalarExpr::col(ColId(3))),
            )],
        };
        // COUNT(*) partials combine with SUM (AggFunc::split pair).
        assert!(check_closed(&global(AggFunc::Sum)).is_empty());
        // ...but not with MIN.
        let vs = check_closed(&global(AggFunc::Min));
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].kind, CheckKind::GroupBy);
        // A LocalGroupBy never combined at all is a closed-mode error.
        let orphan = check_closed(&local);
        assert!(orphan.iter().any(|v| v.kind == CheckKind::GroupBy));
        assert!(
            check_logical(&local).is_empty(),
            "fragments may defer combining"
        );
    }

    #[test]
    fn exchange_grammar_is_enforced() {
        let scan = PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![ColId(1)],
        };
        let good = PhysExpr::Exchange {
            input: Box::new(scan.clone()),
        };
        assert!(check_physical(&good).is_empty());
        let bad = PhysExpr::Exchange {
            input: Box::new(good),
        };
        let vs = check_physical(&bad);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("shape grammar"), "{}", vs[0].message);
    }

    #[test]
    fn set_enabled_overrides_profile_default() {
        // The only test in this binary touching the FORCE gate.
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        clear_enabled_override();
        // Back to the env/profile policy, whatever it is here.
        let _ = enabled();
    }

    #[test]
    fn blame_report_renders_rule_identity_and_violations() {
        let report = BlameReport {
            rule: "apply_removal::push_once".into(),
            identity: Some(7),
            violations: vec![Violation {
                kind: CheckKind::Scope,
                node: "Select".into(),
                message: "predicate references c99".into(),
            }],
            before: "Apply".into(),
            after: "Join".into(),
        };
        let rendered = report.to_string();
        assert!(rendered.contains("rule `apply_removal::push_once`"));
        assert!(rendered.contains("identity (7)"));
        assert!(rendered.contains("[scope] at Select"));
        let err = report.into_error();
        assert!(matches!(err, Error::Plancheck(_)));
    }
}
