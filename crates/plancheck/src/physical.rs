//! Invariant checks over physical plans ([`PhysExpr`]).
//!
//! Physical plans are always complete when checked, so every column
//! reference must resolve: in the operator's input layouts, or — inside
//! an `ApplyLoop` inner plan — in the declared parameter set, or —
//! inside a `SegmentExec` inner plan — through a `SegmentScan` over the
//! enclosing segment. In addition, `Exchange` placement must obey the
//! shape grammar of `orthopt-exec::parallel` (invariant e): the checker
//! defers to [`orthopt_exec::exchange_eligible`], the same predicate the
//! planner uses, so an Exchange the runtime cannot execute in parallel
//! is flagged at plan time.

use std::collections::BTreeSet;

use orthopt_common::ColId;
use orthopt_exec::PhysExpr;
use orthopt_ir::{AggFunc, GroupKind, ScalarExpr};

use crate::logical::valid_split_pair;
use crate::{CheckKind, Violation};

/// Checks a complete physical plan.
pub fn check_physical(p: &PhysExpr) -> Vec<Violation> {
    let mut cx = PhysCx { out: Vec::new() };
    let scope = PhysScope::default();
    cx.check(p, &scope);
    let mut ancestors: Vec<&PhysExpr> = Vec::new();
    cx.check_locals(p, &mut ancestors);
    cx.out
}

fn describe(p: &PhysExpr) -> String {
    match p {
        PhysExpr::TableScan { .. } => "TableScan".into(),
        PhysExpr::IndexSeek { .. } => "IndexSeek".into(),
        PhysExpr::Filter { .. } => "Filter".into(),
        PhysExpr::Compute { .. } => "Compute".into(),
        PhysExpr::ProjectCols { .. } => "ProjectCols".into(),
        PhysExpr::HashJoin { kind, .. } => format!("HashJoin({kind})"),
        PhysExpr::NLJoin { kind, .. } => format!("NLJoin({kind})"),
        PhysExpr::ApplyLoop { kind, .. } => format!("ApplyLoop({kind})"),
        PhysExpr::BatchedApply { kind, .. } => format!("BatchedApply({kind})"),
        PhysExpr::IndexLookupJoin { kind, .. } => format!("IndexLookupJoin({kind})"),
        PhysExpr::SegmentExec { .. } => "SegmentExec".into(),
        PhysExpr::SegmentScan { .. } => "SegmentScan".into(),
        PhysExpr::HashAggregate { kind, .. } => format!("HashAggregate({kind})"),
        PhysExpr::Concat { .. } => "Concat".into(),
        PhysExpr::ExceptExec { .. } => "ExceptExec".into(),
        PhysExpr::AssertMax1 { .. } => "AssertMax1".into(),
        PhysExpr::RowNumber { .. } => "RowNumber".into(),
        PhysExpr::ConstScan { .. } => "ConstScan".into(),
        PhysExpr::Sort { .. } => "Sort".into(),
        PhysExpr::Limit { .. } => "Limit".into(),
        PhysExpr::Exchange { .. } => "Exchange".into(),
        PhysExpr::MorselScan { .. } => "MorselScan".into(),
    }
}

#[derive(Clone, Default)]
struct PhysScope {
    /// Parameters bound by enclosing `ApplyLoop`s.
    params: BTreeSet<ColId>,
    /// Stack of segment layouts from enclosing `SegmentExec`s.
    segments: Vec<BTreeSet<ColId>>,
}

struct PhysCx {
    out: Vec<Violation>,
}

impl PhysCx {
    fn violation(&mut self, kind: CheckKind, p: &PhysExpr, message: String) {
        self.out.push(Violation {
            kind,
            node: describe(p),
            message,
        });
    }

    fn refs(
        &mut self,
        e: &ScalarExpr,
        visible: &BTreeSet<ColId>,
        scope: &PhysScope,
        p: &PhysExpr,
        what: &str,
    ) {
        for c in e.cols() {
            if !visible.contains(&c) && !scope.params.contains(&c) {
                self.violation(
                    CheckKind::Physical,
                    p,
                    format!("{what} references {c}, which no input or parameter provides"),
                );
            }
        }
    }

    fn cols_in(&mut self, cols: &[ColId], provided: &BTreeSet<ColId>, p: &PhysExpr, what: &str) {
        for c in cols {
            if !provided.contains(c) {
                self.violation(
                    CheckKind::Physical,
                    p,
                    format!("{what} column {c} is not produced by the corresponding input"),
                );
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn check(&mut self, p: &PhysExpr, scope: &PhysScope) {
        // Duplicate ids in an operator's output layout break positional
        // lookup downstream.
        let outs = p.out_cols();
        let distinct: BTreeSet<ColId> = outs.iter().copied().collect();
        if distinct.len() != outs.len() {
            self.violation(
                CheckKind::Physical,
                p,
                format!("duplicate column ids in output layout {outs:?}"),
            );
        }

        match p {
            PhysExpr::TableScan {
                positions, cols, ..
            }
            | PhysExpr::MorselScan {
                positions, cols, ..
            } => {
                if positions.len() != cols.len() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "{} output columns but {} base positions",
                            cols.len(),
                            positions.len()
                        ),
                    );
                }
                if matches!(p, PhysExpr::MorselScan { .. }) {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        "MorselScan is runtime-internal and must not appear in a planned tree"
                            .into(),
                    );
                }
            }
            PhysExpr::IndexSeek {
                positions,
                cols,
                index_cols,
                probes,
                ..
            } => {
                if positions.len() != cols.len() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "{} output columns but {} base positions",
                            cols.len(),
                            positions.len()
                        ),
                    );
                }
                if probes.len() != index_cols.len() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "{} probes for an index over {} columns",
                            probes.len(),
                            index_cols.len()
                        ),
                    );
                }
                // Probes run before the scan produces anything: only
                // parameters and literals are available.
                let empty = BTreeSet::new();
                for pr in probes {
                    self.refs(pr, &empty, scope, p, "index probe");
                }
            }
            PhysExpr::Filter { input, predicate } => {
                let vis = id_set(input);
                self.refs(predicate, &vis, scope, p, "predicate");
                self.check(input, scope);
            }
            PhysExpr::Compute { input, defs } => {
                // Definitions see only the input layout (ComputeOp
                // appends values without re-exposing earlier defs).
                let vis = id_set(input);
                for (_, e) in defs {
                    self.refs(e, &vis, scope, p, "computed column");
                }
                self.check(input, scope);
            }
            PhysExpr::ProjectCols { input, cols } => {
                let vis = id_set(input);
                self.cols_in(cols, &vis, p, "retained");
                self.check(input, scope);
            }
            PhysExpr::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                if left_keys.len() != right_keys.len() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "{} probe keys vs {} build keys",
                            left_keys.len(),
                            right_keys.len()
                        ),
                    );
                }
                let lvis = id_set(left);
                let rvis = id_set(right);
                self.cols_in(left_keys, &lvis, p, "probe key");
                self.cols_in(right_keys, &rvis, p, "build key");
                let mut vis = lvis;
                vis.extend(rvis);
                self.refs(residual, &vis, scope, p, "residual predicate");
                self.check(left, scope);
                self.check(right, scope);
            }
            PhysExpr::NLJoin {
                left,
                right,
                predicate,
                ..
            } => {
                let mut vis = id_set(left);
                vis.extend(id_set(right));
                self.refs(predicate, &vis, scope, p, "join predicate");
                self.check(left, scope);
                self.check(right, scope);
            }
            PhysExpr::ApplyLoop {
                left,
                right,
                params,
                ..
            }
            | PhysExpr::BatchedApply {
                left,
                right,
                params,
                ..
            } => {
                let lvis = id_set(left);
                self.cols_in(params, &lvis, p, "parameter");
                self.check(left, scope);
                let mut rscope = scope.clone();
                rscope.params.extend(params.iter().copied());
                self.check(right, &rscope);
            }
            PhysExpr::IndexLookupJoin {
                left,
                positions,
                fetch_cols,
                index_cols,
                probes,
                residual,
                cols,
                params,
                ..
            } => {
                if positions.len() != fetch_cols.len() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "{} fetched columns but {} base positions",
                            fetch_cols.len(),
                            positions.len()
                        ),
                    );
                }
                if probes.len() != index_cols.len() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "{} probes for an index over {} columns",
                            probes.len(),
                            index_cols.len()
                        ),
                    );
                }
                // Canonical index order: probe expressions are matched
                // to index columns positionally, so the planner must
                // emit `index_cols` strictly ascending (sorting probes
                // in lockstep). A permuted or duplicated list means the
                // probe-to-column pairing is scrambled relative to the
                // storage index layout.
                if !index_cols.windows(2).all(|w| w[0] < w[1]) {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "index columns {index_cols:?} are not in canonical \
                             (strictly ascending) order; probe-to-index pairing is scrambled"
                        ),
                    );
                }
                let lvis = id_set(left);
                self.cols_in(params, &lvis, p, "parameter");
                // Probes run before anything is fetched: only this
                // operator's parameters (and the enclosing scope's) plus
                // literals are available.
                let mut pscope = scope.clone();
                pscope.params.extend(params.iter().copied());
                let empty = BTreeSet::new();
                for pr in probes {
                    self.refs(pr, &empty, &pscope, p, "index probe");
                }
                // The residual sees the fetched layout plus parameters.
                let fvis: BTreeSet<ColId> = fetch_cols.iter().copied().collect();
                self.refs(residual, &fvis, &pscope, p, "residual predicate");
                self.cols_in(cols, &fvis, p, "projected");
                self.check(left, scope);
            }
            PhysExpr::SegmentExec {
                input,
                segment_cols,
                inner,
                out_cols,
            } => {
                let inset = id_set(input);
                self.cols_in(segment_cols, &inset, p, "segmenting");
                self.check(input, scope);
                let mut iscope = scope.clone();
                iscope.segments.push(inset.clone());
                self.check(inner, &iscope);
                let mut provided: BTreeSet<ColId> = segment_cols.iter().copied().collect();
                provided.extend(inner.out_cols());
                self.cols_in(out_cols, &provided, p, "output");
            }
            PhysExpr::SegmentScan { cols } => match scope.segments.last() {
                None => self.violation(
                    CheckKind::Physical,
                    p,
                    "SegmentScan outside any SegmentExec inner plan".into(),
                ),
                Some(seg) => {
                    for (_, src) in cols {
                        if !seg.contains(src) {
                            self.violation(
                                CheckKind::Physical,
                                p,
                                format!(
                                    "segment source {src} is not produced by the segment input"
                                ),
                            );
                        }
                    }
                }
            },
            PhysExpr::HashAggregate {
                kind,
                input,
                group_cols,
                aggs,
            } => {
                let vis = id_set(input);
                if *kind == GroupKind::Scalar && !group_cols.is_empty() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!("scalar aggregation with grouping columns {group_cols:?}"),
                    );
                }
                self.cols_in(group_cols, &vis, p, "grouping");
                for a in aggs {
                    match (&a.arg, a.func) {
                        (None, AggFunc::CountStar) => {}
                        (None, f) => self.violation(
                            CheckKind::Physical,
                            p,
                            format!("aggregate {f:?} ({}) has no argument", a.out.id),
                        ),
                        (Some(arg), _) => self.refs(arg, &vis, scope, p, "aggregate argument"),
                    }
                }
                self.check(input, scope);
            }
            PhysExpr::Concat {
                left,
                right,
                cols,
                left_map,
                right_map,
            } => {
                if left_map.len() != cols.len() || right_map.len() != cols.len() {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!(
                            "output width {} but branch maps have widths {}/{}",
                            cols.len(),
                            left_map.len(),
                            right_map.len()
                        ),
                    );
                }
                let lvis = id_set(left);
                let rvis = id_set(right);
                self.cols_in(left_map, &lvis, p, "left map");
                self.cols_in(right_map, &rvis, p, "right map");
                self.check(left, scope);
                self.check(right, scope);
            }
            PhysExpr::ExceptExec {
                left,
                right,
                right_map,
            } => {
                let lw = left.out_cols().len();
                if right_map.len() != lw {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!("left width {lw} but right map width {}", right_map.len()),
                    );
                }
                let rvis = id_set(right);
                self.cols_in(right_map, &rvis, p, "right map");
                self.check(left, scope);
                self.check(right, scope);
            }
            PhysExpr::AssertMax1 { input } | PhysExpr::Limit { input, .. } => {
                self.check(input, scope);
            }
            PhysExpr::RowNumber { input, .. } => self.check(input, scope),
            PhysExpr::ConstScan { cols, rows } => {
                if let Some(bad) = rows.iter().find(|r| r.len() != cols.len()) {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        format!("row width {} != declared width {}", bad.len(), cols.len()),
                    );
                }
                // Typed-schema half of the width check: the columnar
                // executor stores each column in one typed vector, so
                // every non-NULL value down a ConstScan column must
                // share a single runtime type.
                for (i, col) in cols.iter().enumerate() {
                    let mut seen: Option<&'static str> = None;
                    for r in rows.iter().filter(|r| r.len() == cols.len()) {
                        let Some(tag) = value_type(&r[i]) else {
                            continue;
                        };
                        match seen {
                            None => seen = Some(tag),
                            Some(t) if t != tag => {
                                self.violation(
                                    CheckKind::Physical,
                                    p,
                                    format!(
                                        "column {col} mixes {t} and {tag} values; a column \
                                         must have one type"
                                    ),
                                );
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
            PhysExpr::Sort { input, by } => {
                let vis = id_set(input);
                let by_cols: Vec<ColId> = by.iter().map(|(c, _)| *c).collect();
                self.cols_in(&by_cols, &vis, p, "sort");
                self.check(input, scope);
            }
            PhysExpr::Exchange { input } => {
                // Invariant (e): the planner may only place an Exchange
                // over subtrees the exchange runtime knows how to split;
                // anything else silently degrades or, worse, rebinds
                // non-invariant free inputs across workers.
                if !orthopt_exec::exchange_eligible(input) {
                    self.violation(
                        CheckKind::Physical,
                        p,
                        "Exchange input does not satisfy the parallel shape grammar \
                         (see orthopt-exec::parallel)"
                            .into(),
                    );
                }
                self.check(input, scope);
            }
        }
    }

    /// Physical half of invariant (c): a Local HashAggregate must be
    /// combined above by a global HashAggregate through a valid
    /// [`AggFunc::split`] pair.
    fn check_locals<'t>(&mut self, p: &'t PhysExpr, ancestors: &mut Vec<&'t PhysExpr>) {
        if let PhysExpr::HashAggregate {
            kind: GroupKind::Local,
            aggs,
            ..
        } = p
        {
            for la in aggs {
                match find_combiner(la.out.id, ancestors) {
                    Some(gf) => {
                        if !valid_split_pair(la.func, gf) {
                            self.violation(
                                CheckKind::GroupBy,
                                p,
                                format!(
                                    "global aggregate {gf:?} over local output {} does not \
                                     reconstruct any original aggregate (local part {:?})",
                                    la.out.id, la.func
                                ),
                            );
                        }
                    }
                    None => self.violation(
                        CheckKind::GroupBy,
                        p,
                        format!(
                            "local aggregate output {} ({:?}) is never combined by a global \
                             aggregation above",
                            la.out.id, la.func
                        ),
                    ),
                }
            }
        }
        ancestors.push(p);
        for c in phys_children(p) {
            self.check_locals(c, ancestors);
        }
        ancestors.pop();
    }
}

fn id_set(p: &PhysExpr) -> BTreeSet<ColId> {
    p.out_cols().into_iter().collect()
}

/// Runtime type tag of a literal, `None` for NULL (NULL fits any
/// column type).
fn value_type(v: &orthopt_common::Value) -> Option<&'static str> {
    use orthopt_common::Value;
    match v {
        Value::Null => None,
        Value::Bool(_) => Some("bool"),
        Value::Int(_) => Some("int"),
        Value::Float(_) => Some("float"),
        Value::Str(_) => Some("str"),
        Value::Date(_) => Some("date"),
    }
}

fn find_combiner(local_out: ColId, ancestors: &[&PhysExpr]) -> Option<AggFunc> {
    for anc in ancestors.iter().rev() {
        if let PhysExpr::HashAggregate {
            kind: GroupKind::Vector | GroupKind::Scalar,
            aggs,
            ..
        } = anc
        {
            for g in aggs {
                if let Some(ScalarExpr::Column(c)) = &g.arg {
                    if *c == local_out {
                        return Some(g.func);
                    }
                }
            }
        }
    }
    None
}

fn phys_children(p: &PhysExpr) -> Vec<&PhysExpr> {
    match p {
        PhysExpr::TableScan { .. }
        | PhysExpr::IndexSeek { .. }
        | PhysExpr::SegmentScan { .. }
        | PhysExpr::ConstScan { .. }
        | PhysExpr::MorselScan { .. } => vec![],
        PhysExpr::Filter { input, .. }
        | PhysExpr::Compute { input, .. }
        | PhysExpr::ProjectCols { input, .. }
        | PhysExpr::HashAggregate { input, .. }
        | PhysExpr::AssertMax1 { input }
        | PhysExpr::RowNumber { input, .. }
        | PhysExpr::Sort { input, .. }
        | PhysExpr::Limit { input, .. }
        | PhysExpr::Exchange { input } => vec![input],
        PhysExpr::HashJoin { left, right, .. }
        | PhysExpr::NLJoin { left, right, .. }
        | PhysExpr::ApplyLoop { left, right, .. }
        | PhysExpr::BatchedApply { left, right, .. }
        | PhysExpr::Concat { left, right, .. }
        | PhysExpr::ExceptExec { left, right, .. } => vec![left, right],
        PhysExpr::IndexLookupJoin { left, .. } => vec![left],
        PhysExpr::SegmentExec { input, inner, .. } => vec![input, inner],
    }
}
