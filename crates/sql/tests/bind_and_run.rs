//! End-to-end front-end tests: SQL text → bind → reference interpreter.
//!
//! These validate the §2.1 pipeline: the binder's mutually recursive
//! output executes correctly (if naively) before any normalization.

use orthopt_common::row::bag_eq;
use orthopt_common::{DataType, Error, Value};
use orthopt_exec::Reference;
use orthopt_sql::compile;
use orthopt_storage::{Catalog, ColumnDef, TableDef};

fn fixture() -> Catalog {
    let mut catalog = Catalog::new();
    let cust = catalog
        .create_table(TableDef::new(
            "customer",
            vec![
                ColumnDef::new("c_custkey", DataType::Int),
                ColumnDef::new("c_name", DataType::Str),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    let orders = catalog
        .create_table(TableDef::new(
            "orders",
            vec![
                ColumnDef::new("o_orderkey", DataType::Int),
                ColumnDef::new("o_custkey", DataType::Int),
                ColumnDef::nullable("o_totalprice", DataType::Float),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    catalog
        .table_mut(cust)
        .insert_all([
            vec![Value::Int(1), Value::str("alice")],
            vec![Value::Int(2), Value::str("bob")],
            vec![Value::Int(3), Value::str("carol")],
        ])
        .unwrap();
    catalog
        .table_mut(orders)
        .insert_all([
            vec![Value::Int(10), Value::Int(1), Value::Float(100.0)],
            vec![Value::Int(11), Value::Int(1), Value::Float(200.0)],
            vec![Value::Int(12), Value::Int(2), Value::Float(50.0)],
            vec![Value::Int(13), Value::Int(2), Value::Null],
        ])
        .unwrap();
    catalog.analyze_all();
    catalog
}

fn run(catalog: &Catalog, sql: &str) -> Vec<Vec<Value>> {
    let bound = compile(sql, catalog).expect("compile");
    Reference::new(catalog).run(&bound.rel).expect("run").rows
}

#[test]
fn paper_q1_correlated_subquery() {
    let catalog = fixture();
    let rows = run(
        &catalog,
        "select c_custkey from customer where 150 < \
         (select sum(o_totalprice) from orders where o_custkey = c_custkey)",
    );
    assert!(bag_eq(&rows, &[vec![Value::Int(1)]]));
}

#[test]
fn paper_q1_outerjoin_formulation_is_equivalent() {
    let catalog = fixture();
    let a = run(
        &catalog,
        "select c_custkey from customer where 150 < \
         (select sum(o_totalprice) from orders where o_custkey = c_custkey)",
    );
    let b = run(
        &catalog,
        "select c_custkey from customer left outer join orders \
         on o_custkey = c_custkey group by c_custkey \
         having 150 < sum(o_totalprice)",
    );
    assert!(bag_eq(&a, &b));
}

#[test]
fn paper_q1_derived_table_formulation_is_equivalent() {
    let catalog = fixture();
    let a = run(
        &catalog,
        "select c_custkey from customer where 150 < \
         (select sum(o_totalprice) from orders where o_custkey = c_custkey)",
    );
    let b = run(
        &catalog,
        "select c_custkey from customer, \
         (select o_custkey from orders group by o_custkey \
          having 150 < sum(o_totalprice)) as aggresult \
         where o_custkey = c_custkey",
    );
    assert!(bag_eq(&a, &b));
}

#[test]
fn select_list_scalar_subquery_with_null_for_empty() {
    let catalog = fixture();
    let rows = run(
        &catalog,
        "select c_custkey, (select sum(o_totalprice) from orders \
         where o_custkey = c_custkey) as total from customer",
    );
    assert_eq!(rows.len(), 3);
    let carol = rows.iter().find(|r| r[0] == Value::Int(3)).unwrap();
    assert!(carol[1].is_null());
    let alice = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
    assert_eq!(alice[1], Value::Float(300.0));
}

#[test]
fn paper_q2_exception_subquery_raises() {
    let catalog = fixture();
    let bound = compile(
        "select c_name, (select o_orderkey from orders where o_custkey = c_custkey) \
         from customer",
        &catalog,
    )
    .unwrap();
    let err = Reference::new(&catalog).run(&bound.rel).unwrap_err();
    assert_eq!(err, Error::SubqueryReturnedMoreThanOneRow);
}

#[test]
fn exists_not_exists_in_where() {
    let catalog = fixture();
    let with_orders = run(
        &catalog,
        "select c_custkey from customer where exists \
         (select 1 from orders where o_custkey = c_custkey)",
    );
    assert!(bag_eq(
        &with_orders,
        &[vec![Value::Int(1)], vec![Value::Int(2)]]
    ));
    let without = run(
        &catalog,
        "select c_custkey from customer where not exists \
         (select 1 from orders where o_custkey = c_custkey)",
    );
    assert!(bag_eq(&without, &[vec![Value::Int(3)]]));
}

#[test]
fn in_subquery_and_not_in_with_nulls() {
    let catalog = fixture();
    let have = run(
        &catalog,
        "select c_custkey from customer where c_custkey in \
         (select o_custkey from orders)",
    );
    assert!(bag_eq(&have, &[vec![Value::Int(1)], vec![Value::Int(2)]]));
    // NOT IN over a column containing NULL filters everything.
    let none = run(
        &catalog,
        "select c_custkey from customer where 125 not in \
         (select o_totalprice from orders)",
    );
    assert!(none.is_empty());
}

#[test]
fn group_by_with_having_and_expression_items() {
    let catalog = fixture();
    let rows = run(
        &catalog,
        "select o_custkey, sum(o_totalprice) * 2 as dbl, count(*) as n \
         from orders group by o_custkey having count(*) >= 2",
    );
    assert_eq!(rows.len(), 2);
    let one = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
    assert_eq!(one[1], Value::Float(600.0));
    assert_eq!(one[2], Value::Int(2));
    let two = rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
    assert_eq!(two[1], Value::Float(100.0)); // NULL skipped by SUM
}

#[test]
fn scalar_aggregate_without_group_by() {
    let catalog = fixture();
    let rows = run(&catalog, "select count(*), avg(o_totalprice) from orders");
    assert_eq!(rows, vec![vec![Value::Int(4), Value::Float(350.0 / 3.0)]]);
    // Scalar aggregation over an empty filter result still yields a row.
    let rows = run(
        &catalog,
        "select count(*), sum(o_totalprice) from orders where o_orderkey > 999",
    );
    assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
}

#[test]
fn distinct_collapses_duplicates() {
    let catalog = fixture();
    let rows = run(&catalog, "select distinct o_custkey from orders");
    assert!(bag_eq(&rows, &[vec![Value::Int(1)], vec![Value::Int(2)]]));
}

#[test]
fn union_all_keeps_duplicates() {
    let catalog = fixture();
    let rows = run(
        &catalog,
        "select c_custkey from customer union all select o_custkey from orders",
    );
    assert_eq!(rows.len(), 7);
}

#[test]
fn quantified_comparison_binds_and_runs() {
    let catalog = fixture();
    let rows = run(
        &catalog,
        "select c_custkey from customer where c_custkey <= all \
         (select o_custkey from orders)",
    );
    assert!(bag_eq(&rows, &[vec![Value::Int(1)]]));
}

#[test]
fn case_expression_in_select() {
    let catalog = fixture();
    let rows = run(
        &catalog,
        "select c_custkey, case when c_custkey = 1 then 'vip' else 'std' end \
         from customer",
    );
    let alice = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
    assert_eq!(alice[1], Value::str("vip"));
}

#[test]
fn qualified_references_and_aliases() {
    let catalog = fixture();
    let rows = run(
        &catalog,
        "select c.c_custkey from customer c, orders o \
         where c.c_custkey = o.o_custkey and o.o_totalprice > 150",
    );
    assert!(bag_eq(&rows, &[vec![Value::Int(1)]]));
}

#[test]
fn bind_errors() {
    let catalog = fixture();
    for (sql, what) in [
        ("select nope from customer", "unknown column"),
        ("select * from nope", "unknown table"),
        (
            "select o_custkey, o_totalprice from orders group by o_custkey",
            "ungrouped",
        ),
        (
            "select c_custkey from customer where sum(c_custkey) > 1",
            "aggregate in WHERE",
        ),
        (
            "select (select o_orderkey, o_custkey from orders) from customer",
            "multi-column scalar subquery",
        ),
        (
            "select c_custkey from customer, orders where o_orderkey in (select 1, 2)",
            "arity",
        ),
    ] {
        assert!(
            compile(sql, &catalog).is_err(),
            "should fail: {what}: {sql}"
        );
    }
}

#[test]
fn ambiguous_column_is_an_error() {
    let mut catalog = fixture();
    catalog
        .create_table(TableDef::new(
            "orders2",
            vec![ColumnDef::new("o_custkey", DataType::Int)],
            vec![],
        ))
        .unwrap();
    assert!(compile("select o_custkey from orders, orders2", &catalog).is_err());
}

#[test]
fn order_by_resolves_names_and_positions() {
    let catalog = fixture();
    let bound = compile(
        "select c_custkey, c_name from customer order by c_name, 1",
        &catalog,
    )
    .unwrap();
    assert_eq!(bound.order_by.len(), 2);
    assert_eq!(bound.order_by[0], (bound.output[1].id, false));
    assert_eq!(bound.order_by[1], (bound.output[0].id, false));
}

#[test]
fn output_names_follow_aliases() {
    let catalog = fixture();
    let bound = compile("select c_custkey as id, c_name from customer", &catalog).unwrap();
    assert_eq!(bound.output[0].name, "id");
    assert_eq!(bound.output[1].name, "c_name");
}

#[test]
fn correlated_subquery_uses_free_columns() {
    let catalog = fixture();
    let bound = compile(
        "select c_custkey from customer where 150 < \
         (select sum(o_totalprice) from orders where o_custkey = c_custkey)",
        &catalog,
    )
    .unwrap();
    // The subquery marker's relational body must reference the outer
    // customer key as a free column.
    let mut free_found = false;
    bound.rel.walk_scalars(&mut |e| {
        if let orthopt_ir::ScalarExpr::Subquery(rel) = e {
            free_found = !rel.free_cols().is_empty();
        }
    });
    assert!(free_found);
}

#[test]
fn select_without_from() {
    let catalog = fixture();
    let rows = run(&catalog, "select 1 + 1, 'x'");
    assert_eq!(rows, vec![vec![Value::Int(2), Value::str("x")]]);
}
