//! Parser robustness: random input must never panic — it either parses
//! or returns a parse error — and structured generated queries must
//! always parse.

use orthopt_sql::parse;
use proptest::prelude::*;

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(s in "\\PC{0,120}") {
        let _ = parse(&s);
    }

    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("select".to_string()),
            Just("from".to_string()),
            Just("where".to_string()),
            Just("group".to_string()),
            Just("by".to_string()),
            Just("having".to_string()),
            Just("exists".to_string()),
            Just("in".to_string()),
            Just("not".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(",".to_string()),
            Just("*".to_string()),
            Just("=".to_string()),
            Just("<".to_string()),
            Just("'str'".to_string()),
            Just("42".to_string()),
            Just("3.5".to_string()),
            Just("tbl".to_string()),
            Just("col".to_string()),
        ],
        0..24,
    )) {
        let _ = parse(&tokens.join(" "));
    }

    #[test]
    fn generated_selects_parse(
        ncols in 1usize..4,
        threshold in 0i64..100,
        use_group in any::<bool>(),
        cmp in prop_oneof![Just("<"), Just(">="), Just("=")],
    ) {
        let cols: Vec<String> = (0..ncols).map(|i| format!("c{i}")).collect();
        let mut sql = format!("select {} from t where c0 {} {}", cols.join(", "), cmp, threshold);
        if use_group {
            sql.push_str(&format!(" group by {}", cols.join(", ")));
        }
        parse(&sql).expect("generated query must parse");
    }

    #[test]
    fn nested_subqueries_parse(depth in 1usize..6) {
        let mut sql = "select a from t0".to_string();
        for d in 1..=depth {
            sql = format!("select a from t{d} where x in ({sql})");
        }
        parse(&sql).expect("nested query must parse");
    }
}
