//! Abstract syntax tree for the supported SQL subset.

/// A full query: set expression plus presentation order and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Body (SELECT or UNION ALL chain).
    pub body: SetExpr,
    /// ORDER BY items (output names or expressions; `true` = DESC).
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// Set-level expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A single SELECT block.
    Select(Box<Select>),
    /// `UNION ALL` of two bodies.
    UnionAll(Box<SetExpr>, Box<SetExpr>),
}

/// One SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection items.
    pub items: Vec<SelectItem>,
    /// FROM clause (comma-separated refs are cross joins).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_: Option<Expr>,
    /// GROUP BY expressions (column references).
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
}

/// Projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Table {
        /// Table name.
        name: String,
        /// Alias (defaults to the table name).
        alias: Option<String>,
    },
    /// Derived table `(query) AS alias`.
    Derived {
        /// The subquery.
        query: Query,
        /// Mandatory alias.
        alias: String,
    },
    /// Explicit join.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// ON predicate.
        on: Expr,
    },
}

/// AST join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    LeftOuter,
}

/// Binary operators (comparisons and arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Quantifier for quantified comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `ANY` / `SOME`
    Any,
    /// `ALL`
    All,
}

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Date (days since epoch), from `DATE 'yyyy-mm-dd'`.
    Date(i32),
}

/// Scalar expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Possibly-qualified identifier (`a`, `t.a`).
    Ident(Vec<String>),
    /// Literal.
    Literal(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// List items.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Subquery.
        query: Box<Query>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists {
        /// Subquery.
        query: Box<Query>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// Scalar subquery.
    Subquery(Box<Query>),
    /// `expr op ANY/ALL (subquery)`.
    Quantified {
        /// Comparison operator.
        op: BinOp,
        /// Quantifier.
        quant: Quantifier,
        /// Left operand.
        expr: Box<Expr>,
        /// Subquery.
        query: Box<Query>,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        /// Optional comparand.
        operand: Option<Box<Expr>>,
        /// WHEN/THEN pairs.
        whens: Vec<(Expr, Expr)>,
        /// ELSE expression.
        else_: Option<Box<Expr>>,
    },
    /// Function call: aggregates (`sum`, `count`, …) or `count(*)`.
    FuncCall {
        /// Lower-cased function name.
        name: String,
        /// Arguments (empty plus `star=true` for `count(*)`).
        args: Vec<Expr>,
        /// `DISTINCT` inside the call.
        distinct: bool,
        /// True for `count(*)`.
        star: bool,
    },
}
