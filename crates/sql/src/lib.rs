#![warn(missing_docs)]
//! SQL front end for `orthopt`.
//!
//! Implements the "parse and bind" step of §4: SQL text becomes an
//! operator tree "containing both relational and scalar operators",
//! where any scalar expression may have relational children (correlated
//! subqueries are allowed anywhere scalar expressions are, §2.1). The
//! output of [`bind`] is the *un-normalized* form — Figure 3 of the
//! paper — which `orthopt-rewrite` then normalizes.
//!
//! The dialect is the subset of SQL-92 the paper exercises: SELECT
//! (DISTINCT) lists with expressions and subqueries, FROM with inner /
//! left outer joins and derived tables, WHERE, GROUP BY / HAVING,
//! UNION ALL, ORDER BY, EXISTS / IN / quantified comparisons, CASE, and
//! the five standard aggregates.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::{bind, BoundQuery};
pub use parser::parse;

use orthopt_common::Result;
use orthopt_storage::Catalog;

/// Convenience: parse + bind in one call.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<BoundQuery> {
    let query = parse(sql)?;
    bind(&query, catalog)
}
