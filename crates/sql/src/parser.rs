//! Recursive-descent parser.

use orthopt_common::{Error, Result};

use crate::ast::*;
use crate::lexer::{tokenize, Sym, Token};

/// Parses one SQL query (optionally `;`-terminated).
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.eat_symbol(Sym::Semi);
    if !p.at_end() {
        return Err(Error::Parse(format!(
            "trailing input at token {:?}",
            p.peek()
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {kw:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) if !is_reserved(&s) => Ok(s),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // query := set_expr [ORDER BY expr (, expr)*]
    fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((expr, desc));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => {
                    return Err(Error::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            body,
            order_by,
            limit,
        })
    }

    // set_expr := select (UNION ALL select)*
    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = SetExpr::Select(Box::new(self.parse_select()?));
        while self.peek_kw("union") {
            self.pos += 1;
            self.expect_kw("all")?;
            let right = SetExpr::Select(Box::new(self.parse_select()?));
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Sym::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.expect_ident()?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    if !is_reserved(s) {
                        let s = s.clone();
                        self.pos += 1;
                        Some(s)
                    } else {
                        None
                    }
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            where_,
            group_by,
            having,
        })
    }

    // table_ref := primary_ref (join primary_ref ON expr)*
    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_primary_ref()?;
        loop {
            let kind = if self.peek_kw("join") || self.peek_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.peek_kw("left") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::LeftOuter
            } else {
                break;
            };
            let right = self.parse_primary_ref()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_primary_ref(&mut self) -> Result<TableRef> {
        if self.eat_symbol(Sym::LParen) {
            // Derived table or parenthesized join.
            if self.peek_kw("select") {
                let query = self.parse_query()?;
                self.expect_symbol(Sym::RParen)?;
                self.eat_kw("as");
                let alias = self.expect_ident()?;
                return Ok(TableRef::Derived { query, alias });
            }
            let inner = self.parse_table_ref()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(inner);
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            if !is_reserved(s) {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // Expression precedence: OR < AND < NOT < predicate < add < mul < unary.
    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_predicate()
    }

    // predicate := additive [cmp (additive | ANY/ALL subquery)]
    //            | additive IS [NOT] NULL
    //            | additive [NOT] IN (list | subquery)
    //            | additive BETWEEN additive AND additive
    fn parse_predicate(&mut self) -> Result<Expr> {
        if self.peek_kw("exists") {
            self.pos += 1;
            self.expect_symbol(Sym::LParen)?;
            let q = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated: false,
            });
        }
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN
        let negated = if self.peek_kw("not")
            && matches!(self.peek2(), Some(Token::Ident(s)) if s == "in" || s == "between")
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect_symbol(Sym::LParen)?;
            if self.peek_kw("select") {
                let q = self.parse_query()?;
                self.expect_symbol(Sym::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let lo = self.parse_additive()?;
            self.expect_kw("and")?;
            let hi = self.parse_additive()?;
            let test = Expr::And(
                Box::new(Expr::Binary {
                    op: BinOp::Ge,
                    left: Box::new(left.clone()),
                    right: Box::new(lo),
                }),
                Box::new(Expr::Binary {
                    op: BinOp::Le,
                    left: Box::new(left),
                    right: Box::new(hi),
                }),
            );
            return Ok(if negated {
                Expr::Not(Box::new(test))
            } else {
                test
            });
        }
        if negated {
            return Err(Error::Parse("dangling NOT".into()));
        }
        // Comparison.
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        let Some(op) = op else { return Ok(left) };
        self.pos += 1;
        // Quantified comparison?
        if self.peek_kw("any") || self.peek_kw("some") || self.peek_kw("all") {
            let quant = if self.eat_kw("all") {
                Quantifier::All
            } else {
                self.eat_kw("any");
                self.eat_kw("some");
                Quantifier::Any
            };
            self.expect_symbol(Sym::LParen)?;
            let q = self.parse_query()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::Quantified {
                op,
                quant,
                expr: Box::new(left),
                query: Box::new(q),
            });
        }
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.parse_primary_expr()
    }

    fn parse_primary_expr(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.peek_kw("select") {
                    let q = self.parse_query()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) => match word.as_str() {
                "null" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Null))
                }
                "true" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Bool(true)))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Literal::Bool(false)))
                }
                "date" => {
                    // DATE 'yyyy-mm-dd'
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Str(s)) => Ok(Expr::Literal(Literal::Date(parse_date(&s)?))),
                        other => Err(Error::Parse(format!(
                            "expected date string, found {other:?}"
                        ))),
                    }
                }
                "case" => self.parse_case(),
                _ => {
                    // Function call or identifier.
                    if matches!(self.peek2(), Some(Token::Symbol(Sym::LParen)))
                        && !is_reserved(&word)
                    {
                        self.pos += 2;
                        let distinct = self.eat_kw("distinct");
                        let mut star = false;
                        let mut args = Vec::new();
                        if self.eat_symbol(Sym::Star) {
                            star = true;
                        } else if !matches!(self.peek(), Some(Token::Symbol(Sym::RParen))) {
                            loop {
                                args.push(self.parse_expr()?);
                                if !self.eat_symbol(Sym::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(Expr::FuncCall {
                            name: word,
                            args,
                            distinct,
                            star,
                        });
                    }
                    if is_reserved(&word) {
                        return Err(Error::Parse(format!(
                            "unexpected keyword {word:?} in expression"
                        )));
                    }
                    self.pos += 1;
                    let mut parts = vec![word];
                    while self.eat_symbol(Sym::Dot) {
                        parts.push(self.expect_ident()?);
                    }
                    Ok(Expr::Ident(parts))
                }
            },
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_kw("case")?;
        let operand = if self.peek_kw("when") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut whens = Vec::new();
        while self.eat_kw("when") {
            let w = self.parse_expr()?;
            self.expect_kw("then")?;
            let t = self.parse_expr()?;
            whens.push((w, t));
        }
        if whens.is_empty() {
            return Err(Error::Parse("CASE without WHEN".into()));
        }
        let else_ = if self.eat_kw("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            operand,
            whens,
            else_,
        })
    }
}

/// Days since 1970-01-01 for a `yyyy-mm-dd` string (proleptic Gregorian).
pub fn parse_date(s: &str) -> Result<i32> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(Error::Parse(format!("bad date literal {s:?}")));
    }
    let y: i64 = parts[0]
        .parse()
        .map_err(|_| Error::Parse(format!("bad date {s:?}")))?;
    let m: i64 = parts[1]
        .parse()
        .map_err(|_| Error::Parse(format!("bad date {s:?}")))?;
    let d: i64 = parts[2]
        .parse()
        .map_err(|_| Error::Parse(format!("bad date {s:?}")))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(Error::Parse(format!("bad date {s:?}")));
    }
    // Howard Hinnant's days_from_civil.
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Ok((era * 146_097 + doe - 719_468) as i32)
}

fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "select"
            | "from"
            | "where"
            | "group"
            | "by"
            | "having"
            | "order"
            | "union"
            | "all"
            | "any"
            | "some"
            | "distinct"
            | "as"
            | "on"
            | "join"
            | "inner"
            | "left"
            | "outer"
            | "and"
            | "or"
            | "not"
            | "in"
            | "is"
            | "null"
            | "exists"
            | "between"
            | "case"
            | "when"
            | "then"
            | "else"
            | "end"
            | "true"
            | "false"
            | "asc"
            | "desc"
            | "limit"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        let q = parse(
            "select c_custkey from customer where 1000000 < \
             (select sum(o_totalprice) from orders where o_custkey = c_custkey)",
        )
        .unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert_eq!(s.items.len(), 1);
        let Some(Expr::Binary {
            op: BinOp::Lt,
            right,
            ..
        }) = &s.where_
        else {
            panic!("where: {:?}", s.where_)
        };
        assert!(matches!(right.as_ref(), Expr::Subquery(_)));
    }

    #[test]
    fn parses_outerjoin_groupby_having() {
        let q = parse(
            "select c_custkey from customer left outer join orders \
             on o_custkey = c_custkey group by c_custkey \
             having 1000000 < sum(o_totalprice)",
        )
        .unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(matches!(
            s.from[0],
            TableRef::Join {
                kind: JoinKind::LeftOuter,
                ..
            }
        ));
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_derived_table() {
        let q = parse(
            "select * from customer, (select o_custkey from orders group by o_custkey) \
             as aggresult where o_custkey = c_custkey",
        )
        .unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert_eq!(s.from.len(), 2);
        assert!(matches!(&s.from[1], TableRef::Derived { alias, .. } if alias == "aggresult"));
    }

    #[test]
    fn parses_union_all() {
        let q = parse("select a from t union all select b from u").unwrap();
        assert!(matches!(q.body, SetExpr::UnionAll(_, _)));
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let q = parse("select 1 from t where not exists (select 1 from u)").unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(matches!(
            s.where_,
            Some(Expr::Not(ref inner)) if matches!(**inner, Expr::Exists { .. })
        ));
    }

    #[test]
    fn parses_quantified_and_in() {
        let q = parse(
            "select 1 from t where a > all (select b from u) and c in (select d from v) \
             and e not in (1, 2, 3)",
        )
        .unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        let mut found_quant = false;
        let mut found_insub = false;
        let mut found_inlist = false;
        fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
            f(e);
            match e {
                Expr::And(a, b) | Expr::Or(a, b) => {
                    walk(a, f);
                    walk(b, f);
                }
                Expr::Not(a) => walk(a, f),
                _ => {}
            }
        }
        walk(s.where_.as_ref().unwrap(), &mut |e| match e {
            Expr::Quantified { .. } => found_quant = true,
            Expr::InSubquery { .. } => found_insub = true,
            Expr::InList { negated: true, .. } => found_inlist = true,
            _ => {}
        });
        assert!(found_quant && found_insub && found_inlist);
    }

    #[test]
    fn parses_case_and_arithmetic_precedence() {
        let q = parse("select case when a then 1 else 2 end, 1 + 2 * 3 from t").unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.items[1] else {
            panic!()
        };
        // 1 + (2 * 3)
        assert!(matches!(
            expr,
            Expr::Binary { op: BinOp::Add, right, .. }
                if matches!(**right, Expr::Binary { op: BinOp::Mul, .. })
        ));
    }

    #[test]
    fn parses_between_as_range() {
        let q = parse("select 1 from t where a between 1 and 3").unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(matches!(s.where_, Some(Expr::And(_, _))));
    }

    #[test]
    fn date_literal_days() {
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
        assert_eq!(parse_date("2000-01-01").unwrap(), 10957);
        assert!(parse_date("1970-13-01").is_err());
    }

    #[test]
    fn count_star_and_distinct() {
        let q = parse("select count(*), count(distinct a) from t").unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr {
                expr: Expr::FuncCall { star: true, .. },
                ..
            }
        ));
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr {
                expr: Expr::FuncCall { distinct: true, .. },
                ..
            }
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("select 1 from t extra garbage here").is_err());
    }

    #[test]
    fn qualified_names() {
        let q = parse("select t.a from s t where t.a = 1").unwrap();
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(matches!(
            &s.items[0],
            SelectItem::Expr { expr: Expr::Ident(parts), .. } if parts.len() == 2
        ));
    }

    #[test]
    fn order_by_parses() {
        let q = parse("select a from t order by a, b").unwrap();
        assert_eq!(q.order_by.len(), 2);
    }
}
