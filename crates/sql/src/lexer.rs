//! SQL tokenizer.

use orthopt_common::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (identifiers lower-cased; keyword-ness is
    /// decided by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes removed, `''` unescaped).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

/// Tokenizes SQL text.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semi));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Sym::Ne));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => return Err(Error::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &sql[start..i];
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad float literal {text}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad int literal {text}")))?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(sql[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_query() {
        let toks = tokenize("SELECT a, b FROM t WHERE a >= 10.5").unwrap();
        assert_eq!(toks[0], Token::Ident("select".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Float(10.5)));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("select -- comment\n 1").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn ne_forms() {
        assert_eq!(
            tokenize("<> !=").unwrap(),
            vec![Token::Symbol(Sym::Ne), Token::Symbol(Sym::Ne)]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Float(1000.0)]);
    }
}
