//! Name resolution and IR construction ("algebrize", §2.1/§4).
//!
//! The binder turns an AST `Query` into a `RelExpr` where scalar
//! expressions may still own relational subqueries — the mutually
//! recursive form of Figure 3. Correlation needs no special machinery:
//! an inner query that resolves a name against an *enclosing* scope
//! simply ends up referencing a [`ColId`] it does not produce.

use std::collections::HashMap;

use orthopt_common::{ColId, ColIdGen, DataType, Error, Result, Value};
use orthopt_ir::{
    AggDef, AggFunc, ArithOp, CmpOp, ColStat, ColumnMeta, GetMeta, GroupKind, JoinKind, MapDef,
    Quant, RelExpr, ScalarExpr,
};
use orthopt_storage::Catalog;

use crate::ast;

/// A bound query: operator tree plus presentation metadata.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The operator tree (un-normalized; may contain subquery markers).
    pub rel: RelExpr,
    /// Output column metadata, parallel to `rel.output_cols()`.
    pub output: Vec<ColumnMeta>,
    /// ORDER BY columns (subset of output), major first; `true` = DESC.
    pub order_by: Vec<(ColId, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// Binds a parsed query against a catalog.
pub fn bind(query: &ast::Query, catalog: &Catalog) -> Result<BoundQuery> {
    let mut binder = Binder {
        catalog,
        gen: ColIdGen::default(),
        col_meta: HashMap::new(),
    };
    let scope = Scope::root();
    let bound = binder.bind_set_expr(&query.body, &scope)?;
    let order_by = binder.bind_order_by(&query.order_by, &bound)?;
    Ok(BoundQuery {
        rel: bound.rel,
        output: bound.cols,
        order_by,
        limit: query.limit.map(|n| n as usize),
    })
}

/// One visible relation in a scope level.
#[derive(Debug, Clone)]
struct Frame {
    alias: String,
    cols: Vec<ColumnMeta>,
}

/// Lexical scope: a stack of levels, each holding the FROM frames of one
/// SELECT. Inner queries see outer levels — resolving there creates a
/// correlation.
#[derive(Debug, Clone, Default)]
struct Scope {
    levels: Vec<Vec<Frame>>,
}

impl Scope {
    fn root() -> Scope {
        Scope::default()
    }

    /// New scope for a nested SELECT: same outer levels plus a fresh one.
    fn child(&self) -> Scope {
        let mut s = self.clone();
        s.levels.push(Vec::new());
        s
    }

    fn current_mut(&mut self) -> &mut Vec<Frame> {
        self.levels.last_mut().expect("scope has a level")
    }

    fn current(&self) -> &[Frame] {
        self.levels.last().map_or(&[], Vec::as_slice)
    }

    /// Column ids visible in the current (innermost) level.
    fn current_col_ids(&self) -> Vec<ColId> {
        self.current()
            .iter()
            .flat_map(|f| f.cols.iter().map(|c| c.id))
            .collect()
    }

    fn resolve(&self, parts: &[String]) -> Result<ColumnMeta> {
        let (qual, name) = match parts {
            [name] => (None, name.as_str()),
            [qual, name] => (Some(qual.as_str()), name.as_str()),
            _ => {
                return Err(Error::Bind(format!(
                    "unsupported qualified name {}",
                    parts.join(".")
                )))
            }
        };
        for level in self.levels.iter().rev() {
            let mut hits = Vec::new();
            for frame in level {
                if let Some(q) = qual {
                    if frame.alias != q {
                        continue;
                    }
                }
                for c in &frame.cols {
                    if c.name == name {
                        hits.push(c.clone());
                    }
                }
            }
            match hits.len() {
                0 => {}
                1 => return Ok(hits.pop().expect("one hit")),
                _ => return Err(Error::Bind(format!("ambiguous column reference {name}"))),
            }
        }
        Err(Error::UnknownColumn(parts.join(".")))
    }
}

/// A bound set expression.
struct Bound {
    rel: RelExpr,
    cols: Vec<ColumnMeta>,
}

/// Collects aggregate calls while binding a grouped SELECT.
#[derive(Default)]
struct AggCollector {
    defs: Vec<AggDef>,
}

impl AggCollector {
    /// Registers an aggregate call, reusing an existing definition for
    /// syntactically identical calls.
    fn register(
        &mut self,
        func: AggFunc,
        arg: Option<ScalarExpr>,
        distinct: bool,
        out: ColumnMeta,
    ) -> ColId {
        for d in &self.defs {
            if d.func == func && d.arg == arg && d.distinct == distinct {
                return d.out.id;
            }
        }
        let id = out.id;
        self.defs.push(AggDef {
            out,
            func,
            arg,
            distinct,
        });
        id
    }
}

struct Binder<'a> {
    catalog: &'a Catalog,
    gen: ColIdGen,
    /// Metadata of every column this binder has created, for type
    /// inference of computed expressions.
    col_meta: HashMap<ColId, ColumnMeta>,
}

impl Binder<'_> {
    fn fresh_col(&mut self, name: impl Into<String>, ty: DataType, nullable: bool) -> ColumnMeta {
        let meta = ColumnMeta::new(self.gen.fresh(), name, ty, nullable);
        self.col_meta.insert(meta.id, meta.clone());
        meta
    }

    fn bind_set_expr(&mut self, body: &ast::SetExpr, scope: &Scope) -> Result<Bound> {
        match body {
            ast::SetExpr::Select(select) => self.bind_select(select, scope),
            ast::SetExpr::UnionAll(left, right) => {
                let l = self.bind_set_expr(left, scope)?;
                let r = self.bind_set_expr(right, scope)?;
                if l.cols.len() != r.cols.len() {
                    return Err(Error::Bind(format!(
                        "UNION ALL arity mismatch: {} vs {} columns",
                        l.cols.len(),
                        r.cols.len()
                    )));
                }
                let cols: Vec<ColumnMeta> = l
                    .cols
                    .iter()
                    .zip(&r.cols)
                    .map(|(lc, rc)| {
                        self.fresh_col(lc.name.clone(), lc.ty, lc.nullable || rc.nullable)
                    })
                    .collect();
                let rel = RelExpr::UnionAll {
                    left: Box::new(l.rel),
                    right: Box::new(r.rel),
                    cols: cols.clone(),
                    left_map: l.cols.iter().map(|c| c.id).collect(),
                    right_map: r.cols.iter().map(|c| c.id).collect(),
                };
                Ok(Bound { rel, cols })
            }
        }
    }

    fn bind_select(&mut self, select: &ast::Select, outer: &Scope) -> Result<Bound> {
        let mut scope = outer.child();

        // FROM: comma list folds into cross joins.
        let mut rel: Option<RelExpr> = None;
        for table_ref in &select.from {
            let r = self.bind_table_ref(table_ref, outer, &mut scope)?;
            rel = Some(match rel {
                None => r,
                Some(acc) => RelExpr::Join {
                    kind: JoinKind::Inner,
                    left: Box::new(acc),
                    right: Box::new(r),
                    predicate: ScalarExpr::true_(),
                },
            });
        }
        let mut rel = rel.unwrap_or(RelExpr::ConstRel {
            cols: vec![],
            rows: vec![vec![]],
        });

        // WHERE (aggregates not allowed here).
        if let Some(w) = &select.where_ {
            let predicate = self.bind_scalar(w, &scope, None)?;
            rel = RelExpr::Select {
                input: Box::new(rel),
                predicate,
            };
        }

        // GROUP BY columns.
        let mut group_cols = Vec::new();
        for g in &select.group_by {
            match self.bind_scalar(g, &scope, None)? {
                ScalarExpr::Column(id) => group_cols.push(id),
                other => {
                    return Err(Error::Bind(format!(
                        "GROUP BY supports column references only, got {other}"
                    )))
                }
            }
        }

        // Bind projection items and HAVING, collecting aggregates.
        let mut collector = AggCollector::default();
        let mut items: Vec<(ScalarExpr, Option<String>)> = Vec::new();
        let mut saw_wildcard = false;
        for item in &select.items {
            match item {
                ast::SelectItem::Wildcard => {
                    saw_wildcard = true;
                    for frame in scope.current() {
                        for c in &frame.cols {
                            items.push((ScalarExpr::Column(c.id), Some(c.name.clone())));
                        }
                    }
                }
                ast::SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_scalar(expr, &scope, Some(&mut collector))?;
                    items.push((bound, alias.clone()));
                }
            }
        }
        let having = select
            .having
            .as_ref()
            .map(|h| self.bind_scalar(h, &scope, Some(&mut collector)))
            .transpose()?;

        let grouped =
            !group_cols.is_empty() || !collector.defs.is_empty() || select.having.is_some();
        if grouped {
            if saw_wildcard {
                return Err(Error::Bind(
                    "SELECT * cannot be combined with aggregation".into(),
                ));
            }
            // References to ungrouped current-level columns are errors.
            let current: Vec<ColId> = scope.current_col_ids();
            let agg_internal: std::collections::BTreeSet<ColId> = collector
                .defs
                .iter()
                .flat_map(|d| d.arg.iter().flat_map(orthopt_ir::ScalarExpr::cols))
                .collect();
            let check = |expr: &ScalarExpr| -> Result<()> {
                for c in expr.top_level_cols() {
                    if current.contains(&c)
                        && !group_cols.contains(&c)
                        && !agg_internal.contains(&c)
                    {
                        return Err(Error::Bind(format!(
                            "column {c} must appear in GROUP BY or inside an aggregate"
                        )));
                    }
                }
                Ok(())
            };
            for (expr, _) in &items {
                check(expr)?;
            }
            if let Some(h) = &having {
                check(h)?;
            }
            let kind = if group_cols.is_empty() {
                GroupKind::Scalar
            } else {
                GroupKind::Vector
            };
            rel = RelExpr::GroupBy {
                kind,
                input: Box::new(rel),
                group_cols,
                aggs: collector.defs,
            };
            if let Some(h) = having {
                rel = RelExpr::Select {
                    input: Box::new(rel),
                    predicate: h,
                };
            }
        }

        // Projection: bare columns pass through; computed items get a Map.
        let mut out_cols: Vec<ColumnMeta> = Vec::with_capacity(items.len());
        let mut defs: Vec<MapDef> = Vec::new();
        for (i, (expr, alias)) in items.into_iter().enumerate() {
            match expr {
                ScalarExpr::Column(id) => {
                    let meta = self.col_meta.get(&id).cloned().unwrap_or_else(|| {
                        ColumnMeta::new(id, format!("col{i}"), DataType::Int, true)
                    });
                    let name = alias.unwrap_or_else(|| meta.name.clone());
                    out_cols.push(ColumnMeta { name, ..meta });
                }
                computed => {
                    let (ty, nullable) = self.infer_type(&computed);
                    let name = alias.unwrap_or_else(|| format!("col{i}"));
                    let meta = self.fresh_col(name, ty, nullable);
                    defs.push(MapDef {
                        col: meta.clone(),
                        expr: computed,
                    });
                    out_cols.push(meta);
                }
            }
        }
        if !defs.is_empty() {
            rel = RelExpr::Map {
                input: Box::new(rel),
                defs,
            };
        }
        rel = RelExpr::Project {
            input: Box::new(rel),
            cols: out_cols.iter().map(|c| c.id).collect(),
        };

        if select.distinct {
            rel = RelExpr::GroupBy {
                kind: GroupKind::Vector,
                input: Box::new(rel),
                group_cols: out_cols.iter().map(|c| c.id).collect(),
                aggs: vec![],
            };
        }
        Ok(Bound {
            rel,
            cols: out_cols,
        })
    }

    fn bind_table_ref(
        &mut self,
        table_ref: &ast::TableRef,
        outer: &Scope,
        scope: &mut Scope,
    ) -> Result<RelExpr> {
        match table_ref {
            ast::TableRef::Table { name, alias } => {
                let id = self.catalog.resolve(name)?;
                let table = self.catalog.table(id);
                let mut cols = Vec::with_capacity(table.def.columns.len());
                for c in &table.def.columns {
                    cols.push(self.fresh_col(c.name.clone(), c.ty, c.nullable));
                }
                let keys = table
                    .def
                    .keys
                    .iter()
                    .map(|k| k.iter().map(|&i| cols[i].id).collect())
                    .collect();
                let stats = table.stats();
                let row_count = stats.map_or(1000.0, |s| s.row_count as f64);
                let col_stats = (0..cols.len())
                    .map(|i| match stats {
                        Some(s) => {
                            let cs = &s.columns[i];
                            ColStat {
                                ndv: (cs.ndv as f64).max(1.0),
                                null_frac: if s.row_count == 0 {
                                    0.0
                                } else {
                                    cs.null_count as f64 / s.row_count as f64
                                },
                                min: cs.min.as_ref().and_then(value_as_f64),
                                max: cs.max.as_ref().and_then(value_as_f64),
                            }
                        }
                        None => ColStat::unknown(),
                    })
                    .collect();
                let indexes = table.indexes().iter().map(|ix| ix.cols.clone()).collect();
                let get = RelExpr::Get(GetMeta {
                    table: id,
                    table_name: table.def.name.clone(),
                    positions: (0..cols.len()).collect(),
                    keys,
                    row_count,
                    col_stats,
                    indexes,
                    cols: cols.clone(),
                });
                scope.current_mut().push(Frame {
                    alias: alias.clone().unwrap_or_else(|| table.def.name.clone()),
                    cols,
                });
                Ok(get)
            }
            ast::TableRef::Derived { query, alias } => {
                // Derived tables see outer scopes but not sibling frames.
                let inner_scope = outer.clone();
                let bound = self.bind_set_expr(&query.body, &inner_scope)?;
                if !query.order_by.is_empty() {
                    return Err(Error::Bind(
                        "ORDER BY in a derived table is not supported".into(),
                    ));
                }
                scope.current_mut().push(Frame {
                    alias: alias.clone(),
                    cols: bound.cols,
                });
                Ok(bound.rel)
            }
            ast::TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.bind_table_ref(left, outer, scope)?;
                let r = self.bind_table_ref(right, outer, scope)?;
                let predicate = self.bind_scalar(on, scope, None)?;
                Ok(RelExpr::Join {
                    kind: match kind {
                        ast::JoinKind::Inner => JoinKind::Inner,
                        ast::JoinKind::LeftOuter => JoinKind::LeftOuter,
                    },
                    left: Box::new(l),
                    right: Box::new(r),
                    predicate,
                })
            }
        }
    }

    fn bind_scalar(
        &mut self,
        expr: &ast::Expr,
        scope: &Scope,
        mut aggs: Option<&mut AggCollector>,
    ) -> Result<ScalarExpr> {
        match expr {
            ast::Expr::Ident(parts) => Ok(ScalarExpr::Column(scope.resolve(parts)?.id)),
            ast::Expr::Literal(lit) => Ok(ScalarExpr::Literal(match lit {
                ast::Literal::Null => Value::Null,
                ast::Literal::Bool(b) => Value::Bool(*b),
                ast::Literal::Int(i) => Value::Int(*i),
                ast::Literal::Float(f) => Value::Float(*f),
                ast::Literal::Str(s) => Value::str(s),
                ast::Literal::Date(d) => Value::Date(*d),
            })),
            ast::Expr::Binary { op, left, right } => {
                let l = self.bind_scalar(left, scope, aggs.as_deref_mut())?;
                let r = self.bind_scalar(right, scope, aggs)?;
                Ok(match bin_op(*op) {
                    BoundOp::Cmp(c) => ScalarExpr::cmp(c, l, r),
                    BoundOp::Arith(a) => ScalarExpr::Arith {
                        op: a,
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                })
            }
            ast::Expr::Neg(e) => Ok(ScalarExpr::Neg(Box::new(self.bind_scalar(e, scope, aggs)?))),
            ast::Expr::And(a, b) => {
                let l = self.bind_scalar(a, scope, aggs.as_deref_mut())?;
                let r = self.bind_scalar(b, scope, aggs)?;
                Ok(ScalarExpr::and([l, r]))
            }
            ast::Expr::Or(a, b) => {
                let l = self.bind_scalar(a, scope, aggs.as_deref_mut())?;
                let r = self.bind_scalar(b, scope, aggs)?;
                Ok(ScalarExpr::Or(vec![l, r]))
            }
            ast::Expr::Not(e) => Ok(ScalarExpr::Not(Box::new(self.bind_scalar(e, scope, aggs)?))),
            ast::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.bind_scalar(expr, scope, aggs)?),
                negated: *negated,
            }),
            ast::Expr::InList {
                expr,
                list,
                negated,
            } => {
                // x IN (a, b) desugars to x = a OR x = b.
                let x = self.bind_scalar(expr, scope, aggs.as_deref_mut())?;
                let mut arms = Vec::with_capacity(list.len());
                for item in list {
                    let v = self.bind_scalar(item, scope, aggs.as_deref_mut())?;
                    arms.push(ScalarExpr::eq(x.clone(), v));
                }
                let test = ScalarExpr::Or(arms);
                Ok(if *negated {
                    ScalarExpr::Not(Box::new(test))
                } else {
                    test
                })
            }
            ast::Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let x = self.bind_scalar(expr, scope, aggs)?;
                let rel = self.bind_subquery(query, scope, 1)?;
                Ok(ScalarExpr::InSubquery {
                    expr: Box::new(x),
                    rel: Box::new(rel),
                    negated: *negated,
                })
            }
            ast::Expr::Exists { query, negated } => {
                let rel = self.bind_subquery(query, scope, 0)?;
                Ok(ScalarExpr::Exists {
                    rel: Box::new(rel),
                    negated: *negated,
                })
            }
            ast::Expr::Subquery(query) => {
                let rel = self.bind_subquery(query, scope, 1)?;
                Ok(ScalarExpr::Subquery(Box::new(rel)))
            }
            ast::Expr::Quantified {
                op,
                quant,
                expr,
                query,
            } => {
                let x = self.bind_scalar(expr, scope, aggs)?;
                let rel = self.bind_subquery(query, scope, 1)?;
                let cmp = match bin_op(*op) {
                    BoundOp::Cmp(c) => c,
                    BoundOp::Arith(_) => {
                        return Err(Error::Bind("quantifier needs a comparison".into()))
                    }
                };
                Ok(ScalarExpr::QuantifiedCmp {
                    op: cmp,
                    quant: match quant {
                        ast::Quantifier::Any => Quant::Any,
                        ast::Quantifier::All => Quant::All,
                    },
                    expr: Box::new(x),
                    rel: Box::new(rel),
                })
            }
            ast::Expr::Case {
                operand,
                whens,
                else_,
            } => {
                let operand = operand
                    .as_ref()
                    .map(|o| self.bind_scalar(o, scope, aggs.as_deref_mut()))
                    .transpose()?
                    .map(Box::new);
                let mut bound_whens = Vec::with_capacity(whens.len());
                for (w, t) in whens {
                    let bw = self.bind_scalar(w, scope, aggs.as_deref_mut())?;
                    let bt = self.bind_scalar(t, scope, aggs.as_deref_mut())?;
                    bound_whens.push((bw, bt));
                }
                let else_ = else_
                    .as_ref()
                    .map(|e| self.bind_scalar(e, scope, aggs))
                    .transpose()?
                    .map(Box::new);
                Ok(ScalarExpr::Case {
                    operand,
                    whens: bound_whens,
                    else_,
                })
            }
            ast::Expr::FuncCall {
                name,
                args,
                distinct,
                star,
            } => {
                let func = match name.as_str() {
                    "count" if *star => AggFunc::CountStar,
                    "count" => AggFunc::Count,
                    "sum" => AggFunc::Sum,
                    "min" => AggFunc::Min,
                    "max" => AggFunc::Max,
                    "avg" => AggFunc::Avg,
                    other => return Err(Error::Bind(format!("unknown function {other}"))),
                };
                let collector = aggs.ok_or_else(|| {
                    Error::Bind(format!("aggregate {name} not allowed in this context"))
                })?;
                let arg = if *star {
                    None
                } else {
                    if args.len() != 1 {
                        return Err(Error::Bind(format!("{name} takes exactly one argument")));
                    }
                    // Nested aggregates are invalid.
                    Some(self.bind_scalar(&args[0], scope, None)?)
                };
                let arg_ty = arg.as_ref().map_or(DataType::Int, |a| self.infer_type(a).0);
                let ty = func.output_type(Some(arg_ty));
                let nullable = func.output_nullable();
                let out = self.fresh_col(format!("{name}_{}", self.gen.peek()), ty, nullable);
                let id = collector.register(func, arg, *distinct, out);
                Ok(ScalarExpr::Column(id))
            }
        }
    }

    fn bind_subquery(
        &mut self,
        query: &ast::Query,
        scope: &Scope,
        expect_cols: usize,
    ) -> Result<RelExpr> {
        if !query.order_by.is_empty() {
            return Err(Error::Bind(
                "ORDER BY in a subquery is not supported".into(),
            ));
        }
        let bound = self.bind_set_expr(&query.body, scope)?;
        if expect_cols > 0 && bound.cols.len() != expect_cols {
            return Err(Error::Bind(format!(
                "subquery must return {expect_cols} column(s), got {}",
                bound.cols.len()
            )));
        }
        Ok(bound.rel)
    }

    fn bind_order_by(
        &mut self,
        order_by: &[(ast::Expr, bool)],
        bound: &Bound,
    ) -> Result<Vec<(ColId, bool)>> {
        let mut out = Vec::with_capacity(order_by.len());
        for (item, desc) in order_by {
            let id = match item {
                ast::Expr::Literal(ast::Literal::Int(pos)) => {
                    let idx = *pos as usize;
                    if idx == 0 || idx > bound.cols.len() {
                        return Err(Error::Bind(format!("ORDER BY position {pos} out of range")));
                    }
                    bound.cols[idx - 1].id
                }
                ast::Expr::Ident(parts) if parts.len() == 1 => bound
                    .cols
                    .iter()
                    .find(|c| c.name == parts[0])
                    .map(|c| c.id)
                    .ok_or_else(|| Error::UnknownColumn(parts[0].clone()))?,
                other => {
                    return Err(Error::Bind(format!(
                        "ORDER BY supports output columns or positions, got {other:?}"
                    )))
                }
            };
            out.push((id, *desc));
        }
        Ok(out)
    }

    /// Lightweight type inference over bound expressions using the
    /// binder's column registry.
    fn infer_type(&self, expr: &ScalarExpr) -> (DataType, bool) {
        match expr {
            ScalarExpr::Column(c) => self
                .col_meta
                .get(c)
                .map_or((DataType::Int, true), |m| (m.ty, m.nullable)),
            ScalarExpr::Literal(v) => (v.data_type().unwrap_or(DataType::Int), v.is_null()),
            ScalarExpr::Cmp { left, right, .. } => {
                let n = self.infer_type(left).1 || self.infer_type(right).1;
                (DataType::Bool, n)
            }
            ScalarExpr::Arith { op, left, right } => {
                let (lt, ln) = self.infer_type(left);
                let (rt, rn) = self.infer_type(right);
                let ty =
                    if matches!(op, ArithOp::Div) || lt == DataType::Float || rt == DataType::Float
                    {
                        DataType::Float
                    } else {
                        lt
                    };
                (ty, ln || rn)
            }
            ScalarExpr::Neg(e) => self.infer_type(e),
            ScalarExpr::And(ps) | ScalarExpr::Or(ps) => {
                (DataType::Bool, ps.iter().any(|p| self.infer_type(p).1))
            }
            ScalarExpr::Not(e) => (DataType::Bool, self.infer_type(e).1),
            ScalarExpr::IsNull { .. } => (DataType::Bool, false),
            ScalarExpr::Case { whens, else_, .. } => {
                let (ty, mut nullable) = whens
                    .first()
                    .map_or((DataType::Int, true), |(_, t)| self.infer_type(t));
                for (_, t) in whens.iter().skip(1) {
                    nullable |= self.infer_type(t).1;
                }
                nullable |= else_.as_ref().is_none_or(|e| self.infer_type(e).1);
                (ty, nullable)
            }
            ScalarExpr::Subquery(rel) => rel
                .output_cols()
                .first()
                .map_or((DataType::Int, true), |c| (c.ty, true)),
            ScalarExpr::Exists { .. }
            | ScalarExpr::InSubquery { .. }
            | ScalarExpr::QuantifiedCmp { .. } => (DataType::Bool, true),
        }
    }
}

fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Date(d) => Some(*d as f64),
        _ => None,
    }
}

enum BoundOp {
    Cmp(CmpOp),
    Arith(ArithOp),
}

fn bin_op(op: ast::BinOp) -> BoundOp {
    match op {
        ast::BinOp::Eq => BoundOp::Cmp(CmpOp::Eq),
        ast::BinOp::Ne => BoundOp::Cmp(CmpOp::Ne),
        ast::BinOp::Lt => BoundOp::Cmp(CmpOp::Lt),
        ast::BinOp::Le => BoundOp::Cmp(CmpOp::Le),
        ast::BinOp::Gt => BoundOp::Cmp(CmpOp::Gt),
        ast::BinOp::Ge => BoundOp::Cmp(CmpOp::Ge),
        ast::BinOp::Add => BoundOp::Arith(ArithOp::Add),
        ast::BinOp::Sub => BoundOp::Arith(ArithOp::Sub),
        ast::BinOp::Mul => BoundOp::Arith(ArithOp::Mul),
        ast::BinOp::Div => BoundOp::Arith(ArithOp::Div),
    }
}

/// Column references of an expression *excluding* those inside relational
/// subqueries — used for GROUP BY validation, where a correlated
/// subquery's internal references don't count.
trait TopLevelCols {
    fn top_level_cols(&self) -> Vec<ColId>;
}

impl TopLevelCols for ScalarExpr {
    fn top_level_cols(&self) -> Vec<ColId> {
        let mut out = Vec::new();
        fn go(e: &ScalarExpr, out: &mut Vec<ColId>) {
            match e {
                ScalarExpr::Column(c) => out.push(*c),
                ScalarExpr::Literal(_) => {}
                ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                    go(left, out);
                    go(right, out);
                }
                ScalarExpr::Neg(x) | ScalarExpr::Not(x) => go(x, out),
                ScalarExpr::And(ps) | ScalarExpr::Or(ps) => {
                    for p in ps {
                        go(p, out);
                    }
                }
                ScalarExpr::IsNull { expr, .. } => go(expr, out),
                ScalarExpr::Case {
                    operand,
                    whens,
                    else_,
                } => {
                    if let Some(o) = operand {
                        go(o, out);
                    }
                    for (w, t) in whens {
                        go(w, out);
                        go(t, out);
                    }
                    if let Some(x) = else_ {
                        go(x, out);
                    }
                }
                // Subquery bodies excluded; their left-hand operands count.
                ScalarExpr::Subquery(_) | ScalarExpr::Exists { .. } => {}
                ScalarExpr::InSubquery { expr, .. } | ScalarExpr::QuantifiedCmp { expr, .. } => {
                    go(expr, out);
                }
            }
        }
        go(self, &mut out);
        out
    }
}
