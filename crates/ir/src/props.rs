//! Derived logical properties.
//!
//! Every transformation in the paper is guarded by properties of the
//! expressions involved:
//!
//! * **Keys** ([`keys`]) — identities (7)–(9) require a key on the outer
//!   relation; GroupBy pull-up (§3.1) requires a key on the joined
//!   relation; semijoin-to-join needs a key to de-duplicate.
//! * **Cardinality bounds** ([`at_most_one_row`]) — `Max1Row` elimination
//!   (§2.4: "the compiler can detect this from information about keys").
//! * **Null rejection** ([`rejects_null_on`]) — outerjoin simplification
//!   (\[7\] framework), extended through GroupBy by the paper.
//! * **Column environment** ([`ColumnEnv`]) — type/nullability of every
//!   column produced in a tree, for constructing well-typed rewrites.

use std::collections::{BTreeSet, HashMap};

use orthopt_common::{ColId, DataType, Value};

use crate::agg::AggFunc;
use crate::relop::{ApplyKind, GroupKind, JoinKind, RelExpr};
use crate::scalar::{CmpOp, ScalarExpr};

/// Maps every column id produced in a tree to its metadata.
#[derive(Debug, Clone, Default)]
pub struct ColumnEnv {
    map: HashMap<ColId, (String, DataType, bool)>,
}

impl ColumnEnv {
    /// Collects metadata for every column produced anywhere in `rel`
    /// (including inside scalar subqueries and both Apply sides).
    pub fn build(rel: &RelExpr) -> Self {
        let mut env = ColumnEnv::default();
        rel.walk(&mut |r| {
            // `output_cols` of each producing node covers everything
            // because ids are globally unique.
            for c in r.output_cols() {
                env.map.entry(c.id).or_insert((c.name, c.ty, c.nullable));
            }
        });
        env
    }

    /// Column name, if known.
    pub fn name(&self, id: ColId) -> Option<&str> {
        self.map.get(&id).map(|(n, _, _)| n.as_str())
    }

    /// Column type, if known.
    pub fn ty(&self, id: ColId) -> Option<DataType> {
        self.map.get(&id).map(|&(_, t, _)| t)
    }

    /// Column nullability, if known (defaults to nullable when unknown).
    pub fn nullable(&self, id: ColId) -> bool {
        self.map.get(&id).is_none_or(|&(_, _, n)| n)
    }

    /// Infers the type and nullability of a scalar expression.
    pub fn type_of(&self, expr: &ScalarExpr) -> (DataType, bool) {
        match expr {
            ScalarExpr::Column(c) => (self.ty(*c).unwrap_or(DataType::Int), self.nullable(*c)),
            ScalarExpr::Literal(v) => (v.data_type().unwrap_or(DataType::Int), v.is_null()),
            ScalarExpr::Cmp { left, right, .. } => {
                let (_, ln) = self.type_of(left);
                let (_, rn) = self.type_of(right);
                (DataType::Bool, ln || rn)
            }
            ScalarExpr::Arith { op, left, right } => {
                let (lt, ln) = self.type_of(left);
                let (rt, rn) = self.type_of(right);
                let div = matches!(op, crate::scalar::ArithOp::Div);
                let ty = if div || lt == DataType::Float || rt == DataType::Float {
                    DataType::Float
                } else {
                    lt
                };
                (ty, ln || rn)
            }
            ScalarExpr::Neg(e) => self.type_of(e),
            ScalarExpr::And(ps) | ScalarExpr::Or(ps) => {
                let n = ps.iter().any(|p| self.type_of(p).1);
                (DataType::Bool, n)
            }
            ScalarExpr::Not(e) => (DataType::Bool, self.type_of(e).1),
            ScalarExpr::IsNull { .. } => (DataType::Bool, false),
            ScalarExpr::Case { whens, else_, .. } => {
                let (ty, mut nullable) = whens
                    .first()
                    .map_or((DataType::Int, true), |(_, t)| self.type_of(t));
                nullable |= else_.as_ref().is_none_or(|e| self.type_of(e).1);
                for (_, t) in whens.iter().skip(1) {
                    nullable |= self.type_of(t).1;
                }
                (ty, nullable)
            }
            ScalarExpr::Subquery(rel) => rel
                .output_cols()
                .first()
                .map_or((DataType::Int, true), |c| (c.ty, true)),
            ScalarExpr::Exists { .. }
            | ScalarExpr::InSubquery { .. }
            | ScalarExpr::QuantifiedCmp { .. } => (DataType::Bool, true),
        }
    }
}

/// Candidate keys of the operator's output: each returned set of columns
/// is unique across output rows. The empty set means "at most one row".
pub fn keys(rel: &RelExpr) -> Vec<BTreeSet<ColId>> {
    let out_ids: BTreeSet<ColId> = rel.output_col_ids().into_iter().collect();
    let restrict = |ks: Vec<BTreeSet<ColId>>| -> Vec<BTreeSet<ColId>> {
        ks.into_iter()
            .filter(|k| k.iter().all(|c| out_ids.contains(c)))
            .collect()
    };
    match rel {
        RelExpr::Get(g) => g.keys.iter().map(|k| k.iter().copied().collect()).collect(),
        RelExpr::ConstRel { rows, .. } => {
            if rows.len() <= 1 {
                vec![BTreeSet::new()]
            } else {
                vec![]
            }
        }
        RelExpr::Select { input, .. } => keys(input),
        RelExpr::Map { input, .. } => keys(input),
        RelExpr::Project { input, .. } => restrict(keys(input)),
        RelExpr::Join {
            kind, left, right, ..
        } => match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => keys(left),
            JoinKind::Inner | JoinKind::LeftOuter => compose_keys(keys(left), keys(right)),
        },
        RelExpr::Apply { kind, left, right } => match kind {
            ApplyKind::Semi | ApplyKind::Anti => keys(left),
            ApplyKind::Cross | ApplyKind::LeftOuter => compose_keys(keys(left), keys(right)),
        },
        RelExpr::SegmentApply {
            input: _,
            segment_cols,
            inner,
        } => {
            // segment columns + a key of the inner expression identify a row.
            let seg: BTreeSet<ColId> = segment_cols.iter().copied().collect();
            restrict(
                keys(inner)
                    .into_iter()
                    .map(|mut k| {
                        k.extend(seg.iter().copied());
                        k
                    })
                    .collect(),
            )
        }
        RelExpr::SegmentRef { .. } => vec![],
        RelExpr::GroupBy {
            kind, group_cols, ..
        } => match kind {
            GroupKind::Scalar => vec![BTreeSet::new()],
            GroupKind::Vector | GroupKind::Local => {
                vec![group_cols.iter().copied().collect()]
            }
        },
        RelExpr::UnionAll { .. } => vec![],
        RelExpr::Except { left, .. } => keys(left),
        RelExpr::Max1Row { .. } => vec![BTreeSet::new()],
        RelExpr::Enumerate { input, col } => {
            let mut ks = keys(input);
            ks.push([col.id].into_iter().collect());
            ks
        }
    }
}

fn compose_keys(left: Vec<BTreeSet<ColId>>, right: Vec<BTreeSet<ColId>>) -> Vec<BTreeSet<ColId>> {
    let mut out = Vec::new();
    for l in &left {
        for r in &right {
            let mut k = l.clone();
            k.extend(r.iter().copied());
            out.push(k);
        }
    }
    out
}

/// True when some derivable key of `rel` is contained in `cols`.
pub fn has_key_within(rel: &RelExpr, cols: &BTreeSet<ColId>) -> bool {
    keys(rel).iter().any(|k| k.is_subset(cols))
}

/// True when the expression provably produces at most one row —
/// the condition under which `Max1Row` is a no-op (§2.4).
pub fn at_most_one_row(rel: &RelExpr) -> bool {
    match rel {
        RelExpr::GroupBy { kind, .. } => matches!(kind, GroupKind::Scalar),
        RelExpr::Max1Row { .. } => true,
        RelExpr::ConstRel { rows, .. } => rows.len() <= 1,
        RelExpr::Select { input, predicate } => {
            if at_most_one_row(input) {
                return true;
            }
            // A full key pinned by equality to values constant within one
            // invocation (literals or outer parameters) ⇒ at most one row.
            let produced = input.produced_cols();
            let mut pinned: BTreeSet<ColId> = BTreeSet::new();
            for c in predicate.conjuncts() {
                if let ScalarExpr::Cmp {
                    op: CmpOp::Eq,
                    left,
                    right,
                } = &c
                {
                    for (a, b) in [(left, right), (right, left)] {
                        if let ScalarExpr::Column(id) = a.as_ref() {
                            if produced.contains(id) && is_invocation_constant(b, &produced) {
                                pinned.insert(*id);
                            }
                        }
                    }
                }
            }
            keys(input).iter().any(|k| k.is_subset(&pinned))
        }
        RelExpr::Map { input, .. }
        | RelExpr::Project { input, .. }
        | RelExpr::Enumerate { input, .. } => at_most_one_row(input),
        RelExpr::Join {
            kind, left, right, ..
        } => match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => at_most_one_row(left),
            JoinKind::Inner | JoinKind::LeftOuter => {
                at_most_one_row(left) && at_most_one_row(right)
            }
        },
        RelExpr::Apply { kind, left, right } => match kind {
            ApplyKind::Semi | ApplyKind::Anti => at_most_one_row(left),
            ApplyKind::Cross | ApplyKind::LeftOuter => {
                at_most_one_row(left) && at_most_one_row(right)
            }
        },
        _ => false,
    }
}

/// Expression constant within one invocation: built from literals and
/// outer parameters only (no columns produced by `produced`).
fn is_invocation_constant(e: &ScalarExpr, produced: &BTreeSet<ColId>) -> bool {
    !e.has_subquery() && e.cols().iter().all(|c| !produced.contains(c))
}

/// Abstract three-valued + unknown domain for null-rejection analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Abs {
    True,
    False,
    Null,
    Any,
}

/// True when the predicate cannot evaluate to TRUE if all columns in
/// `cols` are NULL — i.e. the predicate *rejects NULLs* on `cols`.
///
/// This drives outerjoin simplification: a null-rejecting predicate
/// above `LOJ` turns it into a plain join (\[7\]; §1.2 of the paper).
pub fn rejects_null_on(pred: &ScalarExpr, cols: &BTreeSet<ColId>) -> bool {
    !matches!(abs_eval(pred, cols), Abs::True | Abs::Any)
}

fn abs_eval(e: &ScalarExpr, null_cols: &BTreeSet<ColId>) -> Abs {
    match e {
        ScalarExpr::Column(c) => {
            if null_cols.contains(c) {
                Abs::Null
            } else {
                Abs::Any
            }
        }
        ScalarExpr::Literal(Value::Null) => Abs::Null,
        ScalarExpr::Literal(Value::Bool(true)) => Abs::True,
        ScalarExpr::Literal(Value::Bool(false)) => Abs::False,
        ScalarExpr::Literal(_) => Abs::Any,
        ScalarExpr::Cmp { left, right, .. } => {
            // NULL operand ⇒ unknown result.
            match (abs_eval(left, null_cols), abs_eval(right, null_cols)) {
                (Abs::Null, _) | (_, Abs::Null) => Abs::Null,
                _ => Abs::Any,
            }
        }
        ScalarExpr::Arith { left, right, .. } => {
            match (abs_eval(left, null_cols), abs_eval(right, null_cols)) {
                (Abs::Null, _) | (_, Abs::Null) => Abs::Null,
                _ => Abs::Any,
            }
        }
        ScalarExpr::Neg(x) => abs_eval(x, null_cols),
        ScalarExpr::And(parts) => {
            // The conjunction can be TRUE only if every conjunct can be;
            // one FALSE forces FALSE, and one NULL conjunct caps the
            // result at "never TRUE" (TRUE AND NULL = NULL), which is all
            // the rejection query needs.
            let mut saw_null = false;
            let mut saw_any = false;
            for p in parts {
                match abs_eval(p, null_cols) {
                    Abs::False => return Abs::False,
                    Abs::Null => saw_null = true,
                    Abs::Any => saw_any = true,
                    Abs::True => {}
                }
            }
            if saw_null {
                Abs::Null
            } else if saw_any {
                Abs::Any
            } else {
                Abs::True
            }
        }
        ScalarExpr::Or(parts) => {
            let mut saw_any = false;
            for p in parts {
                match abs_eval(p, null_cols) {
                    Abs::True | Abs::Any => saw_any = true,
                    Abs::Null | Abs::False => {}
                }
            }
            if saw_any {
                Abs::Any
            } else {
                Abs::Null
            }
        }
        ScalarExpr::Not(x) => match abs_eval(x, null_cols) {
            Abs::Null => Abs::Null,
            Abs::True => Abs::False,
            Abs::False => Abs::True,
            Abs::Any => Abs::Any,
        },
        // IS NULL can *accept* NULLs: a NULL-tested column yields TRUE.
        ScalarExpr::IsNull { expr, negated } => match abs_eval(expr, null_cols) {
            Abs::Null => {
                if *negated {
                    Abs::False
                } else {
                    Abs::True
                }
            }
            _ => Abs::Any,
        },
        ScalarExpr::Case {
            operand,
            whens,
            else_,
        } => {
            let else_abs = || else_.as_ref().map_or(Abs::Null, |e| abs_eval(e, null_cols));
            if let Some(op) = operand {
                // Simple CASE: a NULL comparand makes every WHEN unknown,
                // so the ELSE branch is taken.
                return if abs_eval(op, null_cols) == Abs::Null {
                    else_abs()
                } else {
                    Abs::Any
                };
            }
            // Searched CASE: a WHEN that is FALSE-or-NULL never fires; a
            // TRUE one always does; ANY may. Combine the reachable
            // branch results.
            let mut possible: Vec<Abs> = Vec::new();
            let mut fell_through = true;
            for (w, t) in whens {
                match abs_eval(w, null_cols) {
                    Abs::False | Abs::Null => {}
                    Abs::True => {
                        possible.push(abs_eval(t, null_cols));
                        fell_through = false;
                        break;
                    }
                    Abs::Any => possible.push(abs_eval(t, null_cols)),
                }
            }
            if fell_through {
                possible.push(else_abs());
            }
            let first = possible[0];
            if possible.iter().all(|&a| a == first) {
                first
            } else {
                Abs::Any
            }
        }
        ScalarExpr::Subquery(_)
        | ScalarExpr::Exists { .. }
        | ScalarExpr::InSubquery { .. }
        | ScalarExpr::QuantifiedCmp { .. } => Abs::Any,
    }
}

/// True when the expression is guaranteed to evaluate to NULL whenever
/// all columns in `cols` are NULL (strictness). Used when pulling `Map`
/// above an outer-join-Apply and when checking aggregate arguments for
/// identity (9): on a NULL-padded row a strict expression produces the
/// same NULL the outerjoin would have padded.
pub fn always_null_when(expr: &ScalarExpr, cols: &BTreeSet<ColId>) -> bool {
    abs_eval(expr, cols) == Abs::Null
}

/// Null-rejection *through GroupBy* — the paper's extension to the \[7\]
/// framework: a predicate above a GroupBy that rejects NULL on an
/// aggregate output column also rejects the all-NULL groups an outerjoin
/// below would produce, provided the aggregate maps all-NULL input to
/// NULL (`agg({NULL}) = NULL`).
///
/// Given the predicate and the GroupBy's aggregate definitions, returns
/// the set of *aggregate input* columns on which NULL is rejected.
pub fn rejects_null_through_groupby(
    pred: &ScalarExpr,
    aggs: &[crate::agg::AggDef],
) -> BTreeSet<ColId> {
    let mut rejected = BTreeSet::new();
    for agg in aggs {
        // COUNT maps all-NULL groups to 0, not NULL — no derivation.
        if !agg.func.output_nullable() || agg.func == AggFunc::CountStar {
            continue;
        }
        let out: BTreeSet<ColId> = [agg.out.id].into_iter().collect();
        if rejects_null_on(pred, &out) {
            if let Some(arg) = &agg.arg {
                rejected.extend(arg.cols());
            }
        }
    }
    rejected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::t;

    #[test]
    fn select_preserves_keys() {
        let rel = t::get_ab();
        let key_cols: BTreeSet<ColId> = [t::COL_A].into_iter().collect();
        let filtered = RelExpr::Select {
            input: Box::new(rel),
            predicate: ScalarExpr::true_(),
        };
        assert!(has_key_within(&filtered, &key_cols));
    }

    #[test]
    fn groupby_output_key_is_group_cols() {
        let gb = t::groupby_sum_b_by_a(t::get_ab());
        let ks = keys(&gb);
        assert!(ks
            .iter()
            .any(|k| k == &[t::COL_A].into_iter().collect::<BTreeSet<_>>()));
    }

    #[test]
    fn scalar_groupby_is_at_most_one_row() {
        let gb = t::scalar_sum_b(t::get_ab());
        assert!(at_most_one_row(&gb));
        assert!(keys(&gb).iter().any(std::collections::BTreeSet::is_empty));
    }

    #[test]
    fn select_on_key_equals_constant_is_at_most_one_row() {
        let sel = RelExpr::Select {
            input: Box::new(t::get_ab()),
            predicate: ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::lit(5i64)),
        };
        assert!(at_most_one_row(&sel));
    }

    #[test]
    fn select_on_key_equals_outer_param_is_at_most_one_row() {
        // c99 is not produced inside — it is an outer parameter.
        let sel = RelExpr::Select {
            input: Box::new(t::get_ab()),
            predicate: ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(ColId(99))),
        };
        assert!(at_most_one_row(&sel));
    }

    #[test]
    fn select_on_non_key_is_not_bounded() {
        let sel = RelExpr::Select {
            input: Box::new(t::get_ab()),
            predicate: ScalarExpr::eq(ScalarExpr::col(t::COL_B), ScalarExpr::lit(5i64)),
        };
        assert!(!at_most_one_row(&sel));
    }

    #[test]
    fn comparison_rejects_null() {
        let p = ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::lit(1_000_000i64),
            ScalarExpr::col(ColId(9)),
        );
        let cols = [ColId(9)].into_iter().collect();
        assert!(rejects_null_on(&p, &cols));
    }

    #[test]
    fn is_null_accepts_null() {
        let p = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::col(ColId(9))),
            negated: false,
        };
        let cols = [ColId(9)].into_iter().collect();
        assert!(!rejects_null_on(&p, &cols));
    }

    #[test]
    fn or_with_unrelated_branch_does_not_reject() {
        let p = ScalarExpr::Or(vec![
            ScalarExpr::eq(ScalarExpr::col(ColId(9)), ScalarExpr::lit(1i64)),
            ScalarExpr::eq(ScalarExpr::col(ColId(10)), ScalarExpr::lit(2i64)),
        ]);
        let cols = [ColId(9)].into_iter().collect();
        assert!(!rejects_null_on(&p, &cols));
    }

    #[test]
    fn and_rejects_if_any_conjunct_rejects() {
        let p = ScalarExpr::and([
            ScalarExpr::eq(ScalarExpr::col(ColId(10)), ScalarExpr::lit(2i64)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(9)), ScalarExpr::lit(0i64)),
        ]);
        let cols = [ColId(9)].into_iter().collect();
        assert!(rejects_null_on(&p, &cols));
    }

    #[test]
    fn groupby_null_rejection_derivation() {
        // HAVING 1000000 < sum(b): rejects NULL on sum output ⇒ derives
        // rejection on b (the aggregate's input).
        let gb = t::groupby_sum_b_by_a(t::get_ab());
        let (aggs, sum_out) = match &gb {
            RelExpr::GroupBy { aggs, .. } => (aggs.clone(), aggs[0].out.id),
            _ => unreachable!(),
        };
        let pred = ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::lit(1_000_000i64),
            ScalarExpr::col(sum_out),
        );
        let rejected = rejects_null_through_groupby(&pred, &aggs);
        assert!(rejected.contains(&t::COL_B));
    }

    #[test]
    fn count_star_blocks_groupby_derivation() {
        let gb = t::groupby_countstar_by_a(t::get_ab());
        let (aggs, out) = match &gb {
            RelExpr::GroupBy { aggs, .. } => (aggs.clone(), aggs[0].out.id),
            _ => unreachable!(),
        };
        let pred = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(out), ScalarExpr::lit(0i64));
        assert!(rejects_null_through_groupby(&pred, &aggs).is_empty());
    }

    #[test]
    fn column_env_types() {
        let rel = t::get_ab();
        let env = ColumnEnv::build(&rel);
        assert_eq!(env.ty(t::COL_A), Some(DataType::Int));
        assert!(!env.nullable(t::COL_A));
        let (ty, nullable) = env.type_of(&ScalarExpr::Arith {
            op: crate::scalar::ArithOp::Div,
            left: Box::new(ScalarExpr::col(t::COL_A)),
            right: Box::new(ScalarExpr::lit(2i64)),
        });
        assert_eq!(ty, DataType::Float);
        assert!(!nullable);
    }

    #[test]
    fn join_keys_compose() {
        let j = RelExpr::Join {
            kind: JoinKind::Inner,
            left: Box::new(t::get_ab()),
            right: Box::new(t::get_cd()),
            predicate: ScalarExpr::true_(),
        };
        let want: BTreeSet<ColId> = [t::COL_A, t::COL_C].into_iter().collect();
        assert!(keys(&j).contains(&want));
    }

    #[test]
    fn enumerate_adds_key() {
        let col = crate::relop::ColumnMeta::new(ColId(50), "rn", DataType::Int, false);
        let e = RelExpr::Enumerate {
            input: Box::new(t::get_nokey()),
            col,
        };
        let want: BTreeSet<ColId> = [ColId(50)].into_iter().collect();
        assert!(keys(&e).contains(&want));
    }
}

#[cfg(test)]
mod case_abs_tests {
    use super::*;
    use orthopt_common::Value;

    fn cols9() -> BTreeSet<ColId> {
        [ColId(9)].into_iter().collect()
    }

    #[test]
    fn avg_expansion_case_is_strict() {
        // CASE WHEN c10 = 0 THEN NULL ELSE c9 / c10 END with c9, c10 NULL
        // is NULL: the guard never fires (unknown), the ELSE divides NULLs.
        let case = ScalarExpr::Case {
            operand: None,
            whens: vec![(
                ScalarExpr::eq(ScalarExpr::col(ColId(10)), ScalarExpr::lit(0i64)),
                ScalarExpr::Literal(Value::Null),
            )],
            else_: Some(Box::new(ScalarExpr::Arith {
                op: crate::scalar::ArithOp::Div,
                left: Box::new(ScalarExpr::col(ColId(9))),
                right: Box::new(ScalarExpr::col(ColId(10))),
            })),
        };
        let cols: BTreeSet<ColId> = [ColId(9), ColId(10)].into_iter().collect();
        assert!(always_null_when(&case, &cols));
    }

    #[test]
    fn case_with_non_null_branch_is_not_strict() {
        // CASE WHEN c8 > 0 THEN 1 ELSE c9 END can be 1 even when c9 NULL.
        let case = ScalarExpr::Case {
            operand: None,
            whens: vec![(
                ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(8)), ScalarExpr::lit(0i64)),
                ScalarExpr::lit(1i64),
            )],
            else_: Some(Box::new(ScalarExpr::col(ColId(9)))),
        };
        assert!(!always_null_when(&case, &cols9()));
    }

    #[test]
    fn case_true_guard_short_circuits() {
        // CASE WHEN TRUE THEN c9 ELSE 1 END is strict in c9.
        let case = ScalarExpr::Case {
            operand: None,
            whens: vec![(ScalarExpr::true_(), ScalarExpr::col(ColId(9)))],
            else_: Some(Box::new(ScalarExpr::lit(1i64))),
        };
        assert!(always_null_when(&case, &cols9()));
    }

    #[test]
    fn simple_case_with_null_operand_takes_else() {
        // CASE c9 WHEN 1 THEN 5 END: NULL comparand skips all whens and
        // the implicit ELSE is NULL.
        let case = ScalarExpr::Case {
            operand: Some(Box::new(ScalarExpr::col(ColId(9)))),
            whens: vec![(ScalarExpr::lit(1i64), ScalarExpr::lit(5i64))],
            else_: None,
        };
        assert!(always_null_when(&case, &cols9()));
    }

    #[test]
    fn missing_else_defaults_to_null() {
        // CASE WHEN c8 = 1 THEN c9 END: both reachable outcomes (THEN
        // with NULL c9, implicit ELSE NULL) are NULL.
        let case = ScalarExpr::Case {
            operand: None,
            whens: vec![(
                ScalarExpr::eq(ScalarExpr::col(ColId(8)), ScalarExpr::lit(1i64)),
                ScalarExpr::col(ColId(9)),
            )],
            else_: None,
        };
        assert!(always_null_when(&case, &cols9()));
    }
}
