//! Tree rewriting utilities: column remapping and fresh-id cloning.
//!
//! Identity (7) and the Class-2 unnesting transforms duplicate the outer
//! relation; the duplicate must expose *fresh* column ids or the two
//! copies would collide when joined. `RelExpr::clone_with_fresh_cols` performs a
//! deep copy remapping every produced column to a fresh id (and all
//! internal references along with it).

use std::collections::HashMap;

use orthopt_common::{ColId, ColIdGen};

use crate::relop::RelExpr;
use crate::scalar::ScalarExpr;

impl RelExpr {
    /// In-place remap of column ids throughout the tree: every reference
    /// *and* every production whose id appears in `map` is rewritten.
    pub fn remap_columns(&mut self, map: &HashMap<ColId, ColId>) {
        let remap = |id: &mut ColId| {
            if let Some(n) = map.get(id) {
                *id = *n;
            }
        };
        // Productions and operator-owned column lists.
        self.walk_mut(&mut |r| match r {
            RelExpr::Get(g) => {
                for c in &mut g.cols {
                    remap(&mut c.id);
                }
                for k in &mut g.keys {
                    for c in k {
                        remap(c);
                    }
                }
            }
            RelExpr::ConstRel { cols, .. } => {
                for c in cols {
                    remap(&mut c.id);
                }
            }
            RelExpr::Map { defs, .. } => {
                for d in defs {
                    remap(&mut d.col.id);
                }
            }
            RelExpr::Project { cols, .. } => {
                for c in cols {
                    remap(c);
                }
            }
            RelExpr::GroupBy {
                group_cols, aggs, ..
            } => {
                for c in group_cols {
                    remap(c);
                }
                for a in aggs {
                    remap(&mut a.out.id);
                }
            }
            RelExpr::UnionAll {
                cols,
                left_map,
                right_map,
                ..
            } => {
                for c in cols {
                    remap(&mut c.id);
                }
                for c in left_map.iter_mut().chain(right_map.iter_mut()) {
                    remap(c);
                }
            }
            RelExpr::Except { right_map, .. } => {
                for c in right_map {
                    remap(c);
                }
            }
            RelExpr::Enumerate { col, .. } => remap(&mut col.id),
            RelExpr::SegmentApply { segment_cols, .. } => {
                for c in segment_cols {
                    remap(c);
                }
            }
            RelExpr::SegmentRef { cols } => {
                for (m, src) in cols {
                    remap(&mut m.id);
                    remap(src);
                }
            }
            _ => {}
        });
        // Scalar references (including inside subqueries).
        self.transform_scalars(&mut |e| {
            if let ScalarExpr::Column(c) = e {
                remap(c);
            }
        });
    }

    /// Mutable pre-order traversal over relational operators, descending
    /// into scalar subqueries' relational bodies.
    pub fn walk_mut(&mut self, f: &mut dyn FnMut(&mut RelExpr)) {
        f(self);
        for s in self.own_scalars_mut() {
            s.transform(&mut |e| {
                let rel = match e {
                    ScalarExpr::Subquery(rel) => Some(rel),
                    ScalarExpr::Exists { rel, .. } => Some(rel),
                    ScalarExpr::InSubquery { rel, .. } => Some(rel),
                    ScalarExpr::QuantifiedCmp { rel, .. } => Some(rel),
                    _ => None,
                };
                if let Some(rel) = rel {
                    // `transform` already recurses into the subquery's
                    // scalar expressions; here we only need the
                    // relational recursion.
                    rel.walk_mut_norec(f);
                }
            });
        }
        for c in self.children_mut() {
            c.walk_mut(f);
        }
    }

    fn walk_mut_norec(&mut self, f: &mut dyn FnMut(&mut RelExpr)) {
        f(self);
        for c in self.children_mut() {
            c.walk_mut_norec(f);
        }
    }

    /// Deep copy where every column *produced* inside the tree gets a
    /// fresh id; returns the copy and the old→new mapping. References to
    /// outer parameters (free columns) are left untouched.
    pub fn clone_with_fresh_cols(&self, gen: &mut ColIdGen) -> (RelExpr, HashMap<ColId, ColId>) {
        let produced = self.produced_cols();
        let map: HashMap<ColId, ColId> =
            produced.into_iter().map(|old| (old, gen.fresh())).collect();
        let mut copy = self.clone();
        copy.remap_columns(&map);
        (copy, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{self, t};
    use crate::relop::JoinKind;

    #[test]
    fn fresh_clone_remaps_productions_and_references() {
        let rel = builder::select(
            t::get_ab(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(t::COL_B)),
        );
        let mut gen = ColIdGen::starting_at(100);
        let (copy, map) = rel.clone_with_fresh_cols(&mut gen);
        assert_eq!(map.len(), 2);
        let new_a = map[&t::COL_A];
        assert!(copy.output_col_ids().contains(&new_a));
        assert!(!copy.output_col_ids().contains(&t::COL_A));
        // The predicate references moved along.
        assert!(copy.referenced_cols().contains(&new_a));
    }

    #[test]
    fn fresh_clone_keeps_outer_params() {
        // Predicate references c77 which is NOT produced inside.
        let rel = builder::select(
            t::get_ab(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(ColId(77))),
        );
        let mut gen = ColIdGen::starting_at(100);
        let (copy, _) = rel.clone_with_fresh_cols(&mut gen);
        assert!(copy.free_cols().contains(&ColId(77)));
    }

    #[test]
    fn remap_rewrites_join_predicates() {
        let mut j = builder::join(
            JoinKind::Inner,
            t::get_ab(),
            t::get_cd(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(t::COL_C)),
        );
        let map = [(t::COL_A, ColId(40))].into_iter().collect();
        j.remap_columns(&map);
        assert!(j.referenced_cols().contains(&ColId(40)));
        assert!(!j.referenced_cols().contains(&t::COL_A));
    }

    #[test]
    fn keys_follow_remap() {
        let mut g = t::get_ab();
        let map = [(t::COL_A, ColId(41))].into_iter().collect();
        g.remap_columns(&map);
        match &g {
            RelExpr::Get(m) => assert_eq!(m.keys, vec![vec![ColId(41)]]),
            _ => unreachable!(),
        }
    }
}
