//! Witnesses for outerjoin simplification.
//!
//! Each `LOJ → Join` conversion performed by
//! `orthopt-rewrite::outerjoin` records a [`NullRejectWitness`]: the
//! predicate it relied on, the columns of the NULL-padded side, and —
//! for the paper's derivation *through GroupBy* — the aggregates and
//! grouping evidence. The witness is self-contained: `plancheck`
//! re-verifies the null-rejection claim from the witness alone, without
//! re-running the rewrite, so a broken simplification rule cannot smuggle
//! an unsound conversion past the audit.

use std::collections::BTreeSet;

use orthopt_common::ColId;

use crate::agg::AggDef;
use crate::scalar::ScalarExpr;

/// Evidence for one `LOJ → Join` conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct NullRejectWitness {
    /// The predicate claimed to reject NULLs from the padded side.
    pub predicate: ScalarExpr,
    /// Output columns of the NULL-padded (non-preserved) input.
    pub padded_cols: BTreeSet<ColId>,
    /// Present when rejection was derived through a GroupBy below the
    /// predicate rather than directly on the join's own columns.
    pub via_groupby: Option<GroupByDerivation>,
}

/// The GroupBy-mediated derivation (§ outerjoin simplification): the
/// predicate rejects NULL on an aggregate *output*, the aggregate maps
/// all-NULL groups to NULL, and the grouping columns contain a key of
/// the preserved side so each padded row forms its own group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByDerivation {
    /// Aggregates of the GroupBy the derivation went through.
    pub aggs: Vec<AggDef>,
    /// The GroupBy's grouping columns.
    pub group_cols: BTreeSet<ColId>,
    /// A key of the preserved side contained in `group_cols`,
    /// guaranteeing padded rows are isolated in singleton groups.
    pub preserved_key: BTreeSet<ColId>,
}

impl NullRejectWitness {
    /// Re-verifies the null-rejection claim from the recorded evidence.
    /// Returns `Err` with a human-readable reason when the witness does
    /// not actually justify an `LOJ → Join` conversion.
    pub fn verify(&self) -> Result<(), String> {
        match &self.via_groupby {
            None => {
                if crate::props::rejects_null_on(&self.predicate, &self.padded_cols) {
                    Ok(())
                } else {
                    Err(format!(
                        "predicate {:?} does not reject NULL on padded columns {:?}",
                        self.predicate, self.padded_cols
                    ))
                }
            }
            Some(d) => {
                let rejected = crate::props::rejects_null_through_groupby(&self.predicate, &d.aggs);
                if !rejected.iter().any(|c| self.padded_cols.contains(c)) {
                    return Err(format!(
                        "no aggregate input from the padded side {:?} has NULL rejected \
                         through the GroupBy (rejected inputs: {:?})",
                        self.padded_cols, rejected
                    ));
                }
                if d.preserved_key.is_empty() || !d.preserved_key.is_subset(&d.group_cols) {
                    return Err(format!(
                        "preserved-side key {:?} is not contained in grouping columns {:?}; \
                         padded rows are not isolated in singleton groups",
                        d.preserved_key, d.group_cols
                    ));
                }
                Ok(())
            }
        }
    }
}
