//! Structural isomorphism of operator trees modulo column ids.
//!
//! Two bound trees coming from the same SQL text (e.g. the two instances
//! of `lineitem` in TPC-H Q17 after decorrelation) have identical shape
//! but disjoint column ids. SegmentApply introduction (§3.4.1) needs to
//! detect exactly this: "two instances of an expression connected by a
//! join". The syntax-independence tests (§1.2) use it too — plans from
//! different SQL formulations must be isomorphic.

use std::collections::HashMap;

use orthopt_common::ColId;

use crate::agg::AggDef;
use crate::relop::RelExpr;
use crate::scalar::ScalarExpr;

/// Bijective column-id mapping built during comparison.
#[derive(Default, Debug)]
pub struct ColBijection {
    forward: HashMap<ColId, ColId>,
    backward: HashMap<ColId, ColId>,
}

impl ColBijection {
    fn unify(&mut self, a: ColId, b: ColId) -> bool {
        match (self.forward.get(&a), self.backward.get(&b)) {
            (Some(&fb), Some(&ba)) => fb == b && ba == a,
            (None, None) => {
                self.forward.insert(a, b);
                self.backward.insert(b, a);
                true
            }
            _ => false,
        }
    }

    /// The forward (left→right) mapping.
    pub fn into_forward(self) -> HashMap<ColId, ColId> {
        self.forward
    }

    /// Looks up the image of a left-side column.
    pub fn map(&self, a: ColId) -> Option<ColId> {
        self.forward.get(&a).copied()
    }
}

/// Compares two trees for structural equality modulo a bijective column
/// renaming; on success returns the left→right mapping.
pub fn rel_isomorphic(a: &RelExpr, b: &RelExpr) -> Option<HashMap<ColId, ColId>> {
    let mut bij = ColBijection::default();
    if rel_iso(a, b, &mut bij) {
        Some(bij.into_forward())
    } else {
        None
    }
}

/// Like [`rel_isomorphic`] but extends a caller-provided bijection (used
/// when some correspondences are already pinned, e.g. shared outer
/// parameters must map to themselves).
pub fn rel_isomorphic_with(a: &RelExpr, b: &RelExpr, bij: &mut ColBijection) -> bool {
    rel_iso(a, b, bij)
}

/// Instance matching for SegmentApply detection (§3.4.1): like
/// isomorphism, except `b` may scan a *subset* of `a`'s base-table
/// columns at each `Get` leaf (the two instances of an expression are
/// usually pruned to different column sets). The mapping still goes
/// `a → b`; `a`-columns without a counterpart in `b` stay unmapped.
pub fn rel_instance_with(a: &RelExpr, b: &RelExpr, bij: &mut ColBijection) -> bool {
    if let (RelExpr::Get(ga), RelExpr::Get(gb)) = (a, b) {
        if ga.table != gb.table {
            return false;
        }
        // Every b column must exist in a at the same base position.
        for (bc, bpos) in gb.cols.iter().zip(&gb.positions) {
            let Some(ai) = ga.positions.iter().position(|p| p == bpos) else {
                return false;
            };
            if ga.cols[ai].ty != bc.ty || !bij.unify(ga.cols[ai].id, bc.id) {
                return false;
            }
        }
        return true;
    }
    // Same operator kind with matching scalar content, children compared
    // recursively in instance mode.
    match (a, b) {
        (
            RelExpr::Select {
                input: ia,
                predicate: pa,
            },
            RelExpr::Select {
                input: ib,
                predicate: pb,
            },
        ) => rel_instance_with(ia, ib, bij) && scalar_iso(pa, pb, bij),
        (
            RelExpr::Project {
                input: ia,
                cols: ca,
            },
            RelExpr::Project {
                input: ib,
                cols: cb,
            },
        ) => {
            rel_instance_with(ia, ib, bij)
                && ca.len() == cb.len()
                && ca.iter().zip(cb).all(|(&x, &y)| bij.unify(x, y))
        }
        (
            RelExpr::Join {
                kind: ka,
                left: la,
                right: ra,
                predicate: pa,
            },
            RelExpr::Join {
                kind: kb,
                left: lb,
                right: rb,
                predicate: pb,
            },
        ) => {
            ka == kb
                && rel_instance_with(la, lb, bij)
                && rel_instance_with(ra, rb, bij)
                && scalar_iso(pa, pb, bij)
        }
        // For every other operator fall back to exact isomorphism.
        _ => rel_iso(a, b, bij),
    }
}

/// Pins identity mappings for columns that both sides reference freely
/// (outer parameters must not be renamed).
pub fn pin_identity(bij: &mut ColBijection, cols: impl IntoIterator<Item = ColId>) -> bool {
    cols.into_iter().all(|c| bij.unify(c, c))
}

fn rel_iso(a: &RelExpr, b: &RelExpr, bij: &mut ColBijection) -> bool {
    use RelExpr::*;
    match (a, b) {
        (Get(ga), Get(gb)) => {
            ga.table == gb.table
                && ga.positions == gb.positions
                && ga.cols.len() == gb.cols.len()
                && ga
                    .cols
                    .iter()
                    .zip(&gb.cols)
                    .all(|(x, y)| x.ty == y.ty && bij.unify(x.id, y.id))
        }
        (ConstRel { cols: ca, rows: ra }, ConstRel { cols: cb, rows: rb }) => {
            ra == rb
                && ca.len() == cb.len()
                && ca
                    .iter()
                    .zip(cb)
                    .all(|(x, y)| x.ty == y.ty && bij.unify(x.id, y.id))
        }
        (
            Select {
                input: ia,
                predicate: pa,
            },
            Select {
                input: ib,
                predicate: pb,
            },
        ) => rel_iso(ia, ib, bij) && scalar_iso(pa, pb, bij),
        (
            Map {
                input: ia,
                defs: da,
            },
            Map {
                input: ib,
                defs: db,
            },
        ) => {
            rel_iso(ia, ib, bij)
                && da.len() == db.len()
                && da.iter().zip(db).all(|(x, y)| {
                    x.col.ty == y.col.ty
                        && scalar_iso(&x.expr, &y.expr, bij)
                        && bij.unify(x.col.id, y.col.id)
                })
        }
        (
            Project {
                input: ia,
                cols: ca,
            },
            Project {
                input: ib,
                cols: cb,
            },
        ) => {
            rel_iso(ia, ib, bij)
                && ca.len() == cb.len()
                && ca.iter().zip(cb).all(|(&x, &y)| bij.unify(x, y))
        }
        (
            Join {
                kind: ka,
                left: la,
                right: ra,
                predicate: pa,
            },
            Join {
                kind: kb,
                left: lb,
                right: rb,
                predicate: pb,
            },
        ) => ka == kb && rel_iso(la, lb, bij) && rel_iso(ra, rb, bij) && scalar_iso(pa, pb, bij),
        (
            Apply {
                kind: ka,
                left: la,
                right: ra,
            },
            Apply {
                kind: kb,
                left: lb,
                right: rb,
            },
        ) => ka == kb && rel_iso(la, lb, bij) && rel_iso(ra, rb, bij),
        (
            SegmentApply {
                input: ia,
                segment_cols: sa,
                inner: na,
            },
            SegmentApply {
                input: ib,
                segment_cols: sb,
                inner: nb,
            },
        ) => {
            rel_iso(ia, ib, bij)
                && sa.len() == sb.len()
                && sa.iter().zip(sb).all(|(&x, &y)| bij.unify(x, y))
                && rel_iso(na, nb, bij)
        }
        (SegmentRef { cols: ca }, SegmentRef { cols: cb }) => {
            ca.len() == cb.len()
                && ca.iter().zip(cb).all(|((ma, srca), (mb, srcb))| {
                    ma.ty == mb.ty && bij.unify(ma.id, mb.id) && bij.unify(*srca, *srcb)
                })
        }
        (
            GroupBy {
                kind: ka,
                input: ia,
                group_cols: ga,
                aggs: aa,
            },
            GroupBy {
                kind: kb,
                input: ib,
                group_cols: gb,
                aggs: ab,
            },
        ) => {
            ka == kb
                && rel_iso(ia, ib, bij)
                && ga.len() == gb.len()
                && ga.iter().zip(gb).all(|(&x, &y)| bij.unify(x, y))
                && aggs_iso(aa, ab, bij)
        }
        (
            UnionAll {
                left: la,
                right: ra,
                cols: ca,
                left_map: lma,
                right_map: rma,
            },
            UnionAll {
                left: lb,
                right: rb,
                cols: cb,
                left_map: lmb,
                right_map: rmb,
            },
        ) => {
            rel_iso(la, lb, bij)
                && rel_iso(ra, rb, bij)
                && ca.len() == cb.len()
                && ca.iter().zip(cb).all(|(x, y)| bij.unify(x.id, y.id))
                && lma.iter().zip(lmb).all(|(&x, &y)| bij.unify(x, y))
                && rma.iter().zip(rmb).all(|(&x, &y)| bij.unify(x, y))
        }
        (
            Except {
                left: la,
                right: ra,
                right_map: rma,
            },
            Except {
                left: lb,
                right: rb,
                right_map: rmb,
            },
        ) => {
            rel_iso(la, lb, bij)
                && rel_iso(ra, rb, bij)
                && rma.len() == rmb.len()
                && rma.iter().zip(rmb).all(|(&x, &y)| bij.unify(x, y))
        }
        (Max1Row { input: ia }, Max1Row { input: ib }) => rel_iso(ia, ib, bij),
        (Enumerate { input: ia, col: ca }, Enumerate { input: ib, col: cb }) => {
            rel_iso(ia, ib, bij) && bij.unify(ca.id, cb.id)
        }
        _ => false,
    }
}

fn aggs_iso(a: &[AggDef], b: &[AggDef], bij: &mut ColBijection) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.func == y.func
                && x.distinct == y.distinct
                && match (&x.arg, &y.arg) {
                    (None, None) => true,
                    (Some(p), Some(q)) => scalar_iso(p, q, bij),
                    _ => false,
                }
                && bij.unify(x.out.id, y.out.id)
        })
}

fn scalar_iso(a: &ScalarExpr, b: &ScalarExpr, bij: &mut ColBijection) -> bool {
    use ScalarExpr::*;
    match (a, b) {
        (Column(x), Column(y)) => bij.unify(*x, *y),
        (Literal(x), Literal(y)) => x == y,
        (
            Cmp {
                op: oa,
                left: la,
                right: ra,
            },
            Cmp {
                op: ob,
                left: lb,
                right: rb,
            },
        ) => oa == ob && scalar_iso(la, lb, bij) && scalar_iso(ra, rb, bij),
        (
            Arith {
                op: oa,
                left: la,
                right: ra,
            },
            Arith {
                op: ob,
                left: lb,
                right: rb,
            },
        ) => oa == ob && scalar_iso(la, lb, bij) && scalar_iso(ra, rb, bij),
        (Neg(x), Neg(y)) | (Not(x), Not(y)) => scalar_iso(x, y, bij),
        (And(xs), And(ys)) | (Or(xs), Or(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| scalar_iso(x, y, bij))
        }
        (
            IsNull {
                expr: xa,
                negated: na,
            },
            IsNull {
                expr: xb,
                negated: nb,
            },
        ) => na == nb && scalar_iso(xa, xb, bij),
        (
            Case {
                operand: oa,
                whens: wa,
                else_: ea,
            },
            Case {
                operand: ob,
                whens: wb,
                else_: eb,
            },
        ) => {
            let opnd = match (oa, ob) {
                (None, None) => true,
                (Some(x), Some(y)) => scalar_iso(x, y, bij),
                _ => false,
            };
            let els = match (ea, eb) {
                (None, None) => true,
                (Some(x), Some(y)) => scalar_iso(x, y, bij),
                _ => false,
            };
            opnd && els
                && wa.len() == wb.len()
                && wa
                    .iter()
                    .zip(wb)
                    .all(|((w1, t1), (w2, t2))| scalar_iso(w1, w2, bij) && scalar_iso(t1, t2, bij))
        }
        (Subquery(x), Subquery(y)) => rel_iso(x, y, bij),
        (
            Exists {
                rel: xa,
                negated: na,
            },
            Exists {
                rel: xb,
                negated: nb,
            },
        ) => na == nb && rel_iso(xa, xb, bij),
        (
            InSubquery {
                expr: ea,
                rel: xa,
                negated: na,
            },
            InSubquery {
                expr: eb,
                rel: xb,
                negated: nb,
            },
        ) => na == nb && scalar_iso(ea, eb, bij) && rel_iso(xa, xb, bij),
        (
            QuantifiedCmp {
                op: oa,
                quant: qa,
                expr: ea,
                rel: xa,
            },
            QuantifiedCmp {
                op: ob,
                quant: qb,
                expr: eb,
                rel: xb,
            },
        ) => oa == ob && qa == qb && scalar_iso(ea, eb, bij) && rel_iso(xa, xb, bij),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{self, t};
    use crate::relop::JoinKind;
    use orthopt_common::ColIdGen;

    #[test]
    fn tree_is_isomorphic_to_its_fresh_clone() {
        let rel = builder::select(
            builder::join(
                JoinKind::Inner,
                t::get_ab(),
                t::get_cd(),
                ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(t::COL_C)),
            ),
            ScalarExpr::cmp(
                crate::scalar::CmpOp::Gt,
                ScalarExpr::col(t::COL_B),
                ScalarExpr::lit(0i64),
            ),
        );
        let mut gen = ColIdGen::starting_at(100);
        let (copy, map) = rel.clone_with_fresh_cols(&mut gen);
        let iso = rel_isomorphic(&rel, &copy).expect("isomorphic");
        assert_eq!(iso[&t::COL_A], map[&t::COL_A]);
    }

    #[test]
    fn different_tables_are_not_isomorphic() {
        assert!(rel_isomorphic(&t::get_ab(), &t::get_cd()).is_none());
    }

    #[test]
    fn different_literals_break_isomorphism() {
        let a = builder::select(
            t::get_ab(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::lit(1i64)),
        );
        let b = builder::select(
            t::get_ab(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::lit(2i64)),
        );
        assert!(rel_isomorphic(&a, &b).is_none());
    }

    #[test]
    fn bijection_rejects_many_to_one() {
        // a(x) compared with itself twice is fine; but mapping two
        // different left cols onto the same right col must fail.
        let left = builder::select(
            t::get_ab(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(t::COL_B)),
        );
        // Right references COL_A twice where left used A and B.
        let right = builder::select(
            t::get_ab(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(t::COL_A)),
        );
        assert!(rel_isomorphic(&left, &right).is_none());
    }

    #[test]
    fn pinned_params_must_map_to_themselves() {
        // Inner expressions referencing an outer parameter c77: the
        // parameter must survive pinning.
        let a = builder::select(
            t::get_ab(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(ColId(77))),
        );
        let mut gen = ColIdGen::starting_at(200);
        let (b, _) = a.clone_with_fresh_cols(&mut gen);
        let mut bij = ColBijection::default();
        assert!(pin_identity(&mut bij, [ColId(77)]));
        assert!(rel_isomorphic_with(&a, &b, &mut bij));
    }
}
