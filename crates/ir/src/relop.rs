//! Relational operators.
//!
//! All operators are bag-oriented (§1.3: "we deal with SQL, all operators
//! used in this paper are bag-oriented"); `UNION` here is `UNION ALL`,
//! and duplicate removal is an explicit GroupBy.

use std::collections::BTreeSet;
use std::fmt;

use orthopt_common::{ColId, DataType, Row, TableId};

use crate::agg::AggDef;
use crate::scalar::ScalarExpr;

/// Metadata of one output column of an operator.
#[derive(Clone, PartialEq, Debug)]
pub struct ColumnMeta {
    /// Globally unique id.
    pub id: ColId,
    /// Human-readable name (for explain output and result headers).
    pub name: String,
    /// Type.
    pub ty: DataType,
    /// Whether NULL can appear.
    pub nullable: bool,
}

impl ColumnMeta {
    /// Builds column metadata.
    pub fn new(id: ColId, name: impl Into<String>, ty: DataType, nullable: bool) -> Self {
        ColumnMeta {
            id,
            name: name.into(),
            ty,
            nullable,
        }
    }
}

/// Statistics snapshot for one column of a base-table scan, captured at
/// bind time so the optimizer needs no catalog round-trips.
#[derive(Clone, PartialEq, Debug)]
pub struct ColStat {
    /// Distinct non-NULL values.
    pub ndv: f64,
    /// Fraction of NULLs.
    pub null_frac: f64,
    /// Numeric minimum (ints, floats and dates mapped to f64).
    pub min: Option<f64>,
    /// Numeric maximum.
    pub max: Option<f64>,
}

impl ColStat {
    /// Uninformed placeholder statistics.
    pub fn unknown() -> Self {
        ColStat {
            ndv: 100.0,
            null_frac: 0.0,
            min: None,
            max: None,
        }
    }
}

/// Everything a base-table scan needs: identity, bound columns, keys and
/// a statistics snapshot.
#[derive(Clone, PartialEq, Debug)]
pub struct GetMeta {
    /// Catalog id of the table.
    pub table: TableId,
    /// Table name, for explain output.
    pub table_name: String,
    /// Bound output columns (one per referenced base column).
    pub cols: Vec<ColumnMeta>,
    /// For each entry of `cols`, the column position in the base table.
    pub positions: Vec<usize>,
    /// Declared keys, expressed in output [`ColId`]s (only keys fully
    /// covered by the bound columns appear).
    pub keys: Vec<Vec<ColId>>,
    /// Table row count at bind time.
    pub row_count: f64,
    /// Per-bound-column statistics.
    pub col_stats: Vec<ColStat>,
    /// Base-column position sets that have a hash index.
    pub indexes: Vec<Vec<usize>>,
}

/// Join variants. Cross product is `Inner` with a TRUE predicate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join — preserves left rows, NULL-padding the right.
    LeftOuter,
    /// Left semijoin — left rows with at least one match.
    LeftSemi,
    /// Left antijoin — left rows with no match.
    LeftAnti,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "Join",
            JoinKind::LeftOuter => "LeftOuterJoin",
            JoinKind::LeftSemi => "SemiJoin",
            JoinKind::LeftAnti => "AntiJoin",
        };
        f.write_str(s)
    }
}

/// Apply variants (§1.3): `R A⊗ E` evaluates the parameterized
/// expression `E(r)` for every row `r ∈ R` and combines with `⊗`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ApplyKind {
    /// `⊗` = cross product (the most primitive form `A×`).
    Cross,
    /// `⊗` = left outerjoin: preserves `r` when `E(r)` is empty.
    LeftOuter,
    /// `⊗` = left semijoin: keeps `r` iff `E(r)` is non-empty.
    Semi,
    /// `⊗` = left antijoin: keeps `r` iff `E(r)` is empty.
    Anti,
}

impl ApplyKind {
    /// The plain-join analogue used by identities (1)/(2) once the inner
    /// expression no longer references the outer row.
    pub fn to_join_kind(self) -> JoinKind {
        match self {
            ApplyKind::Cross => JoinKind::Inner,
            ApplyKind::LeftOuter => JoinKind::LeftOuter,
            ApplyKind::Semi => JoinKind::LeftSemi,
            ApplyKind::Anti => JoinKind::LeftAnti,
        }
    }
}

/// Physical strategy hint for correlated (re-)introduction (§4): which
/// Apply implementation the planner may emit. `Auto` lets the cost
/// model race all constructible strategies; the forced variants pin one
/// for isolation testing (`ORTHOPT_APPLY_STRATEGY` / `SET
/// apply_strategy`), falling back to the row-at-a-time loop when the
/// forced strategy is not constructible for a given Apply.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ApplyStrategy {
    /// Cost-based three-way race (the default).
    #[default]
    Auto,
    /// Row-at-a-time `ApplyLoop`.
    Loop,
    /// `BatchedApply`: dedup outer bindings, run the inner once per
    /// distinct binding.
    Batched,
    /// `IndexLookupJoin`: probe a storage hash index per distinct
    /// binding (requires a seek-shaped inner over an indexed column).
    Index,
}

impl ApplyStrategy {
    /// Parses the knob's external spelling (env var / `SET` value).
    pub fn parse(s: &str) -> Option<ApplyStrategy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(ApplyStrategy::Auto),
            "loop" => Some(ApplyStrategy::Loop),
            "batched" => Some(ApplyStrategy::Batched),
            "index" => Some(ApplyStrategy::Index),
            _ => None,
        }
    }

    /// The knob's external spelling.
    pub fn name(self) -> &'static str {
        match self {
            ApplyStrategy::Auto => "auto",
            ApplyStrategy::Loop => "loop",
            ApplyStrategy::Batched => "batched",
            ApplyStrategy::Index => "index",
        }
    }
}

impl fmt::Display for ApplyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ApplyKind::Cross => "Apply",
            ApplyKind::LeftOuter => "ApplyLeftOuter",
            ApplyKind::Semi => "ApplySemi",
            ApplyKind::Anti => "ApplyAnti",
        };
        f.write_str(s)
    }
}

/// GroupBy flavours (§1.1, §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GroupKind {
    /// Vector aggregation `G_{A,F}`: one row per group; empty input ⇒
    /// empty output.
    Vector,
    /// Scalar aggregation `G¹_F`: no grouping columns, always exactly one
    /// output row (NULL/0 aggregates on empty input).
    Scalar,
    /// LocalGroupBy `LG_{A,F}` (§3.3): partial aggregation whose grouping
    /// columns may be freely extended; must be followed (somewhere above)
    /// by a global GroupBy combining the partial results.
    Local,
}

impl fmt::Display for GroupKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GroupKind::Vector => "GroupBy",
            GroupKind::Scalar => "ScalarGroupBy",
            GroupKind::Local => "LocalGroupBy",
        };
        f.write_str(s)
    }
}

/// One computed column of a `Map`: `col := expr`.
#[derive(Clone, PartialEq, Debug)]
pub struct MapDef {
    /// Output column metadata.
    pub col: ColumnMeta,
    /// Defining expression (over the input's columns, outer parameters,
    /// and — before normalization — subqueries).
    pub expr: ScalarExpr,
}

/// A relational operator tree.
#[derive(Clone, PartialEq, Debug)]
pub enum RelExpr {
    /// Base-table scan.
    Get(GetMeta),
    /// Inline constant relation (VALUES); also the empty relation.
    ConstRel {
        /// Output columns.
        cols: Vec<ColumnMeta>,
        /// Row data.
        rows: Vec<Row>,
    },
    /// Filter: keeps rows where the predicate evaluates to TRUE.
    Select {
        /// Input.
        input: Box<RelExpr>,
        /// Predicate (three-valued; NULL rejects).
        predicate: ScalarExpr,
    },
    /// Computes additional columns; passes input columns through.
    Map {
        /// Input.
        input: Box<RelExpr>,
        /// Computed columns.
        defs: Vec<MapDef>,
    },
    /// Pure column pruning/reordering.
    Project {
        /// Input.
        input: Box<RelExpr>,
        /// Retained columns, in output order.
        cols: Vec<ColId>,
    },
    /// Join of two independent inputs.
    Join {
        /// Variant.
        kind: JoinKind,
        /// Left input.
        left: Box<RelExpr>,
        /// Right input.
        right: Box<RelExpr>,
        /// Join predicate.
        predicate: ScalarExpr,
    },
    /// `R A⊗ E` — the right side may reference columns of the left
    /// (correlations / parameters).
    Apply {
        /// Combination variant `⊗`.
        kind: ApplyKind,
        /// Outer relation `R`.
        left: Box<RelExpr>,
        /// Parameterized expression `E(r)`.
        right: Box<RelExpr>,
    },
    /// `R SA_A E` (§3.4): segments the input by the segmenting columns
    /// and evaluates `inner` once per segment; `inner` reads the segment
    /// through [`RelExpr::SegmentRef`] leaves.
    SegmentApply {
        /// Input relation `R`.
        input: Box<RelExpr>,
        /// Segmenting columns `A` (⊆ columns of `R`).
        segment_cols: Vec<ColId>,
        /// Per-segment expression `E(S)`.
        inner: Box<RelExpr>,
    },
    /// Reference, inside a `SegmentApply`'s inner expression, to the
    /// current segment `S`. Each instance may re-expose the segment's
    /// columns under its own output ids (two instances of the segment in
    /// a self-join need distinct ids).
    SegmentRef {
        /// `(output column, source column of the SegmentApply input)`.
        cols: Vec<(ColumnMeta, ColId)>,
    },
    /// Grouping and aggregation.
    GroupBy {
        /// Vector / scalar / local.
        kind: GroupKind,
        /// Input.
        input: Box<RelExpr>,
        /// Grouping columns (empty for scalar).
        group_cols: Vec<ColId>,
        /// Aggregates to compute.
        aggs: Vec<AggDef>,
    },
    /// Bag union (`UNION ALL`). Output columns are fresh; each branch
    /// maps positionally onto them.
    UnionAll {
        /// Left branch.
        left: Box<RelExpr>,
        /// Right branch.
        right: Box<RelExpr>,
        /// Output columns.
        cols: Vec<ColumnMeta>,
        /// For each output column, the producing column in `left`.
        left_map: Vec<ColId>,
        /// For each output column, the producing column in `right`.
        right_map: Vec<ColId>,
    },
    /// Bag difference (`EXCEPT ALL`): each left row survives
    /// `max(0, count_left − count_right)` times. Output columns are the
    /// left branch's.
    Except {
        /// Left branch.
        left: Box<RelExpr>,
        /// Right branch.
        right: Box<RelExpr>,
        /// For each left output column, the corresponding right column.
        right_map: Vec<ColId>,
    },
    /// Passes rows through; raises a run-time error when the input has
    /// more than one row (§2.4, exception subqueries).
    Max1Row {
        /// Input.
        input: Box<RelExpr>,
    },
    /// Extends each row with a unique integer — manufactures a key
    /// (required by identities (7)–(9) when the outer relation has none).
    Enumerate {
        /// Input.
        input: Box<RelExpr>,
        /// The manufactured key column (type Int, non-nullable).
        col: ColumnMeta,
    },
}

impl RelExpr {
    /// Output columns, in order.
    pub fn output_cols(&self) -> Vec<ColumnMeta> {
        match self {
            RelExpr::Get(g) => g.cols.clone(),
            RelExpr::ConstRel { cols, .. } => cols.clone(),
            RelExpr::Select { input, .. } => input.output_cols(),
            RelExpr::Map { input, defs } => {
                let mut cols = input.output_cols();
                cols.extend(defs.iter().map(|d| d.col.clone()));
                cols
            }
            RelExpr::Project { input, cols } => {
                let inner = input.output_cols();
                cols.iter()
                    .filter_map(|c| inner.iter().find(|m| m.id == *c).cloned())
                    .collect()
            }
            RelExpr::Join {
                kind, left, right, ..
            } => match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => left.output_cols(),
                JoinKind::Inner => {
                    let mut cols = left.output_cols();
                    cols.extend(right.output_cols());
                    cols
                }
                JoinKind::LeftOuter => {
                    let mut cols = left.output_cols();
                    cols.extend(right.output_cols().into_iter().map(|mut c| {
                        c.nullable = true;
                        c
                    }));
                    cols
                }
            },
            RelExpr::Apply { kind, left, right } => match kind {
                ApplyKind::Semi | ApplyKind::Anti => left.output_cols(),
                ApplyKind::Cross => {
                    let mut cols = left.output_cols();
                    cols.extend(right.output_cols());
                    cols
                }
                ApplyKind::LeftOuter => {
                    let mut cols = left.output_cols();
                    cols.extend(right.output_cols().into_iter().map(|mut c| {
                        c.nullable = true;
                        c
                    }));
                    cols
                }
            },
            RelExpr::SegmentApply {
                input,
                segment_cols,
                inner,
            } => {
                let input_cols = input.output_cols();
                let inner_cols = inner.output_cols();
                let mut out: Vec<ColumnMeta> = segment_cols
                    .iter()
                    .filter_map(|c| input_cols.iter().find(|m| m.id == *c).cloned())
                    .collect();
                for c in inner_cols {
                    if !out.iter().any(|m| m.id == c.id) {
                        out.push(c);
                    }
                }
                out
            }
            RelExpr::SegmentRef { cols } => cols.iter().map(|(m, _)| m.clone()).collect(),
            RelExpr::GroupBy {
                input,
                group_cols,
                aggs,
                ..
            } => {
                let input_cols = input.output_cols();
                let mut out: Vec<ColumnMeta> = group_cols
                    .iter()
                    .filter_map(|c| input_cols.iter().find(|m| m.id == *c).cloned())
                    .collect();
                out.extend(aggs.iter().map(|a| a.out.clone()));
                out
            }
            RelExpr::UnionAll { cols, .. } => cols.clone(),
            RelExpr::Except { left, .. } => left.output_cols(),
            RelExpr::Max1Row { input } => input.output_cols(),
            RelExpr::Enumerate { input, col } => {
                let mut cols = input.output_cols();
                cols.push(col.clone());
                cols
            }
        }
    }

    /// Output column ids, in order.
    pub fn output_col_ids(&self) -> Vec<ColId> {
        self.output_cols().into_iter().map(|c| c.id).collect()
    }

    /// Immutable child operators (not descending into scalar subqueries).
    pub fn children(&self) -> Vec<&RelExpr> {
        match self {
            RelExpr::Get(_) | RelExpr::ConstRel { .. } | RelExpr::SegmentRef { .. } => vec![],
            RelExpr::Select { input, .. }
            | RelExpr::Map { input, .. }
            | RelExpr::Project { input, .. }
            | RelExpr::Max1Row { input }
            | RelExpr::Enumerate { input, .. } => vec![input],
            RelExpr::GroupBy { input, .. } => vec![input],
            RelExpr::Join { left, right, .. }
            | RelExpr::Apply { left, right, .. }
            | RelExpr::UnionAll { left, right, .. }
            | RelExpr::Except { left, right, .. } => vec![left, right],
            RelExpr::SegmentApply { input, inner, .. } => vec![input, inner],
        }
    }

    /// Mutable child operators.
    pub fn children_mut(&mut self) -> Vec<&mut RelExpr> {
        match self {
            RelExpr::Get(_) | RelExpr::ConstRel { .. } | RelExpr::SegmentRef { .. } => vec![],
            RelExpr::Select { input, .. }
            | RelExpr::Map { input, .. }
            | RelExpr::Project { input, .. }
            | RelExpr::Max1Row { input }
            | RelExpr::Enumerate { input, .. } => vec![input],
            RelExpr::GroupBy { input, .. } => vec![input],
            RelExpr::Join { left, right, .. }
            | RelExpr::Apply { left, right, .. }
            | RelExpr::UnionAll { left, right, .. }
            | RelExpr::Except { left, right, .. } => vec![left, right],
            RelExpr::SegmentApply { input, inner, .. } => vec![input, inner],
        }
    }

    /// Scalar expressions owned directly by this operator (not by
    /// descendants).
    pub fn own_scalars(&self) -> Vec<&ScalarExpr> {
        match self {
            RelExpr::Select { predicate, .. } | RelExpr::Join { predicate, .. } => {
                vec![predicate]
            }
            RelExpr::Map { defs, .. } => defs.iter().map(|d| &d.expr).collect(),
            RelExpr::GroupBy { aggs, .. } => aggs.iter().filter_map(|a| a.arg.as_ref()).collect(),
            _ => vec![],
        }
    }

    /// Mutable variant of [`RelExpr::own_scalars`].
    pub fn own_scalars_mut(&mut self) -> Vec<&mut ScalarExpr> {
        match self {
            RelExpr::Select { predicate, .. } | RelExpr::Join { predicate, .. } => {
                vec![predicate]
            }
            RelExpr::Map { defs, .. } => defs.iter_mut().map(|d| &mut d.expr).collect(),
            RelExpr::GroupBy { aggs, .. } => {
                aggs.iter_mut().filter_map(|a| a.arg.as_mut()).collect()
            }
            _ => vec![],
        }
    }

    /// Visits every scalar expression in the whole tree (pre-order over
    /// operators), descending into scalar subqueries.
    pub fn walk_scalars(&self, f: &mut dyn FnMut(&ScalarExpr)) {
        for s in self.own_scalars() {
            s.walk(f);
        }
        for c in self.children() {
            c.walk_scalars(f);
        }
    }

    /// Mutably visits every scalar expression in the whole tree.
    pub fn transform_scalars(&mut self, f: &mut dyn FnMut(&mut ScalarExpr)) {
        for s in self.own_scalars_mut() {
            s.transform(f);
        }
        for c in self.children_mut() {
            c.transform_scalars(f);
        }
    }

    /// Pre-order traversal over relational operators (including the
    /// relational bodies of scalar subqueries).
    pub fn walk(&self, f: &mut dyn FnMut(&RelExpr)) {
        f(self);
        for s in self.own_scalars() {
            s.walk(&mut |e| {
                let rel = match e {
                    ScalarExpr::Subquery(rel) => Some(rel),
                    ScalarExpr::Exists { rel, .. } => Some(rel),
                    ScalarExpr::InSubquery { rel, .. } => Some(rel),
                    ScalarExpr::QuantifiedCmp { rel, .. } => Some(rel),
                    _ => None,
                };
                if let Some(rel) = rel {
                    rel.walk(f);
                }
            });
        }
        for c in self.children() {
            c.walk(f);
        }
    }

    /// Column ids *produced* anywhere in this subtree (ids are globally
    /// unique, so this is a plain union over all producing operators).
    pub fn produced_cols(&self) -> BTreeSet<ColId> {
        let mut out = BTreeSet::new();
        self.walk(&mut |r| match r {
            RelExpr::Get(g) => out.extend(g.cols.iter().map(|c| c.id)),
            RelExpr::ConstRel { cols, .. } => out.extend(cols.iter().map(|c| c.id)),
            RelExpr::Map { defs, .. } => out.extend(defs.iter().map(|d| d.col.id)),
            RelExpr::GroupBy { aggs, .. } => out.extend(aggs.iter().map(|a| a.out.id)),
            RelExpr::UnionAll { cols, .. } => out.extend(cols.iter().map(|c| c.id)),
            RelExpr::Enumerate { col, .. } => {
                out.insert(col.id);
            }
            RelExpr::SegmentRef { cols } => out.extend(cols.iter().map(|(m, _)| m.id)),
            _ => {}
        });
        out
    }

    /// Column ids *referenced* anywhere in this subtree (by scalar
    /// expressions, grouping lists, projections, union maps, …).
    pub fn referenced_cols(&self) -> BTreeSet<ColId> {
        let mut out = BTreeSet::new();
        self.walk(&mut |r| {
            for s in r.own_scalars() {
                s.referenced_cols(&mut out);
            }
            match r {
                RelExpr::Project { cols, .. } => out.extend(cols.iter().copied()),
                RelExpr::GroupBy { group_cols, .. } => out.extend(group_cols.iter().copied()),
                RelExpr::SegmentApply { segment_cols, .. } => {
                    out.extend(segment_cols.iter().copied());
                }
                RelExpr::SegmentRef { cols } => out.extend(cols.iter().map(|(_, src)| *src)),
                RelExpr::UnionAll {
                    left_map,
                    right_map,
                    ..
                } => {
                    out.extend(left_map.iter().copied());
                    out.extend(right_map.iter().copied());
                }
                RelExpr::Except {
                    right_map, left, ..
                } => {
                    out.extend(right_map.iter().copied());
                    // Except compares full left rows against the right map.
                    out.extend(left.output_col_ids());
                }
                _ => {}
            }
        });
        out
    }

    /// *Free* columns: referenced but not produced in this subtree —
    /// i.e. parameters resolved from an enclosing expression. An
    /// expression with free columns is exactly a "correlated"
    /// (parameterized) expression in the paper's sense.
    pub fn free_cols(&self) -> BTreeSet<ColId> {
        let produced = self.produced_cols();
        self.referenced_cols()
            .into_iter()
            .filter(|c| !produced.contains(c))
            .collect()
    }

    /// True when the subtree references no outer columns.
    pub fn is_uncorrelated(&self) -> bool {
        self.free_cols().is_empty()
    }

    /// Number of operators in the tree (explain/statistics helper).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}
