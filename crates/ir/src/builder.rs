//! Convenience constructors for IR trees, used pervasively in tests and
//! by the rewrite/optimizer crates when synthesizing operators.

use orthopt_common::{ColId, DataType, TableId};

use crate::agg::{AggDef, AggFunc};
use crate::relop::{ColStat, ColumnMeta, GetMeta, GroupKind, JoinKind, MapDef, RelExpr};
use crate::scalar::ScalarExpr;

/// Builds a [`GetMeta`]-based scan from terse column descriptions.
///
/// `cols` entries are `(id, name, type, nullable)`; `keys` are given as
/// indexes into `cols`.
pub fn get(
    table: TableId,
    name: &str,
    cols: &[(ColId, &str, DataType, bool)],
    keys: &[&[usize]],
    row_count: f64,
) -> RelExpr {
    let metas: Vec<ColumnMeta> = cols
        .iter()
        .map(|(id, n, ty, nullable)| ColumnMeta::new(*id, *n, *ty, *nullable))
        .collect();
    let key_ids = keys
        .iter()
        .map(|k| k.iter().map(|&i| cols[i].0).collect())
        .collect();
    RelExpr::Get(GetMeta {
        table,
        table_name: name.to_string(),
        positions: (0..cols.len()).collect(),
        keys: key_ids,
        row_count,
        col_stats: vec![ColStat::unknown(); cols.len()],
        indexes: vec![],
        cols: metas,
    })
}

/// Builds a vector GroupBy.
pub fn groupby(input: RelExpr, group_cols: Vec<ColId>, aggs: Vec<AggDef>) -> RelExpr {
    RelExpr::GroupBy {
        kind: GroupKind::Vector,
        input: Box::new(input),
        group_cols,
        aggs,
    }
}

/// Builds a scalar GroupBy.
pub fn scalar_groupby(input: RelExpr, aggs: Vec<AggDef>) -> RelExpr {
    RelExpr::GroupBy {
        kind: GroupKind::Scalar,
        input: Box::new(input),
        group_cols: vec![],
        aggs,
    }
}

/// Builds an aggregate definition with an inferred-nullable output.
pub fn agg(out_id: ColId, name: &str, func: AggFunc, arg: Option<ScalarExpr>) -> AggDef {
    let ty = func.output_type(match &arg {
        Some(ScalarExpr::Column(_)) | Some(_) => Some(DataType::Int),
        None => None,
    });
    AggDef::new(
        ColumnMeta::new(out_id, name, ty, func.output_nullable()),
        func,
        arg,
    )
}

/// Builds a Select.
pub fn select(input: RelExpr, predicate: ScalarExpr) -> RelExpr {
    RelExpr::Select {
        input: Box::new(input),
        predicate,
    }
}

/// Builds a Join.
pub fn join(kind: JoinKind, left: RelExpr, right: RelExpr, predicate: ScalarExpr) -> RelExpr {
    RelExpr::Join {
        kind,
        left: Box::new(left),
        right: Box::new(right),
        predicate,
    }
}

/// Builds a Map with a single computed column.
pub fn map1(input: RelExpr, col: ColumnMeta, expr: ScalarExpr) -> RelExpr {
    RelExpr::Map {
        input: Box::new(input),
        defs: vec![MapDef { col, expr }],
    }
}

/// Fixed test fixtures shared by unit tests across the workspace.
pub mod t {
    use super::*;

    /// `ab.a` — integer key column of the two-column test table.
    pub const COL_A: ColId = ColId(0);
    /// `ab.b` — nullable integer payload column.
    pub const COL_B: ColId = ColId(1);
    /// `cd.c` — integer key column of the second test table.
    pub const COL_C: ColId = ColId(2);
    /// `cd.d` — nullable integer payload column.
    pub const COL_D: ColId = ColId(3);

    /// Scan of table `ab(a int key, b int null)`.
    pub fn get_ab() -> RelExpr {
        get(
            TableId(0),
            "ab",
            &[
                (COL_A, "a", DataType::Int, false),
                (COL_B, "b", DataType::Int, true),
            ],
            &[&[0]],
            1000.0,
        )
    }

    /// Scan of table `cd(c int key, d int null)`.
    pub fn get_cd() -> RelExpr {
        get(
            TableId(1),
            "cd",
            &[
                (COL_C, "c", DataType::Int, false),
                (COL_D, "d", DataType::Int, true),
            ],
            &[&[0]],
            1000.0,
        )
    }

    /// Scan of a keyless table `nk(x int, y int)`.
    pub fn get_nokey() -> RelExpr {
        get(
            TableId(2),
            "nk",
            &[
                (ColId(4), "x", DataType::Int, false),
                (ColId(5), "y", DataType::Int, true),
            ],
            &[],
            1000.0,
        )
    }

    /// `GroupBy a, sum(b) AS s(c20)` over the given input.
    pub fn groupby_sum_b_by_a(input: RelExpr) -> RelExpr {
        groupby(
            input,
            vec![COL_A],
            vec![agg(
                ColId(20),
                "s",
                AggFunc::Sum,
                Some(ScalarExpr::col(COL_B)),
            )],
        )
    }

    /// `GroupBy a, count(*) AS n(c21)` over the given input.
    pub fn groupby_countstar_by_a(input: RelExpr) -> RelExpr {
        groupby(
            input,
            vec![COL_A],
            vec![agg(ColId(21), "n", AggFunc::CountStar, None)],
        )
    }

    /// Scalar `sum(b) AS s(c22)` over the given input.
    pub fn scalar_sum_b(input: RelExpr) -> RelExpr {
        scalar_groupby(
            input,
            vec![agg(
                ColId(22),
                "s",
                AggFunc::Sum,
                Some(ScalarExpr::col(COL_B)),
            )],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_builder_wires_keys() {
        let g = t::get_ab();
        match &g {
            RelExpr::Get(m) => {
                assert_eq!(m.keys, vec![vec![t::COL_A]]);
                assert_eq!(m.cols.len(), 2);
            }
            _ => panic!("expected Get"),
        }
    }

    #[test]
    fn output_cols_of_groupby() {
        let gb = t::groupby_sum_b_by_a(t::get_ab());
        let out = gb.output_col_ids();
        assert_eq!(out, vec![t::COL_A, ColId(20)]);
    }

    #[test]
    fn scalar_groupby_outputs_only_aggs() {
        let gb = t::scalar_sum_b(t::get_ab());
        assert_eq!(gb.output_col_ids(), vec![ColId(22)]);
    }
}
