//! Plan pretty-printer.
//!
//! Renders an operator tree as an indented outline resembling the
//! figures of the paper (e.g. Figure 2's `APPLY(bind: C_CUSTKEY)` tree).
//! Used for `EXPLAIN`, golden tests and debugging.

use std::fmt::Write as _;

use crate::relop::{GroupKind, RelExpr};
use crate::scalar::ScalarExpr;

/// Renders the tree as an indented outline.
pub fn explain(rel: &RelExpr) -> String {
    let mut out = String::new();
    fmt_rel(rel, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn fmt_rel(rel: &RelExpr, depth: usize, out: &mut String) {
    indent(depth, out);
    match rel {
        RelExpr::Get(g) => {
            let cols: Vec<String> = g
                .cols
                .iter()
                .map(|c| format!("{}:{}", c.id, c.name))
                .collect();
            let _ = writeln!(out, "Get {} [{}]", g.table_name, cols.join(", "));
        }
        RelExpr::ConstRel { cols, rows } => {
            let ids: Vec<String> = cols.iter().map(|c| c.id.to_string()).collect();
            let _ = writeln!(out, "ConstRel [{}] ({} rows)", ids.join(", "), rows.len());
        }
        RelExpr::Select { input, predicate } => {
            let _ = writeln!(out, "Select {predicate}");
            fmt_subqueries(predicate, depth + 1, out);
            fmt_rel(input, depth + 1, out);
        }
        RelExpr::Map { input, defs } => {
            let ds: Vec<String> = defs
                .iter()
                .map(|d| format!("{}:={}", d.col.id, d.expr))
                .collect();
            let _ = writeln!(out, "Map [{}]", ds.join(", "));
            for d in defs {
                fmt_subqueries(&d.expr, depth + 1, out);
            }
            fmt_rel(input, depth + 1, out);
        }
        RelExpr::Project { input, cols } => {
            let ids: Vec<String> = cols.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "Project [{}]", ids.join(", "));
            fmt_rel(input, depth + 1, out);
        }
        RelExpr::Join {
            kind,
            left,
            right,
            predicate,
        } => {
            let _ = writeln!(out, "{kind} {predicate}");
            fmt_rel(left, depth + 1, out);
            fmt_rel(right, depth + 1, out);
        }
        RelExpr::Apply { kind, left, right } => {
            let params: Vec<String> = right.free_cols().iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "{kind} (bind: {})", params.join(", "));
            fmt_rel(left, depth + 1, out);
            fmt_rel(right, depth + 1, out);
        }
        RelExpr::SegmentApply {
            input,
            segment_cols,
            inner,
        } => {
            let segs: Vec<String> = segment_cols.iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "SegmentApply [{}]", segs.join(", "));
            fmt_rel(input, depth + 1, out);
            fmt_rel(inner, depth + 1, out);
        }
        RelExpr::SegmentRef { cols } => {
            let cs: Vec<String> = cols
                .iter()
                .map(|(m, src)| format!("{}←{}", m.id, src))
                .collect();
            let _ = writeln!(out, "SegmentRef [{}]", cs.join(", "));
        }
        RelExpr::GroupBy {
            kind,
            input,
            group_cols,
            aggs,
        } => {
            let gs: Vec<String> = group_cols.iter().map(ToString::to_string).collect();
            let as_: Vec<String> = aggs.iter().map(ToString::to_string).collect();
            match kind {
                GroupKind::Scalar => {
                    let _ = writeln!(out, "ScalarGroupBy [{}]", as_.join(", "));
                }
                _ => {
                    let _ = writeln!(out, "{kind} [{}] [{}]", gs.join(", "), as_.join(", "));
                }
            }
            fmt_rel(input, depth + 1, out);
        }
        RelExpr::UnionAll { left, right, .. } => {
            let _ = writeln!(out, "UnionAll");
            fmt_rel(left, depth + 1, out);
            fmt_rel(right, depth + 1, out);
        }
        RelExpr::Except { left, right, .. } => {
            let _ = writeln!(out, "Except");
            fmt_rel(left, depth + 1, out);
            fmt_rel(right, depth + 1, out);
        }
        RelExpr::Max1Row { input } => {
            let _ = writeln!(out, "Max1Row");
            fmt_rel(input, depth + 1, out);
        }
        RelExpr::Enumerate { input, col } => {
            let _ = writeln!(out, "Enumerate [{}]", col.id);
            fmt_rel(input, depth + 1, out);
        }
    }
}

/// Prints relational bodies of subqueries nested in a scalar expression,
/// one level deeper — makes the algebrizer's mutually recursive output
/// (§2.1, Figure 3) visible in explain form.
fn fmt_subqueries(expr: &ScalarExpr, depth: usize, out: &mut String) {
    expr.walk(&mut |e| {
        let rel = match e {
            ScalarExpr::Subquery(rel) => Some(("scalar subquery", rel)),
            ScalarExpr::Exists { rel, .. } => Some(("exists subquery", rel)),
            ScalarExpr::InSubquery { rel, .. } => Some(("in subquery", rel)),
            ScalarExpr::QuantifiedCmp { rel, .. } => Some(("quantified subquery", rel)),
            _ => None,
        };
        if let Some((label, rel)) = rel {
            indent(depth, out);
            let _ = writeln!(out, "[{label}]");
            fmt_rel(rel, depth + 1, out);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{self, t};
    use crate::relop::JoinKind;

    #[test]
    fn explain_renders_tree_shape() {
        let plan = builder::select(
            builder::join(
                JoinKind::LeftOuter,
                t::get_ab(),
                t::get_cd(),
                ScalarExpr::eq(ScalarExpr::col(t::COL_A), ScalarExpr::col(t::COL_C)),
            ),
            ScalarExpr::true_(),
        );
        let s = explain(&plan);
        assert!(s.contains("Select"));
        assert!(s.contains("LeftOuterJoin"));
        assert!(s.contains("Get ab"));
        assert!(s.contains("Get cd"));
        // Children indented deeper than parents.
        let join_line = s.lines().find(|l| l.contains("LeftOuterJoin")).unwrap();
        let get_line = s.lines().find(|l| l.contains("Get ab")).unwrap();
        assert!(
            get_line.len() - get_line.trim_start().len()
                > join_line.len() - join_line.trim_start().len()
        );
    }

    #[test]
    fn explain_shows_apply_bindings() {
        let inner = builder::select(
            t::get_cd(),
            ScalarExpr::eq(ScalarExpr::col(t::COL_C), ScalarExpr::col(t::COL_A)),
        );
        let apply = RelExpr::Apply {
            kind: crate::relop::ApplyKind::Cross,
            left: Box::new(t::get_ab()),
            right: Box::new(inner),
        };
        let s = explain(&apply);
        assert!(s.contains("Apply (bind: c0)"), "got: {s}");
    }

    #[test]
    fn explain_shows_nested_subquery_bodies() {
        let sub = ScalarExpr::Subquery(Box::new(t::get_cd()));
        let plan = builder::select(
            t::get_ab(),
            ScalarExpr::cmp(crate::scalar::CmpOp::Lt, ScalarExpr::lit(5i64), sub),
        );
        let s = explain(&plan);
        assert!(s.contains("[scalar subquery]"));
        assert!(s.contains("Get cd"));
    }
}
