#![warn(missing_docs)]
//! Logical algebra IR for `orthopt`.
//!
//! This crate defines the operator tree produced by the SQL binder and
//! manipulated by normalization (`orthopt-rewrite`) and cost-based
//! optimization (`orthopt-optimizer`):
//!
//! * **Relational operators** ([`RelExpr`]): standard bag-oriented
//!   relational algebra plus the paper's higher-order constructs —
//!   [`RelExpr::Apply`] (§1.3), [`RelExpr::SegmentApply`] (§3.4), the
//!   three GroupBy flavours (vector / scalar / local, §1.1 and §3.3),
//!   [`RelExpr::Max1Row`] for exception subqueries (§2.4), and
//!   [`RelExpr::Enumerate`] for manufacturing keys.
//! * **Scalar operators** ([`ScalarExpr`]): expressions with three-valued
//!   logic, including the *subquery markers* that make the algebrizer
//!   output mutually recursive (§2.1) — these are eliminated by
//!   normalization.
//! * **Derived properties** ([`props`]): output columns, free (outer)
//!   columns, candidate keys, cardinality bounds, null-rejection — the
//!   machinery every transformation in the paper is stated in terms of.

pub mod agg;
pub mod builder;
pub mod explain;
pub mod iso;
pub mod props;
pub mod relop;
pub mod scalar;
pub mod visit;
pub mod witness;

pub use agg::{AggDef, AggFunc};
pub use relop::{
    ApplyKind, ApplyStrategy, ColStat, ColumnMeta, GetMeta, GroupKind, JoinKind, MapDef, RelExpr,
};
pub use scalar::{ArithOp, CmpOp, Quant, ScalarExpr};
pub use witness::{GroupByDerivation, NullRejectWitness};
