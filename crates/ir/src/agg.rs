//! Aggregate functions and their *abstract properties*.
//!
//! Following §1.2 of the paper, reordering rules operate "based on
//! abstract properties of aggregate functions, rather than considering
//! the five standard SQL aggregates":
//!
//! * [`AggFunc::on_empty`] — the scalar-aggregation result on empty
//!   input (§1.1: NULL for SUM, 0 for COUNT);
//! * [`AggFunc::empty_equals_all_null`] — whether `agg(∅) = agg({NULL})`,
//!   the validity condition of identity (9);
//! * [`AggFunc::split`] — the local/global decomposition of §3.3
//!   (`f(∪ Sᵢ) = f_global(∪ f_local(Sᵢ))`);
//! * [`AggFunc::duplicate_insensitive`] — MIN/MAX ignore multiplicity.
//!
//! `AVG` is a *composite* aggregate (footnote 3): it has no local/global
//! split of its own and is expanded by normalization into SUM/COUNT plus
//! a computing project.

use std::fmt;

use orthopt_common::{DataType, Value};

use crate::relop::ColumnMeta;
use crate::scalar::ScalarExpr;

/// Aggregate function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)` — composite; expanded into SUM/COUNT by normalization.
    Avg,
}

impl AggFunc {
    /// Result of the aggregate over an empty input (scalar aggregation,
    /// §1.1): `SUM(∅) = NULL`, `COUNT(∅) = 0`.
    pub fn on_empty(self) -> Value {
        match self {
            AggFunc::CountStar | AggFunc::Count => Value::Int(0),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max | AggFunc::Avg => Value::Null,
        }
    }

    /// Whether `agg(∅) = agg({NULL, …, NULL})` — the validity condition
    /// of identity (9). True for every SQL aggregate *applied to a
    /// column*; false for `COUNT(*)`, which is why the identity rewrites
    /// `COUNT(*)` into `COUNT(c)` over a non-nullable column of the
    /// inner relation.
    pub fn empty_equals_all_null(self) -> bool {
        !matches!(self, AggFunc::CountStar)
    }

    /// Local/global decomposition of §3.3: returns `(local, global)` so
    /// that `f(∪Sᵢ) = global(∪ local(Sᵢ))`, or `None` for composite
    /// aggregates (AVG).
    pub fn split(self) -> Option<(AggFunc, AggFunc)> {
        match self {
            AggFunc::CountStar => Some((AggFunc::CountStar, AggFunc::Sum)),
            AggFunc::Count => Some((AggFunc::Count, AggFunc::Sum)),
            AggFunc::Sum => Some((AggFunc::Sum, AggFunc::Sum)),
            AggFunc::Min => Some((AggFunc::Min, AggFunc::Min)),
            AggFunc::Max => Some((AggFunc::Max, AggFunc::Max)),
            AggFunc::Avg => None,
        }
    }

    /// MIN/MAX do not care about duplicate rows.
    pub fn duplicate_insensitive(self) -> bool {
        matches!(self, AggFunc::Min | AggFunc::Max)
    }

    /// Output type given the argument type (`None` for `COUNT(*)`).
    pub fn output_type(self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Int),
        }
    }

    /// Whether the output can be NULL: COUNT never is; the others are
    /// NULL on empty groups (scalar aggregation) or all-NULL inputs.
    pub fn output_nullable(self) -> bool {
        !matches!(self, AggFunc::CountStar | AggFunc::Count)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::CountStar => "count(*)",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// One aggregate computation inside a GroupBy: `out := func(arg)`.
#[derive(Clone, PartialEq, Debug)]
pub struct AggDef {
    /// Output column (id, name, type, nullability).
    pub out: ColumnMeta,
    /// Function.
    pub func: AggFunc,
    /// Argument expression; `None` only for `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    /// `DISTINCT` modifier.
    pub distinct: bool,
}

impl AggDef {
    /// Builds an aggregate definition.
    pub fn new(out: ColumnMeta, func: AggFunc, arg: Option<ScalarExpr>) -> Self {
        AggDef {
            out,
            func,
            arg,
            distinct: false,
        }
    }
}

impl fmt::Display for AggDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.func, &self.arg) {
            (AggFunc::CountStar, _) => write!(f, "{}:=count(*)", self.out.id),
            (func, Some(a)) => write!(
                f,
                "{}:={func}({}{a})",
                self.out.id,
                if self.distinct { "distinct " } else { "" }
            ),
            (func, None) => write!(f, "{}:={func}()", self.out.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_semantics_match_sql() {
        assert_eq!(AggFunc::Sum.on_empty(), Value::Null);
        assert_eq!(AggFunc::CountStar.on_empty(), Value::Int(0));
        assert_eq!(AggFunc::Count.on_empty(), Value::Int(0));
        assert_eq!(AggFunc::Min.on_empty(), Value::Null);
    }

    #[test]
    fn identity9_condition() {
        // COUNT(*) over a single all-NULL row is 1, not 0 — it must be
        // rewritten before identity (9) applies.
        assert!(!AggFunc::CountStar.empty_equals_all_null());
        assert!(AggFunc::Count.empty_equals_all_null());
        assert!(AggFunc::Sum.empty_equals_all_null());
    }

    #[test]
    fn splits_compose_correctly_by_type() {
        // count splits into local count + global sum.
        assert_eq!(AggFunc::Count.split(), Some((AggFunc::Count, AggFunc::Sum)));
        assert_eq!(AggFunc::Min.split(), Some((AggFunc::Min, AggFunc::Min)));
        assert_eq!(AggFunc::Avg.split(), None);
    }

    #[test]
    fn output_types() {
        assert_eq!(
            AggFunc::Sum.output_type(Some(DataType::Float)),
            DataType::Float
        );
        assert_eq!(
            AggFunc::Count.output_type(Some(DataType::Str)),
            DataType::Int
        );
        assert_eq!(
            AggFunc::Avg.output_type(Some(DataType::Int)),
            DataType::Float
        );
        assert_eq!(
            AggFunc::Min.output_type(Some(DataType::Date)),
            DataType::Date
        );
    }

    #[test]
    fn nullability() {
        assert!(!AggFunc::Count.output_nullable());
        assert!(AggFunc::Sum.output_nullable());
    }
}
