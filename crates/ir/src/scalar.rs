//! Scalar expressions.
//!
//! Before normalization a scalar expression may contain *relational*
//! children (§2.1 "direct algebraic representation with mutual
//! recursion"): [`ScalarExpr::Subquery`], [`ScalarExpr::Exists`],
//! [`ScalarExpr::InSubquery`] and [`ScalarExpr::QuantifiedCmp`]. The
//! normalization pass replaces them with `Apply` operators and plain
//! column references (§2.2), after which scalar evaluation never calls
//! back into the relational engine.

use std::collections::BTreeSet;
use std::fmt;

use orthopt_common::{ColId, Value};

use crate::relop::RelExpr;

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The comparison with operand sides swapped (`a op b` ⇔ `b op' a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Logical negation (`NOT (a op b)` ⇔ `a op' b` under two-valued
    /// logic; the caller must handle NULLs separately).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always float-valued; division by zero is a run-time error)
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Quantifier of a quantified comparison subquery (`> ANY (...)`,
/// `= ALL (...)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Quant {
    /// `ANY` / `SOME`
    Any,
    /// `ALL`
    All,
}

/// A scalar expression tree.
#[derive(Clone, PartialEq, Debug)]
pub enum ScalarExpr {
    /// Reference to a column by global id. May refer to a column produced
    /// by an *enclosing* expression — that is exactly a correlation.
    Column(ColId),
    /// Constant.
    Literal(Value),
    /// Comparison under three-valued logic.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<ScalarExpr>,
        /// Right operand.
        right: Box<ScalarExpr>,
    },
    /// Unary minus.
    Neg(Box<ScalarExpr>),
    /// N-ary conjunction (empty = TRUE).
    And(Vec<ScalarExpr>),
    /// N-ary disjunction (empty = FALSE).
    Or(Vec<ScalarExpr>),
    /// Negation (three-valued).
    Not(Box<ScalarExpr>),
    /// `expr IS [NOT] NULL` — always two-valued.
    IsNull {
        /// Tested expression.
        expr: Box<ScalarExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`. Branch guards make
    /// eager subquery evaluation inside branches incorrect (§2.4), which
    /// is why normalization leaves subqueries under CASE correlated.
    Case {
        /// Optional comparand (`CASE x WHEN v THEN ..`).
        operand: Option<Box<ScalarExpr>>,
        /// `(when, then)` pairs.
        whens: Vec<(ScalarExpr, ScalarExpr)>,
        /// `ELSE` expression (NULL when absent).
        else_: Option<Box<ScalarExpr>>,
    },
    /// Scalar-valued subquery (≤ 1 row, 1 column). Pre-normalization only.
    Subquery(Box<RelExpr>),
    /// `[NOT] EXISTS (...)`. Pre-normalization only.
    Exists {
        /// The subquery.
        rel: Box<RelExpr>,
        /// True for `NOT EXISTS`.
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`. Pre-normalization only.
    InSubquery {
        /// Left operand.
        expr: Box<ScalarExpr>,
        /// Single-column subquery.
        rel: Box<RelExpr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr op ANY/ALL (subquery)`. Pre-normalization only.
    QuantifiedCmp {
        /// Comparison operator.
        op: CmpOp,
        /// Quantifier.
        quant: Quant,
        /// Left operand.
        expr: Box<ScalarExpr>,
        /// Single-column subquery.
        rel: Box<RelExpr>,
    },
}

impl ScalarExpr {
    /// Column reference shorthand.
    pub fn col(id: ColId) -> ScalarExpr {
        ScalarExpr::Column(id)
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Literal(v.into())
    }

    /// The constant TRUE.
    pub fn true_() -> ScalarExpr {
        ScalarExpr::Literal(Value::Bool(true))
    }

    /// Builds `left op right`.
    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Builds `left = right`.
    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::cmp(CmpOp::Eq, left, right)
    }

    /// Builds an N-ary AND, flattening trivial cases.
    pub fn and(parts: impl IntoIterator<Item = ScalarExpr>) -> ScalarExpr {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                ScalarExpr::And(inner) => flat.extend(inner),
                ScalarExpr::Literal(Value::Bool(true)) => {}
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => ScalarExpr::true_(),
            1 => flat.pop().expect("len checked"),
            _ => ScalarExpr::And(flat),
        }
    }

    /// True iff this is literally the constant TRUE.
    pub fn is_true(&self) -> bool {
        matches!(self, ScalarExpr::Literal(Value::Bool(true)))
    }

    /// Splits a predicate into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<ScalarExpr> {
        match self {
            ScalarExpr::And(parts) => parts.iter().flat_map(ScalarExpr::conjuncts).collect(),
            ScalarExpr::Literal(Value::Bool(true)) => vec![],
            other => vec![other.clone()],
        }
    }

    /// All column ids referenced anywhere in this expression, including
    /// inside relational subqueries (both their internal references and
    /// correlations).
    pub fn referenced_cols(&self, out: &mut BTreeSet<ColId>) {
        self.walk(&mut |e| {
            if let ScalarExpr::Column(c) = e {
                out.insert(*c);
            }
        });
    }

    /// Convenience wrapper over [`ScalarExpr::referenced_cols`].
    pub fn cols(&self) -> BTreeSet<ColId> {
        let mut s = BTreeSet::new();
        self.referenced_cols(&mut s);
        s
    }

    /// True if the expression contains any relational subquery marker.
    pub fn has_subquery(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                ScalarExpr::Subquery(_)
                    | ScalarExpr::Exists { .. }
                    | ScalarExpr::InSubquery { .. }
                    | ScalarExpr::QuantifiedCmp { .. }
            ) {
                found = true;
            }
        });
        found
    }

    /// Pre-order traversal of the scalar tree, descending into relational
    /// subqueries' scalar expressions as well.
    pub fn walk(&self, f: &mut dyn FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => e.walk(f),
            ScalarExpr::And(parts) | ScalarExpr::Or(parts) => {
                for p in parts {
                    p.walk(f);
                }
            }
            ScalarExpr::IsNull { expr, .. } => expr.walk(f),
            ScalarExpr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in whens {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            ScalarExpr::Subquery(rel) => rel.walk_scalars(f),
            ScalarExpr::Exists { rel, .. } => rel.walk_scalars(f),
            ScalarExpr::InSubquery { expr, rel, .. } => {
                expr.walk(f);
                rel.walk_scalars(f);
            }
            ScalarExpr::QuantifiedCmp { expr, rel, .. } => {
                expr.walk(f);
                rel.walk_scalars(f);
            }
        }
    }

    /// In-place rewrite of column references according to `map`; descends
    /// into relational subqueries.
    pub fn remap_columns(&mut self, map: &std::collections::HashMap<ColId, ColId>) {
        self.transform(&mut |e| {
            if let ScalarExpr::Column(c) = e {
                if let Some(n) = map.get(c) {
                    *c = *n;
                }
            }
        });
    }

    /// In-place substitution of whole column references by expressions
    /// (used when folding `Map` definitions into consumers).
    pub fn substitute(&mut self, defs: &std::collections::HashMap<ColId, ScalarExpr>) {
        match self {
            ScalarExpr::Column(c) => {
                if let Some(repl) = defs.get(c) {
                    *self = repl.clone();
                }
            }
            _ => self.for_each_child_mut(&mut |child| child.substitute(defs)),
        }
    }

    /// Mutable pre-order traversal (visits relational subqueries' scalars
    /// too).
    pub fn transform(&mut self, f: &mut dyn FnMut(&mut ScalarExpr)) {
        f(self);
        self.for_each_child_mut(&mut |child| child.transform(f));
    }

    fn for_each_child_mut(&mut self, f: &mut dyn FnMut(&mut ScalarExpr)) {
        match self {
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                f(left);
                f(right);
            }
            ScalarExpr::Neg(e) | ScalarExpr::Not(e) => f(e),
            ScalarExpr::And(parts) | ScalarExpr::Or(parts) => {
                for p in parts {
                    f(p);
                }
            }
            ScalarExpr::IsNull { expr, .. } => f(expr),
            ScalarExpr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    f(o);
                }
                for (w, t) in whens {
                    f(w);
                    f(t);
                }
                if let Some(e) = else_ {
                    f(e);
                }
            }
            ScalarExpr::Subquery(rel) => rel.transform_scalars(f),
            ScalarExpr::Exists { rel, .. } => rel.transform_scalars(f),
            ScalarExpr::InSubquery { expr, rel, .. } => {
                f(expr);
                rel.transform_scalars(f);
            }
            ScalarExpr::QuantifiedCmp { expr, rel, .. } => {
                f(expr);
                rel.transform_scalars(f);
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Literal(v) => write!(f, "{v}"),
            ScalarExpr::Cmp { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::Arith { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::Neg(e) => write!(f, "(-{e})"),
            ScalarExpr::And(parts) => {
                let s: Vec<String> = parts.iter().map(ToString::to_string).collect();
                write!(f, "({})", s.join(" AND "))
            }
            ScalarExpr::Or(parts) => {
                let s: Vec<String> = parts.iter().map(ToString::to_string).collect();
                write!(f, "({})", s.join(" OR "))
            }
            ScalarExpr::Not(e) => write!(f, "NOT {e}"),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::Case { whens, else_, .. } => {
                write!(f, "CASE")?;
                for (w, t) in whens {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            ScalarExpr::Subquery(_) => write!(f, "SUBQUERY(..)"),
            ScalarExpr::Exists { negated, .. } => {
                write!(f, "{}EXISTS(..)", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::InSubquery { expr, negated, .. } => {
                write!(f, "({expr} {}IN (..))", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::QuantifiedCmp {
                op, quant, expr, ..
            } => {
                let q = match quant {
                    Quant::Any => "ANY",
                    Quant::All => "ALL",
                };
                write!(f, "({expr} {op} {q}(..))")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let p = ScalarExpr::and([
            ScalarExpr::and([ScalarExpr::lit(true), ScalarExpr::col(ColId(1)).clone()]),
            ScalarExpr::eq(ScalarExpr::col(ColId(2)), ScalarExpr::lit(3i64)),
        ]);
        let parts = p.conjuncts();
        assert_eq!(parts.len(), 2);
    }

    #[test]
    fn and_of_nothing_is_true() {
        assert!(ScalarExpr::and([]).is_true());
        assert!(ScalarExpr::and([ScalarExpr::true_(), ScalarExpr::true_()]).is_true());
    }

    #[test]
    fn cols_collects_references() {
        let e = ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(ColId(5)),
            ScalarExpr::Arith {
                op: ArithOp::Add,
                left: Box::new(ScalarExpr::col(ColId(7))),
                right: Box::new(ScalarExpr::lit(1i64)),
            },
        );
        let cols = e.cols();
        assert!(cols.contains(&ColId(5)) && cols.contains(&ColId(7)));
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn remap_columns_rewrites_references() {
        let mut e = ScalarExpr::eq(ScalarExpr::col(ColId(1)), ScalarExpr::col(ColId(2)));
        let map = [(ColId(1), ColId(10))].into_iter().collect();
        e.remap_columns(&map);
        assert_eq!(
            e,
            ScalarExpr::eq(ScalarExpr::col(ColId(10)), ScalarExpr::col(ColId(2)))
        );
    }

    #[test]
    fn substitute_replaces_column_with_expression() {
        let mut e = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(ColId(1)), ScalarExpr::lit(0i64));
        let defs = [(
            ColId(1),
            ScalarExpr::Arith {
                op: ArithOp::Mul,
                left: Box::new(ScalarExpr::col(ColId(2))),
                right: Box::new(ScalarExpr::lit(2i64)),
            },
        )]
        .into_iter()
        .collect();
        e.substitute(&defs);
        assert!(e.cols().contains(&ColId(2)));
        assert!(!e.cols().contains(&ColId(1)));
    }

    #[test]
    fn cmp_flip_and_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }
}
