//! Deterministic fault injection at named operator sites.
//!
//! A *failpoint* is a named hook compiled into the executor at the
//! places where things can go wrong: buffer growth (`"hashjoin.build"`,
//! `"sort.buffer"`, …) and operator batch boundaries (the plain operator
//! name: `"HashJoin"`, `"Sort"`, …). Tests arm a site with a
//! [`FaultAction`] and the next
//! execution that crosses it fails in the requested way — an
//! allocation refusal ([`Error::ResourceExhausted`]), a forced panic, a
//! plain [`Error::Exec`], or a synthetic slowdown.
//!
//! The whole facility is gated behind the `fault-injection` cargo
//! feature. With the feature off (the default) every hook is an empty
//! `#[inline(always)]` function and [`COMPILED`] is `false`, so
//! production builds carry no registry, no locks, and no branch.
//!
//! Schedules can be derived deterministically from a seed via
//! [`install_seeded`], using the workspace PRNG (`common::prng`), so two
//! runs with the same seed arm the same sites with the same actions and
//! fail identically — the property the fault-matrix suite asserts.

#[cfg(not(feature = "fault-injection"))]
use orthopt_common::Result;

/// What an armed failpoint does when execution crosses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the site with [`orthopt_common::Error::ResourceExhausted`]
    /// as if the memory pool had refused the site's request.
    RefuseAlloc,
    /// Panic with a recognizable payload; exercises the panic-isolation
    /// boundaries (worker `catch_unwind`, top-level `catch_unwind`).
    Panic,
    /// Fail the site with a plain [`orthopt_common::Error::Exec`].
    Error,
    /// Sleep for the given number of milliseconds, then continue;
    /// used to force deadline expiry deterministically.
    SlowMs(u64),
}

/// True when the crate was built with the `fault-injection` feature, so
/// tests (and CI's compile-out check) can assert which world they're in.
#[cfg(feature = "fault-injection")]
pub const COMPILED: bool = true;
/// True when the crate was built with the `fault-injection` feature, so
/// tests (and CI's compile-out check) can assert which world they're in.
#[cfg(not(feature = "fault-injection"))]
pub const COMPILED: bool = false;

#[cfg(feature = "fault-injection")]
mod imp {
    use super::FaultAction;
    use orthopt_common::{Error, Prng, Result};
    use orthopt_synccheck::sync::{Mutex, MutexGuard};
    use std::collections::HashMap;
    use std::sync::OnceLock;

    struct FaultState {
        action: FaultAction,
        /// Number of hits to let pass before firing.
        after: u64,
        hits: u64,
        fired: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, FaultState>> {
        static REG: OnceLock<Mutex<HashMap<String, FaultState>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> MutexGuard<'static, HashMap<String, FaultState>> {
        // A test that panics *on purpose* (FaultAction::Panic) would
        // poison a std mutex; the shim lock recovers, and the registry
        // stays structurally valid across such panics.
        registry().lock()
    }

    /// Arms `site` with `action`, firing on every hit after skipping
    /// `after` of them. Re-installing a site replaces its previous state.
    pub fn install(site: &str, action: FaultAction, after: u64) {
        lock().insert(
            site.to_string(),
            FaultState {
                action,
                after,
                hits: 0,
                fired: 0,
            },
        );
    }

    /// Disarms every failpoint and forgets all counters.
    pub fn clear() {
        lock().clear();
    }

    /// How many times `site` actually fired since it was installed.
    pub fn fired(site: &str) -> u64 {
        lock().get(site).map_or(0, |s| s.fired)
    }

    /// Derives a deterministic schedule from `seed`: picks one of
    /// `sites` and one action, arms it, and returns a description
    /// (`"site=… action=… after=…"`) so a second run can be compared.
    /// Panics are excluded from seeded schedules — they are exercised
    /// separately — so a seeded run always fails with an `Err`.
    pub fn install_seeded(seed: u64, sites: &[&str]) -> String {
        let mut rng = Prng::new(seed);
        let site = sites[(rng.next_u64() % sites.len() as u64) as usize];
        let action = match rng.next_u64() % 3 {
            0 => FaultAction::RefuseAlloc,
            1 => FaultAction::Error,
            _ => FaultAction::SlowMs(30),
        };
        let after = rng.next_u64() % 3;
        install(site, action.clone(), after);
        format!("site={site} action={action:?} after={after}")
    }

    /// The hook compiled into every instrumented site. Returns `Err`
    /// (or panics, or sleeps) when the site is armed and due.
    pub fn hit(site: &str) -> Result<()> {
        let action = {
            let mut reg = lock();
            let Some(state) = reg.get_mut(site) else {
                return Ok(());
            };
            state.hits += 1;
            if state.hits <= state.after {
                return Ok(());
            }
            state.fired += 1;
            state.action.clone()
        };
        match action {
            FaultAction::RefuseAlloc => Err(Error::ResourceExhausted {
                operator: format!("fault:{site}"),
                requested: 0,
                limit: 0,
                hint: None,
            }),
            FaultAction::Error => Err(Error::Exec(format!("injected fault at {site}"))),
            FaultAction::Panic => panic!("injected panic at {site}"),
            FaultAction::SlowMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use imp::{clear, fired, hit, install, install_seeded};

/// No-op hook (feature off): optimizes away entirely.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn hit(_site: &str) -> Result<()> {
    Ok(())
}

/// No-op install (feature off).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn install(_site: &str, _action: FaultAction, _after: u64) {}

/// No-op clear (feature off).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn clear() {}

/// Always zero with the feature off.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fired(_site: &str) -> u64 {
    0
}

/// No-op seeded install (feature off); returns an empty schedule.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn install_seeded(_seed: u64, _sites: &[&str]) -> String {
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_flag_matches_feature() {
        assert_eq!(COMPILED, cfg!(feature = "fault-injection"));
    }

    /// The registry is process-global; tests that touch it take this
    /// lock so `clear()` in one test can't disarm another's site.
    #[cfg(feature = "fault-injection")]
    fn test_lock() -> orthopt_synccheck::sync::MutexGuard<'static, ()> {
        static LOCK: orthopt_synccheck::sync::Mutex<()> = orthopt_synccheck::sync::Mutex::new(());
        LOCK.lock()
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn after_counter_skips_then_fires() {
        let _g = test_lock();
        let site = "test.after_counter";
        install(site, FaultAction::Error, 2);
        assert!(hit(site).is_ok());
        assert!(hit(site).is_ok());
        assert!(hit(site).is_err());
        assert_eq!(fired(site), 1);
        clear();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn seeded_schedules_are_reproducible() {
        let _g = test_lock();
        let sites = ["test.seed_a", "test.seed_b", "test.seed_c"];
        let one = install_seeded(0xfeed, &sites);
        clear();
        let two = install_seeded(0xfeed, &sites);
        clear();
        assert_eq!(one, two);
        assert_ne!(one, install_seeded(0xbeef, &sites));
        clear();
    }
}
