//! Morsel-driven parallel execution.
//!
//! An [`Exchange`](PhysExpr::Exchange) node marks a subtree the runtime
//! may execute across a small fixed pool of `std::thread` workers
//! (sized by [`ExecCtx::parallelism`]). Three physical strategies are
//! implemented, chosen by the shape of the wrapped subtree:
//!
//! * **Pipelined scan** — a chain of row-at-a-time operators over a
//!   `TableScan` (optionally through one hash join) is cloned per
//!   worker with the scan replaced by a
//!   [`MorselScan`](PhysExpr::MorselScan) over statically-assigned row
//!   ranges; a join's build side is computed once and broadcast to the
//!   workers as a `ConstScan`.
//! * **Repartitioned probe** — when the subtree root is exactly a hash
//!   join, the build side is computed once and hash-partitioned into
//!   one table per worker; workers probe their morsel-split chain
//!   against the shared read-only partition tables.
//! * **Partial aggregation** — when the root is a `HashAggregate`, each
//!   worker feeds its morsels into a thread-local
//!   [`GroupedAggState`]; the partial states are merged at close. This
//!   is the paper's LocalGroupBy (§3.3) realized physically: the
//!   thread-local states are LocalGroupBys over the morsel partitions
//!   and the merge is the global GroupBy.
//!
//! Determinism: morsels are assigned round-robin by a static schedule,
//! task outputs are gathered in task (submission) order, the partition
//! hash is a fixed-key [`DefaultHasher`], and aggregate states merge in
//! task order — repeated parallel runs are byte-identical. Subtrees
//! whose shape the runtime does not recognize, non-invariant subtrees
//! (ones referencing outer parameters or segments), and
//! `parallelism <= 1` all fall back to serial execution of the
//! unmodified subtree, with per-node stats copied one-to-one.
//!
//! Dispatch: when the execution context carries a shared-ownership
//! catalog handle ([`ExecCtx::shared_catalog`]), task groups go to the
//! process-wide [`Scheduler`] — one long-lived pool multiplexing every
//! concurrent query under fair round-robin. Without it (direct
//! `Pipeline` embedders whose catalog is only borrowed), the legacy
//! per-query `thread::scope` pool is used. Both paths produce the same
//! task outputs in the same order; only thread placement differs.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use orthopt_common::row::rows_bytes;
use orthopt_common::{ColId, Error, MemoryReservation, Result, Row, Value};
use orthopt_ir::{AggDef, GroupKind, JoinKind};
use orthopt_storage::Catalog;

use crate::aggregate::GroupedAggState;
use crate::bindings::Bindings;
use crate::eval::{eval, eval_predicate, EvalCtx};
use crate::physical::PhysExpr;
use crate::pipeline::{
    drain_pending, free_inputs, Batch, ExecCtx, Operator, Pipeline, PipelineOptions,
};
use crate::scheduler::Scheduler;
use crate::stats::OpStats;

/// Upper bound on the worker pool, whatever the knob says.
pub const MAX_WORKERS: usize = 64;

/// Morsels larger than this are split further so the static schedule
/// stays balanced.
const MAX_MORSEL: usize = 4096;

// ---------------------------------------------------------------------
// Eligibility: the plan-shape grammar the exchange runtime understands.
// ---------------------------------------------------------------------

/// A chain of per-row wrappers (`Filter`/`Compute`/`ProjectCols`) over a
/// `TableScan` — the driving path a morsel split applies to.
fn chain(p: &PhysExpr) -> bool {
    match p {
        PhysExpr::TableScan { .. } => true,
        PhysExpr::Filter { input, .. }
        | PhysExpr::Compute { input, .. }
        | PhysExpr::ProjectCols { input, .. } => chain(input),
        _ => false,
    }
}

/// A chain, or wrappers over a single hash join whose probe side is a
/// chain (the build side is arbitrary: it runs once, serially).
fn splittable(p: &PhysExpr) -> bool {
    match p {
        PhysExpr::TableScan { .. } => true,
        PhysExpr::Filter { input, .. }
        | PhysExpr::Compute { input, .. }
        | PhysExpr::ProjectCols { input, .. } => splittable(input),
        PhysExpr::HashJoin { left, .. } => chain(left),
        _ => false,
    }
}

/// Whether the exchange runtime can parallelize this subtree: a
/// splittable plan, or a `HashAggregate` over one, that does not depend
/// on outer parameters or segments.
pub fn exchange_eligible(p: &PhysExpr) -> bool {
    let shape =
        splittable(p) || matches!(p, PhysExpr::HashAggregate { input, .. } if splittable(input));
    shape && free_inputs(p).is_invariant()
}

/// Removes `Exchange` nodes from the driving path (root, wrapper
/// chains, the probe side of a join, an aggregate's input) so a larger
/// wrap can subsume exchanges a bottom-up planner already placed on
/// children. Build sides keep theirs — they execute serially under the
/// parent exchange, where a nested exchange degrades to a no-op.
fn strip_driving_exchanges(p: &PhysExpr) -> PhysExpr {
    match p {
        PhysExpr::Exchange { input } => strip_driving_exchanges(input),
        PhysExpr::Filter { input, predicate } => PhysExpr::Filter {
            input: Box::new(strip_driving_exchanges(input)),
            predicate: predicate.clone(),
        },
        PhysExpr::Compute { input, defs } => PhysExpr::Compute {
            input: Box::new(strip_driving_exchanges(input)),
            defs: defs.clone(),
        },
        PhysExpr::ProjectCols { input, cols } => PhysExpr::ProjectCols {
            input: Box::new(strip_driving_exchanges(input)),
            cols: cols.clone(),
        },
        PhysExpr::HashAggregate {
            kind,
            input,
            group_cols,
            aggs,
        } => PhysExpr::HashAggregate {
            kind: *kind,
            input: Box::new(strip_driving_exchanges(input)),
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
        },
        PhysExpr::HashJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => PhysExpr::HashJoin {
            kind: *kind,
            left: Box::new(strip_driving_exchanges(left)),
            right: right.clone(),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            residual: residual.clone(),
        },
        other => other.clone(),
    }
}

/// Wraps a plan in an `Exchange` if it is eligible, first stripping
/// exchanges a bottom-up planner already placed on the driving path
/// (so the larger wrap subsumes them rather than being blocked by
/// them). Used by the optimizer when the cost model decides
/// parallelism pays.
pub fn wrap_exchange(p: &PhysExpr) -> Option<PhysExpr> {
    let inner = strip_driving_exchanges(p);
    if exchange_eligible(&inner) {
        Some(PhysExpr::Exchange {
            input: Box::new(inner),
        })
    } else {
        None
    }
}

/// Structurally wraps every maximal eligible subtree in an `Exchange`,
/// regardless of cost — the conformance suite uses this to exercise the
/// parallel runtime on tables far too small for the cost model to pick
/// exchanges on its own.
pub fn place_exchanges(p: &PhysExpr) -> PhysExpr {
    if exchange_eligible(p) {
        return PhysExpr::Exchange {
            input: Box::new(p.clone()),
        };
    }
    match p {
        PhysExpr::Filter { input, predicate } => PhysExpr::Filter {
            input: Box::new(place_exchanges(input)),
            predicate: predicate.clone(),
        },
        PhysExpr::Compute { input, defs } => PhysExpr::Compute {
            input: Box::new(place_exchanges(input)),
            defs: defs.clone(),
        },
        PhysExpr::ProjectCols { input, cols } => PhysExpr::ProjectCols {
            input: Box::new(place_exchanges(input)),
            cols: cols.clone(),
        },
        PhysExpr::HashJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => PhysExpr::HashJoin {
            kind: *kind,
            left: Box::new(place_exchanges(left)),
            right: Box::new(place_exchanges(right)),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            residual: residual.clone(),
        },
        PhysExpr::NLJoin {
            kind,
            left,
            right,
            predicate,
        } => PhysExpr::NLJoin {
            kind: *kind,
            left: Box::new(place_exchanges(left)),
            right: Box::new(place_exchanges(right)),
            predicate: predicate.clone(),
        },
        PhysExpr::ApplyLoop {
            kind,
            left,
            right,
            params,
        } => PhysExpr::ApplyLoop {
            kind: *kind,
            left: Box::new(place_exchanges(left)),
            right: Box::new(place_exchanges(right)),
            params: params.clone(),
        },
        PhysExpr::BatchedApply {
            kind,
            left,
            right,
            params,
        } => PhysExpr::BatchedApply {
            kind: *kind,
            left: Box::new(place_exchanges(left)),
            right: Box::new(place_exchanges(right)),
            params: params.clone(),
        },
        PhysExpr::IndexLookupJoin {
            kind,
            left,
            table,
            positions,
            fetch_cols,
            index_cols,
            probes,
            residual,
            cols,
            params,
        } => PhysExpr::IndexLookupJoin {
            kind: *kind,
            left: Box::new(place_exchanges(left)),
            table: *table,
            positions: positions.clone(),
            fetch_cols: fetch_cols.clone(),
            index_cols: index_cols.clone(),
            probes: probes.clone(),
            residual: residual.clone(),
            cols: cols.clone(),
            params: params.clone(),
        },
        PhysExpr::SegmentExec {
            input,
            segment_cols,
            inner,
            out_cols,
        } => PhysExpr::SegmentExec {
            input: Box::new(place_exchanges(input)),
            segment_cols: segment_cols.clone(),
            inner: Box::new(place_exchanges(inner)),
            out_cols: out_cols.clone(),
        },
        PhysExpr::HashAggregate {
            kind,
            input,
            group_cols,
            aggs,
        } => PhysExpr::HashAggregate {
            kind: *kind,
            input: Box::new(place_exchanges(input)),
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
        },
        PhysExpr::Concat {
            left,
            right,
            cols,
            left_map,
            right_map,
        } => PhysExpr::Concat {
            left: Box::new(place_exchanges(left)),
            right: Box::new(place_exchanges(right)),
            cols: cols.clone(),
            left_map: left_map.clone(),
            right_map: right_map.clone(),
        },
        PhysExpr::ExceptExec {
            left,
            right,
            right_map,
        } => PhysExpr::ExceptExec {
            left: Box::new(place_exchanges(left)),
            right: Box::new(place_exchanges(right)),
            right_map: right_map.clone(),
        },
        PhysExpr::AssertMax1 { input } => PhysExpr::AssertMax1 {
            input: Box::new(place_exchanges(input)),
        },
        PhysExpr::RowNumber { input, col } => PhysExpr::RowNumber {
            input: Box::new(place_exchanges(input)),
            col: *col,
        },
        PhysExpr::Sort { input, by } => PhysExpr::Sort {
            input: Box::new(place_exchanges(input)),
            by: by.clone(),
        },
        PhysExpr::Limit { input, n } => PhysExpr::Limit {
            input: Box::new(place_exchanges(input)),
            n: *n,
        },
        PhysExpr::Exchange { input } => PhysExpr::Exchange {
            input: input.clone(),
        },
        PhysExpr::TableScan { .. }
        | PhysExpr::IndexSeek { .. }
        | PhysExpr::SegmentScan { .. }
        | PhysExpr::ConstScan { .. }
        | PhysExpr::MorselScan { .. } => p.clone(),
    }
}

// ---------------------------------------------------------------------
// Plan surgery: locating the driving scan / build side, substitution.
// ---------------------------------------------------------------------

/// The build subtree on the driving path, if the subtree contains a
/// join (at most one, by the eligibility grammar).
fn build_side(p: &PhysExpr) -> Option<&PhysExpr> {
    match p {
        PhysExpr::Filter { input, .. }
        | PhysExpr::Compute { input, .. }
        | PhysExpr::ProjectCols { input, .. }
        | PhysExpr::HashAggregate { input, .. } => build_side(input),
        PhysExpr::HashJoin { right, .. } => Some(right),
        _ => None,
    }
}

/// Row count of the driving scan's table.
fn driving_len(p: &PhysExpr, catalog: &Catalog) -> usize {
    match p {
        PhysExpr::TableScan { table, .. } => catalog.table(*table).row_count(),
        PhysExpr::Filter { input, .. }
        | PhysExpr::Compute { input, .. }
        | PhysExpr::ProjectCols { input, .. }
        | PhysExpr::HashAggregate { input, .. } => driving_len(input, catalog),
        PhysExpr::HashJoin { left, .. } => driving_len(left, catalog),
        _ => 0,
    }
}

/// Broadcast replacement for a join build side: its output layout plus
/// the serially-computed rows.
struct BuildRows {
    cols: Vec<ColId>,
    rows: Vec<Row>,
}

/// Clones the subtree for one worker: the driving `TableScan` becomes a
/// `MorselScan` over the worker's ranges, and the build side (if any)
/// becomes a `ConstScan` over the broadcast build rows. Reaching a join
/// without broadcast rows means the eligibility grammar and the build
/// locator disagree — reported as an internal error rather than a
/// panic so the engine survives the (never observed) inconsistency.
fn substitute(
    p: &PhysExpr,
    ranges: &[(usize, usize)],
    build: Option<&BuildRows>,
) -> Result<PhysExpr> {
    Ok(match p {
        PhysExpr::TableScan {
            table,
            positions,
            cols,
        } => PhysExpr::MorselScan {
            table: *table,
            positions: positions.clone(),
            cols: cols.clone(),
            ranges: ranges.to_vec(),
        },
        PhysExpr::Filter { input, predicate } => PhysExpr::Filter {
            input: Box::new(substitute(input, ranges, build)?),
            predicate: predicate.clone(),
        },
        PhysExpr::Compute { input, defs } => PhysExpr::Compute {
            input: Box::new(substitute(input, ranges, build)?),
            defs: defs.clone(),
        },
        PhysExpr::ProjectCols { input, cols } => PhysExpr::ProjectCols {
            input: Box::new(substitute(input, ranges, build)?),
            cols: cols.clone(),
        },
        PhysExpr::HashJoin {
            kind,
            left,
            right: _,
            left_keys,
            right_keys,
            residual,
        } => {
            let b = build.ok_or_else(|| {
                Error::internal("exchange substitution reached a join without broadcast build rows")
            })?;
            PhysExpr::HashJoin {
                kind: *kind,
                left: Box::new(substitute(left, ranges, None)?),
                right: Box::new(PhysExpr::ConstScan {
                    cols: b.cols.clone(),
                    rows: b.rows.clone(),
                }),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                residual: residual.clone(),
            }
        }
        other => other.clone(),
    })
}

/// Static morsel schedule: the table's row space is cut into morsels of
/// `clamp(ceil(len / (workers * 4)), 1, MAX_MORSEL)` rows and morsel
/// `m` goes to worker `m % workers` — deterministic run to run.
fn worker_ranges(len: usize, workers: usize) -> Vec<Vec<(usize, usize)>> {
    let mut out = vec![Vec::new(); workers];
    if len == 0 {
        return out;
    }
    let morsel = len.div_ceil(workers * 4).clamp(1, MAX_MORSEL);
    let mut start = 0;
    let mut m = 0;
    while start < len {
        let end = (start + morsel).min(len);
        out[m % workers].push((start, end));
        start = end;
        m += 1;
    }
    out
}

/// Key extraction mirroring the serial hash join: `None` when any key
/// value is NULL (SQL equality never matches NULL).
fn partition_key(row: &[Value], positions: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(positions.len());
    for &i in positions {
        if row[i].is_null() {
            return None;
        }
        key.push(row[i].clone());
    }
    Some(key)
}

/// Fixed-key hash so partition assignment is deterministic across runs
/// (unlike `RandomState`).
fn key_hash(key: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------
// Worker pool.
// ---------------------------------------------------------------------

/// Renders a panic payload as text for error reporting.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Converts a panic caught inside a task body into an [`Error::Exec`]
/// naming the operator the task was inside. Must run on the thread the
/// panic unwound on — the op note is thread-local.
fn panic_to_error(payload: &(dyn std::any::Any + Send)) -> Error {
    let at = crate::pipeline::current_op().map_or_else(String::new, |(id, name)| {
        format!(" in operator {name}#{id}")
    });
    Error::Exec(format!("worker panicked{at}: {}", panic_message(payload)))
}

/// Runs one closure per plan and gathers `(pool_worker_id, result)`
/// pairs in *task submission order* — the order `plans` was given in —
/// regardless of which thread ran what when. The worker id is the
/// executing thread's stable index, for stats attribution (on the
/// scoped fallback each task gets its own thread, so it is the task
/// index).
///
/// With a shared-ownership catalog handle the group is dispatched to
/// the process-wide [`Scheduler`] (tasks capture the `Arc`); otherwise
/// a per-query `thread::scope` pool is spawned against the borrowed
/// catalog. Each task body runs under `catch_unwind`, so a panicking
/// operator is reported as an [`Error::Exec`] naming the operator the
/// task was inside instead of tearing down the process; the remaining
/// tasks finish normally. The first (by task order) error wins.
fn scatter<T, F>(
    shared: Option<Arc<Catalog>>,
    catalog: &Catalog,
    plans: Vec<PhysExpr>,
    f: F,
) -> Result<Vec<(usize, T)>>
where
    T: Send + 'static,
    F: Fn(PhysExpr, &Catalog) -> Result<T> + Send + Sync + 'static,
{
    match shared {
        Some(cat) => scatter_pooled(cat, plans, f),
        None => scatter_scoped(catalog, plans, f),
    }
}

/// Shared-scheduler path: `'static` tasks capturing the catalog `Arc`
/// run on the process-wide pool, interleaved fairly with other queries.
fn scatter_pooled<T, F>(
    catalog: Arc<Catalog>,
    plans: Vec<PhysExpr>,
    f: F,
) -> Result<Vec<(usize, T)>>
where
    T: Send + 'static,
    F: Fn(PhysExpr, &Catalog) -> Result<T> + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let tasks: Vec<_> = plans
        .into_iter()
        .map(|p| {
            let f = Arc::clone(&f);
            let catalog = Arc::clone(&catalog);
            move |worker: usize| -> Result<(usize, T)> {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(p, &catalog)))
                    .unwrap_or_else(|payload| Err(panic_to_error(payload.as_ref())))
                    .map(|v| (worker, v))
            }
        })
        .collect();
    let joined = Scheduler::global().run_group(tasks);
    let mut out = Vec::with_capacity(joined.len());
    for r in joined {
        match r {
            Ok(v) => out.push(v?),
            // The task body is fully wrapped in catch_unwind, so this
            // means the panic escaped during payload teardown — still
            // convert rather than abort the process.
            Err(panic) => {
                return Err(Error::Exec(format!(
                    "worker task died: {}",
                    panic_message(panic.as_ref())
                )))
            }
        }
    }
    Ok(out)
}

/// Legacy fallback for borrowed catalogs: one scoped thread per task.
fn scatter_scoped<T, F>(catalog: &Catalog, plans: Vec<PhysExpr>, f: F) -> Result<Vec<(usize, T)>>
where
    T: Send,
    F: Fn(PhysExpr, &Catalog) -> Result<T> + Sync,
{
    // sync-ok: scoped threads borrow the caller's catalog, so they cannot
    // go through the 'static shim spawn; model harnesses use the pooled
    // Scheduler path (Arc<Catalog>), never this fallback.
    let joined: Vec<std::thread::Result<Result<T>>> = std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = plans
            .into_iter()
            .map(|p| {
                s.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(p, catalog)))
                        .unwrap_or_else(|payload| Err(panic_to_error(payload.as_ref())))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(std::thread::ScopedJoinHandle::join) // sync-ok: scoped fallback, see above
            .collect()
    });
    let mut out = Vec::with_capacity(joined.len());
    for (idx, r) in joined.into_iter().enumerate() {
        match r {
            Ok(v) => out.push((idx, v?)),
            // The worker body is fully wrapped in catch_unwind, so a join
            // failure means the panic escaped during payload teardown —
            // still convert rather than abort the process.
            Err(panic) => {
                return Err(Error::Exec(format!(
                    "worker thread died: {}",
                    panic_message(panic.as_ref())
                )))
            }
        }
    }
    Ok(out)
}

/// Verifies every gathered row matches the expected output layout
/// before it enters a shared buffer. Worker plans are synthesized by
/// plan surgery ([`substitute`]), so a substitution bug would otherwise
/// corrupt the merged stream silently; like
/// [`Batch::check_width`](crate::pipeline::Batch::check_width) this
/// runs in release builds too and reports through `common::error`
/// rather than panicking.
fn check_gathered(rows: &[Row], width: usize, site: &str) -> Result<()> {
    match rows.iter().find(|r| r.len() != width) {
        None => Ok(()),
        Some(r) => Err(Error::internal(format!(
            "exchange {site}: gathered row has {} columns, layout expects {width}",
            r.len()
        ))),
    }
}

#[allow(dead_code)]
fn thread_safety_asserts() {
    fn send<T: Send>() {}
    fn sync<T: Sync>() {}
    // Worker plans move into threads; catalogs are shared by reference;
    // rows and partial aggregation states travel back.
    send::<PhysExpr>();
    send::<Row>();
    send::<GroupedAggState>();
    sync::<Catalog>();
    sync::<HashMap<Vec<Value>, Vec<Row>>>();
}

// ---------------------------------------------------------------------
// The exchange operator.
// ---------------------------------------------------------------------

/// Runtime of an `Exchange` node: decides serial fallback vs. one of
/// the three parallel strategies at execution time, runs the workers,
/// and merges per-worker [`OpStats`] into the enclosing pipeline's
/// registry at the subtree's pre-order slots.
pub struct ExchangeOp {
    plan: PhysExpr,
    /// First stats slot of the wrapped subtree (the slot right after the
    /// exchange's own).
    base: usize,
    stats: Rc<RefCell<Vec<OpStats>>>,
    batch_size: usize,
    /// Columnar toggle the enclosing pipeline was compiled with; worker
    /// pipelines inherit it so a per-session setting holds across the
    /// exchange boundary.
    columnar: bool,
    /// Spill toggle the enclosing pipeline was compiled with, inherited
    /// by worker pipelines for the same reason.
    spill: bool,
    out_cols: Rc<[ColId]>,
    invariant: bool,
    pending: Vec<Row>,
    done: bool,
    /// Charges the gathered-row buffer (`pending`) against the query's
    /// memory budget; workers stream into it before the parent drains.
    mem: MemoryReservation,
}

impl ExchangeOp {
    pub(crate) fn new(
        plan: PhysExpr,
        base: usize,
        stats: Rc<RefCell<Vec<OpStats>>>,
        batch_size: usize,
        columnar: bool,
        spill: bool,
    ) -> ExchangeOp {
        let out_cols: Rc<[ColId]> = plan.out_cols().as_slice().into();
        let invariant = free_inputs(&plan).is_invariant();
        ExchangeOp {
            plan,
            base,
            stats,
            batch_size,
            columnar,
            spill,
            out_cols,
            invariant,
            pending: Vec::new(),
            done: false,
            mem: MemoryReservation::detached("Exchange"),
        }
    }

    /// Compile options worker/build/serial pipelines inherit from the
    /// enclosing pipeline.
    fn pipe_options(&self) -> PipelineOptions {
        PipelineOptions {
            batch_size: self.batch_size,
            columnar: Some(self.columnar),
            spill: Some(self.spill),
        }
    }

    /// Charges freshly gathered rows to the exchange's reservation
    /// before they enter the shared `pending` buffer. Also a fault site
    /// (`exchange.gather`), so injection can exercise the gather path.
    fn charge_gathered(&mut self, rows: &[Row]) -> Result<()> {
        crate::faults::hit("exchange.gather")
            .and_then(|()| self.mem.grow(rows_bytes(rows)))
            .map_err(|e| e.with_hint("raise ORTHOPT_MEM_LIMIT / SET mem_limit"))
    }

    /// Serial fallback: compile and run the unmodified subtree, copying
    /// its per-node stats one-to-one into the reserved slots.
    fn run_serial(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        let mut pipe = Pipeline::with_options(&self.plan, self.pipe_options())?;
        pipe.set_governor(ctx.gov.clone());
        let binds = ctx.binds.borrow().clone();
        let chunk = pipe.execute(ctx.catalog, &binds)?;
        let sub = pipe.stats();
        let mut stats = self.stats.borrow_mut();
        for (i, s) in sub.iter().enumerate() {
            let slot = &mut stats[self.base + i];
            slot.opens += s.opens;
            slot.batches += s.batches;
            slot.rows += s.rows;
            slot.elapsed += s.elapsed;
            slot.mem_peak = slot.mem_peak.max(s.mem_peak);
        }
        drop(stats);
        check_gathered(&chunk.rows, self.out_cols.len(), "serial fallback")?;
        self.charge_gathered(&chunk.rows)?;
        self.pending.extend(chunk.rows);
        Ok(())
    }

    /// Runs a join build side once, serially, recording its stats into
    /// the trailing reserved slots (the build subtree is last in the
    /// subtree's pre-order).
    fn run_build(&self, ctx: &ExecCtx<'_>, build: &PhysExpr) -> Result<BuildRows> {
        let mut pipe = Pipeline::with_options(build, self.pipe_options())?;
        pipe.set_governor(ctx.gov.clone());
        let chunk = pipe.execute(ctx.catalog, &Bindings::new())?;
        let sub = pipe.stats();
        let start = self.base + self.plan.node_count() - build.node_count();
        let mut stats = self.stats.borrow_mut();
        for (i, s) in sub.iter().enumerate() {
            let slot = &mut stats[start + i];
            slot.opens += s.opens;
            slot.batches += s.batches;
            slot.rows += s.rows;
            slot.elapsed += s.elapsed;
            slot.mem_peak = slot.mem_peak.max(s.mem_peak);
        }
        let cols = build.out_cols();
        check_gathered(&chunk.rows, cols.len(), "build broadcast")?;
        Ok(BuildRows {
            cols,
            rows: chunk.rows,
        })
    }

    /// Folds each task's pipeline stats into the aligned slot prefix,
    /// first grouping tasks by the pool worker that ran them — so
    /// `workers=` reports *distinct* scheduler workers, not task count,
    /// and `max/worker=` reflects the rows one worker actually
    /// produced across all its tasks. Worker plans share the subtree's
    /// pre-order for their first `align` nodes because the build
    /// subtree (whose replacement is the trailing `ConstScan`) sorts
    /// last in pre-order.
    fn absorb_workers(&self, offset: usize, align: usize, tagged: &[(usize, Vec<OpStats>)]) {
        let mut by_worker: BTreeMap<usize, Vec<OpStats>> = BTreeMap::new();
        for (w, tstats) in tagged {
            let merged = by_worker
                .entry(*w)
                .or_insert_with(|| vec![OpStats::default(); align]);
            for i in 0..align.min(tstats.len()) {
                merged[i].add_task(&tstats[i]);
            }
        }
        let mut stats = self.stats.borrow_mut();
        for merged in by_worker.values() {
            for i in 0..align {
                stats[self.base + offset + i].absorb_worker(&merged[i]);
            }
        }
    }

    /// Distinct pool workers and the max row count any one of them
    /// produced, from `(worker, rows)` pairs.
    fn worker_spread(per_task: impl Iterator<Item = (usize, u64)>) -> (usize, u64) {
        let mut rows_by_worker: BTreeMap<usize, u64> = BTreeMap::new();
        for (w, rows) in per_task {
            *rows_by_worker.entry(w).or_insert(0) += rows;
        }
        let max = rows_by_worker.values().copied().max().unwrap_or(0);
        (rows_by_worker.len(), max)
    }

    /// Synthesizes the stats of a node the workers replaced (the join in
    /// repartition mode, the aggregate in partial-agg mode) so its slot
    /// matches what a serial run would report.
    fn synthesize_root(&self, rows: usize, elapsed: std::time::Duration, workers: usize, max: u64) {
        let mut stats = self.stats.borrow_mut();
        let slot = &mut stats[self.base];
        slot.opens += 1;
        slot.rows += rows as u64;
        slot.batches += (rows as u64).div_ceil(self.batch_size as u64);
        slot.elapsed += elapsed;
        slot.workers += workers as u64;
        slot.worker_rows_max = slot.worker_rows_max.max(max);
    }

    fn compute(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        ctx.gov.check_cancelled("Exchange")?;
        let workers = ctx.parallelism.min(MAX_WORKERS);
        if workers <= 1 || !self.invariant {
            return self.run_serial(ctx);
        }
        match &self.plan {
            PhysExpr::HashAggregate {
                kind,
                input,
                group_cols,
                aggs,
            } if splittable(input) => {
                let (kind, input) = (*kind, (**input).clone());
                let (group_cols, aggs) = (group_cols.clone(), aggs.clone());
                self.run_partial_agg(ctx, workers, kind, &input, &group_cols, &aggs)
            }
            PhysExpr::HashJoin { left, .. } if chain(left) => self.run_repartition(ctx, workers),
            p if splittable(p) => self.run_pipelined(ctx, workers),
            _ => self.run_serial(ctx),
        }
    }

    /// Pipelined mode: each worker runs a full clone of the subtree over
    /// its morsels (build side broadcast as a `ConstScan`); outputs are
    /// gathered worker-major.
    fn run_pipelined(&mut self, ctx: &ExecCtx<'_>, workers: usize) -> Result<()> {
        let build = match build_side(&self.plan) {
            Some(b) => Some(self.run_build(ctx, b)?),
            None => None,
        };
        let align = self.plan.node_count()
            - build_side(&self.plan).map_or(0, super::physical::PhysExpr::node_count);
        let ranges = worker_ranges(driving_len(&self.plan, ctx.catalog), workers);
        let plans: Vec<PhysExpr> = ranges
            .iter()
            .map(|r| substitute(&self.plan, r, build.as_ref()))
            .collect::<Result<_>>()?;
        let opts = self.pipe_options();
        let gov = ctx.gov.clone();
        let results = scatter(
            ctx.shared_catalog.clone(),
            ctx.catalog,
            plans,
            move |plan, catalog: &Catalog| {
                let mut pipe = Pipeline::with_options(&plan, opts)?;
                pipe.set_governor(gov.clone());
                let chunk = pipe.execute(catalog, &Bindings::new())?;
                Ok((chunk.rows, pipe.stats()))
            },
        )?;
        let tagged: Vec<(usize, Vec<OpStats>)> =
            results.iter().map(|(w, (_, s))| (*w, s.clone())).collect();
        self.absorb_workers(0, align, &tagged);
        for (_, (rows, _)) in results {
            check_gathered(&rows, self.out_cols.len(), "pipelined gather")?;
            self.charge_gathered(&rows)?;
            self.pending.extend(rows);
        }
        Ok(())
    }

    /// Repartition mode (subtree root is exactly a hash join): the
    /// build rows are hash-partitioned into one table per worker; each
    /// worker probes its morsel-split chain against the shared
    /// read-only partition tables, replicating the serial join's probe
    /// semantics (NULL keys never match, residual after key match, all
    /// four join kinds).
    fn run_repartition(&mut self, ctx: &ExecCtx<'_>, workers: usize) -> Result<()> {
        let PhysExpr::HashJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } = &self.plan
        else {
            return self.run_serial(ctx);
        };
        let t = Instant::now();
        let build = self.run_build(ctx, right)?;
        let lout = left.out_cols();
        let left_pos: Vec<usize> = left_keys
            .iter()
            .map(|c| {
                lout.iter()
                    .position(|l| l == c)
                    .ok_or_else(|| Error::internal("repartition probe key missing from layout"))
            })
            .collect::<Result<_>>()?;
        let right_pos: Vec<usize> = right_keys
            .iter()
            .map(|c| {
                build
                    .cols
                    .iter()
                    .position(|l| l == c)
                    .ok_or_else(|| Error::internal("repartition build key missing from layout"))
            })
            .collect::<Result<_>>()?;
        let mut combined = lout.clone();
        combined.extend(build.cols.iter().copied());
        let right_width = build.cols.len();

        // Partitioned build tables, filled in serial build order so the
        // per-key row order matches the serial join's. Shared read-only
        // across tasks via `Arc` (the pooled path moves tasks onto
        // long-lived threads, so borrows cannot cross).
        let mut parts: Vec<HashMap<Vec<Value>, Vec<Row>>> = vec![HashMap::new(); workers];
        for rr in build.rows {
            if let Some(key) = partition_key(&rr, &right_pos) {
                let p = (key_hash(&key) as usize) % workers;
                parts[p].entry(key).or_default().push(rr);
            }
        }
        let parts = Arc::new(parts);

        let chain_plan = (**left).clone();
        let chain_count = chain_plan.node_count();
        let ranges = worker_ranges(driving_len(&chain_plan, ctx.catalog), workers);
        let plans: Vec<PhysExpr> = ranges
            .iter()
            .map(|r| substitute(&chain_plan, r, None))
            .collect::<Result<_>>()?;
        let opts = self.pipe_options();
        let kind = *kind;
        let residual = residual.clone();
        let residual_trivial = residual.is_true();
        let gov = ctx.gov.clone();
        let results = scatter(
            ctx.shared_catalog.clone(),
            ctx.catalog,
            plans,
            move |plan, catalog: &Catalog| {
                let mut pipe = Pipeline::with_options(&plan, opts)?;
                pipe.set_governor(gov.clone());
                let binds = Bindings::new();
                let mut out: Vec<Row> = Vec::new();
                pipe.execute_each(catalog, &binds, |b| {
                    for lr in b.into_rows() {
                        let matches = partition_key(&lr, &left_pos).and_then(|k| {
                            let p = (key_hash(&k) as usize) % workers;
                            parts[p].get(&k)
                        });
                        let mut matched = false;
                        if let Some(rows) = matches {
                            for rr in rows {
                                let mut row = lr.clone();
                                row.extend(rr.iter().cloned());
                                let pass = residual_trivial
                                    || eval_predicate(
                                        &residual,
                                        &EvalCtx::plain(&combined, &row, &binds),
                                    )?;
                                if pass {
                                    matched = true;
                                    match kind {
                                        JoinKind::Inner | JoinKind::LeftOuter => out.push(row),
                                        JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                                    }
                                }
                            }
                        }
                        match kind {
                            JoinKind::LeftOuter if !matched => {
                                let mut row = lr;
                                row.extend(std::iter::repeat_n(Value::Null, right_width));
                                out.push(row);
                            }
                            JoinKind::LeftSemi if matched => out.push(lr),
                            JoinKind::LeftAnti if !matched => out.push(lr),
                            _ => {}
                        }
                    }
                    Ok(())
                })?;
                Ok((out, pipe.stats()))
            },
        )?;
        let tagged: Vec<(usize, Vec<OpStats>)> =
            results.iter().map(|(w, (_, s))| (*w, s.clone())).collect();
        // Probe chain occupies the slots right after the join node.
        self.absorb_workers(1, chain_count, &tagged);
        let (spread, max) =
            ExchangeOp::worker_spread(results.iter().map(|(w, (rows, _))| (*w, rows.len() as u64)));
        let mut total = 0usize;
        for (_, (rows, _)) in results {
            total += rows.len();
            check_gathered(&rows, self.out_cols.len(), "repartition gather")?;
            self.charge_gathered(&rows)?;
            self.pending.extend(rows);
        }
        self.synthesize_root(total, t.elapsed(), spread, max);
        Ok(())
    }

    /// Partial-aggregation mode: workers feed their morsels into
    /// thread-local [`GroupedAggState`]s; states merge in worker order
    /// and finish once (preserving scalar-on-empty semantics).
    fn run_partial_agg(
        &mut self,
        ctx: &ExecCtx<'_>,
        workers: usize,
        kind: GroupKind,
        input: &PhysExpr,
        group_cols: &[ColId],
        aggs: &[AggDef],
    ) -> Result<()> {
        let t = Instant::now();
        let build = match build_side(input) {
            Some(b) => {
                // run_build indexes trailing slots relative to the whole
                // subtree (aggregate + input), which is where the build
                // nodes sit in pre-order.
                Some(self.run_build(ctx, b)?)
            }
            None => None,
        };
        let in_cols = input.out_cols();
        let group_pos: Vec<usize> = group_cols
            .iter()
            .map(|c| {
                in_cols
                    .iter()
                    .position(|l| l == c)
                    .ok_or_else(|| Error::internal("partial-agg group column missing from layout"))
            })
            .collect::<Result<_>>()?;
        let align =
            input.node_count() - build_side(input).map_or(0, super::physical::PhysExpr::node_count);
        let ranges = worker_ranges(driving_len(input, ctx.catalog), workers);
        let plans: Vec<PhysExpr> = ranges
            .iter()
            .map(|r| substitute(input, r, build.as_ref()))
            .collect::<Result<_>>()?;
        let opts = self.pipe_options();
        let owned_aggs: Vec<AggDef> = aggs.to_vec();
        let owned_groups = group_pos.clone();
        let owned_in_cols = in_cols.clone();
        let gov = ctx.gov.clone();
        let results = scatter(
            ctx.shared_catalog.clone(),
            ctx.catalog,
            plans,
            move |plan, catalog: &Catalog| {
                let mut pipe = Pipeline::with_options(&plan, opts)?;
                pipe.set_governor(gov.clone());
                let binds = Bindings::new();
                let mut state = GroupedAggState::new(&owned_aggs);
                // Each task's local state charges the shared pool; the
                // merged total is what a serial aggregate would hold.
                state.set_reservation(gov.reservation("PartialAgg"));
                pipe.execute_each(catalog, &binds, |b| {
                    for r in &b.into_rows() {
                        let key: Vec<Value> = owned_groups.iter().map(|&i| r[i].clone()).collect();
                        let args = owned_aggs
                            .iter()
                            .map(|a| {
                                a.arg
                                    .as_ref()
                                    .map(|e| eval(e, &EvalCtx::plain(&owned_in_cols, r, &binds)))
                                    .transpose()
                            })
                            .collect::<Result<Vec<_>>>()?;
                        // Worker-local group state is a hard-fail site:
                        // it cannot spill, so a refusal names the knob.
                        state
                            .feed(key, args)
                            .map_err(|e| e.with_hint("raise ORTHOPT_MEM_LIMIT / SET mem_limit"))?;
                    }
                    Ok(())
                })?;
                Ok((state, pipe.stats()))
            },
        )?;
        let tagged: Vec<(usize, Vec<OpStats>)> =
            results.iter().map(|(w, (_, s))| (*w, s.clone())).collect();
        // The input subtree sits right after the aggregate node.
        self.absorb_workers(1, align, &tagged);
        let (spread, max) = ExchangeOp::worker_spread(
            results
                .iter()
                .map(|(w, (state, _))| (*w, state.group_count() as u64)),
        );
        let mut merged: Option<GroupedAggState> = None;
        for (_, (state, _)) in results {
            match &mut merged {
                None => merged = Some(state),
                Some(m) => m
                    .merge(state)
                    .map_err(|e| e.with_hint("raise ORTHOPT_MEM_LIMIT / SET mem_limit"))?,
            }
        }
        let merged = merged.unwrap_or_else(|| GroupedAggState::new(aggs));
        // The merged state's peak covers every group the workers found:
        // merging re-charges vacant groups into the surviving state.
        let state_peak = merged.mem_peak();
        let rows = merged.finish(kind);
        self.synthesize_root(rows.len(), t.elapsed(), spread, max);
        {
            let mut stats = self.stats.borrow_mut();
            let slot = &mut stats[self.base];
            slot.mem_peak = slot.mem_peak.max(state_peak);
        }
        check_gathered(&rows, self.out_cols.len(), "partial-agg merge")?;
        self.charge_gathered(&rows)?;
        self.pending.extend(rows);
        Ok(())
    }
}

impl Operator for ExchangeOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.pending.clear();
        self.done = false;
        self.mem = ctx.gov.reservation("Exchange");
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.done {
            self.compute(ctx)?;
            self.done = true;
        }
        Ok(drain_pending(
            &mut self.pending,
            self.batch_size,
            &self.out_cols,
        ))
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_common::{DataType, TableId};
    use orthopt_ir::ScalarExpr;
    use orthopt_storage::{ColumnDef, TableDef};

    fn catalog(rows: i64) -> Catalog {
        let mut c = Catalog::new();
        let t = c
            .create_table(TableDef::new(
                "t",
                vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ],
                vec![vec![0]],
            ))
            .unwrap();
        c.table_mut(t)
            .insert_all((0..rows).map(|i| vec![Value::Int(i), Value::Int(i % 5)]))
            .unwrap();
        c
    }

    fn scan() -> PhysExpr {
        PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0, 1],
            cols: vec![ColId(1), ColId(2)],
        }
    }

    fn run_at(plan: &PhysExpr, catalog: &Catalog, n: usize) -> Vec<Row> {
        let mut p = Pipeline::compile(plan).unwrap();
        p.set_parallelism(n);
        p.execute(catalog, &Bindings::new()).unwrap().rows
    }

    #[test]
    fn morsel_schedule_covers_every_row_once() {
        for (len, workers) in [(0, 4), (1, 4), (7, 2), (1024, 4), (4097, 3)] {
            let ranges = worker_ranges(len, workers);
            assert_eq!(ranges.len(), workers);
            let mut seen = vec![false; len];
            for r in ranges.iter().flatten() {
                for (i, s) in seen.iter_mut().enumerate().take(r.1).skip(r.0) {
                    assert!(!*s, "row {i} scheduled twice");
                    *s = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "unscheduled rows at len {len}");
        }
    }

    #[test]
    fn eligibility_grammar() {
        let filter = PhysExpr::Filter {
            input: Box::new(scan()),
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(2)), ScalarExpr::lit(1i64)),
        };
        assert!(exchange_eligible(&filter));
        let join = PhysExpr::HashJoin {
            kind: JoinKind::Inner,
            left: Box::new(scan()),
            right: Box::new(scan()),
            left_keys: vec![ColId(2)],
            right_keys: vec![ColId(2)],
            residual: ScalarExpr::lit(true),
        };
        assert!(exchange_eligible(&join));
        // Two joins on the driving path are out of grammar.
        let nested = PhysExpr::HashJoin {
            kind: JoinKind::Inner,
            left: Box::new(join.clone()),
            right: Box::new(scan()),
            left_keys: vec![ColId(2)],
            right_keys: vec![ColId(2)],
            residual: ScalarExpr::lit(true),
        };
        assert!(!exchange_eligible(&nested));
        // ...but a join below the *build* side is fine.
        let build_nested = PhysExpr::HashJoin {
            kind: JoinKind::Inner,
            left: Box::new(scan()),
            right: Box::new(join),
            left_keys: vec![ColId(2)],
            right_keys: vec![ColId(2)],
            residual: ScalarExpr::lit(true),
        };
        assert!(exchange_eligible(&build_nested));
    }

    #[test]
    fn parallel_scan_matches_serial_and_is_deterministic() {
        let c = catalog(1025);
        let plan = PhysExpr::Exchange {
            input: Box::new(scan()),
        };
        let serial = run_at(&plan, &c, 1);
        assert_eq!(serial.len(), 1025);
        for n in [2, 3, 4] {
            let par = run_at(&plan, &c, n);
            // Gathering is worker-major over a static schedule, so even
            // the order is reproducible; the multiset trivially matches.
            assert_eq!(
                par,
                run_at(&plan, &c, n),
                "parallelism {n} not deterministic"
            );
            let mut a = serial.clone();
            let mut b = par;
            a.sort_by(orthopt_common::row::cmp_rows);
            b.sort_by(orthopt_common::row::cmp_rows);
            assert_eq!(a, b, "parallelism {n} changed the result");
        }
    }

    #[test]
    fn repartition_join_matches_serial() {
        let c = catalog(123);
        let join = PhysExpr::HashJoin {
            kind: JoinKind::Inner,
            left: Box::new(scan()),
            right: Box::new(PhysExpr::TableScan {
                table: TableId(0),
                positions: vec![0, 1],
                cols: vec![ColId(3), ColId(4)],
            }),
            left_keys: vec![ColId(2)],
            right_keys: vec![ColId(4)],
            residual: ScalarExpr::lit(true),
        };
        let plan = PhysExpr::Exchange {
            input: Box::new(join),
        };
        let mut serial = run_at(&plan, &c, 1);
        let mut par = run_at(&plan, &c, 4);
        assert_eq!(serial.len(), par.len());
        serial.sort_by(orthopt_common::row::cmp_rows);
        par.sort_by(orthopt_common::row::cmp_rows);
        assert_eq!(serial, par);
    }

    #[test]
    fn partial_aggregation_matches_serial() {
        use orthopt_ir::{AggFunc, ColumnMeta};
        let c = catalog(1024);
        let agg = PhysExpr::HashAggregate {
            kind: GroupKind::Vector,
            input: Box::new(scan()),
            group_cols: vec![ColId(2)],
            aggs: vec![
                AggDef::new(
                    ColumnMeta::new(ColId(10), "n", DataType::Int, false),
                    AggFunc::CountStar,
                    None,
                ),
                AggDef::new(
                    ColumnMeta::new(ColId(11), "s", DataType::Int, true),
                    AggFunc::Sum,
                    Some(ScalarExpr::col(ColId(1))),
                ),
            ],
        };
        let plan = PhysExpr::Exchange {
            input: Box::new(agg),
        };
        let mut serial = run_at(&plan, &c, 1);
        let mut par = run_at(&plan, &c, 4);
        serial.sort_by(orthopt_common::row::cmp_rows);
        par.sort_by(orthopt_common::row::cmp_rows);
        assert_eq!(serial, par);
        assert_eq!(serial.len(), 5);
    }

    #[test]
    fn scalar_aggregate_on_empty_table_stays_scalar() {
        use orthopt_ir::{AggFunc, ColumnMeta};
        let c = catalog(0);
        let agg = PhysExpr::HashAggregate {
            kind: GroupKind::Scalar,
            input: Box::new(scan()),
            group_cols: vec![],
            aggs: vec![AggDef::new(
                ColumnMeta::new(ColId(10), "n", DataType::Int, false),
                AggFunc::CountStar,
                None,
            )],
        };
        let plan = PhysExpr::Exchange {
            input: Box::new(agg),
        };
        assert_eq!(run_at(&plan, &c, 4), vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn stats_slots_cover_the_subtree() {
        let c = catalog(100);
        let plan = PhysExpr::Exchange {
            input: Box::new(PhysExpr::Filter {
                input: Box::new(scan()),
                predicate: ScalarExpr::eq(ScalarExpr::col(ColId(2)), ScalarExpr::lit(1i64)),
            }),
        };
        let mut p = Pipeline::compile(&plan).unwrap();
        assert_eq!(p.node_count(), 3); // exchange + filter + scan
        p.set_parallelism(4);
        p.execute(&c, &Bindings::new()).unwrap();
        let stats = p.stats();
        assert_eq!(stats[2].rows, 100, "scan rows summed across workers");
        assert_eq!(stats[1].rows, 20, "filter rows summed across workers");
        assert!(stats[2].workers > 0, "worker counters merged");
    }
}
