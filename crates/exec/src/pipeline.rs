//! Streaming pull-based execution pipeline.
//!
//! [`Pipeline::compile`] turns a [`PhysExpr`] tree into a tree of
//! [`Operator`]s driven Volcano-style: `open` resets state,
//! `next_batch` pulls up to [`DEFAULT_BATCH_SIZE`] rows at a time, and
//! `close` reports [`OpStats`]. Column layouts are compiled once into
//! `Rc<[ColId]>` plus positional indices, so batches flow between
//! operators without re-resolving columns or deep-cloning layouts.
//!
//! Pipeline breakers (hash-join build, aggregation, sort) keep state
//! across batches. Parameterized scopes (`ApplyLoop` inner plans,
//! `SegmentExec` inner plans) are *rebound and rewound*: the parent
//! re-`open`s the inner subtree per outer row / per segment. At compile
//! time a free-variable analysis finds inner subtrees that reference no
//! outer parameter and no outer segment; those are wrapped in a
//! [`CacheOp`] that materializes once and replays on every rewind, and
//! stable hash-join builds / nested-loop inner sides are kept across
//! re-opens.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use orthopt_common::column::{
    cols_bytes, columns_to_rows, rows_to_columns, Bitmap, ColData, Column, ColumnData,
};
use orthopt_common::row::rows_bytes;
use orthopt_common::{ColId, Error, MemoryReservation, QueryContext, Result, Row, TableId, Value};
use orthopt_ir::{AggDef, ApplyKind, GroupKind, JoinKind, ScalarExpr};
use orthopt_storage::Catalog;

use crate::aggregate::{FeedOutcome, GroupedAggState};
use crate::bindings::Bindings;
use crate::chunk::Chunk;
use crate::eval::{eval, eval_predicate, EvalCtx, PosMap};
use crate::physical::PhysExpr;
use crate::spill::{
    partition_of, SpillFile, SpillManager, SpillPartitions, SpillReader, FANOUT, MAX_SPILL_DEPTH,
};
use crate::stats::OpStats;
use crate::vector::{
    dedup_lanes, eval_column, hash_lanes, hash_values, keys_valid, lane_row, selected_true, VecEval,
};

/// Default maximum number of rows per batch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Hint attached to `ResourceExhausted` refusals at sites that cannot
/// degrade any further (spilling is already active, or the operator has
/// no disk fallback at all).
const MEM_HINT: &str = "raise ORTHOPT_MEM_LIMIT / SET mem_limit";

/// Hint attached to refusals at sites that *could* have spilled but had
/// spilling disabled.
const MEM_OR_SPILL_HINT: &str =
    "raise ORTHOPT_MEM_LIMIT / SET mem_limit, or enable spilling (SET spill = on)";

/// Physical representation of the data carried by a [`Batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum Repr {
    /// Row-major: one `Vec<Value>` per row.
    Rows(Vec<Row>),
    /// Column-major: one [`Column`] per layout position, all of length
    /// `len`.
    Columns {
        /// Per-column data, positionally matching the layout.
        columns: Vec<Column>,
        /// Row count, kept explicitly so zero-column batches still
        /// carry a length.
        len: usize,
    },
}

/// A bounded slice of rows flowing through the pipeline; the layout is
/// shared by reference with the producing operator. The payload is
/// either row-major or column-major ([`Repr`]); operators dispatch on
/// the representation they receive and may convert with
/// [`Batch::into_rows`] / [`Batch::to_columnar`].
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Column ids, positionally matching each row / column.
    pub cols: Rc<[ColId]>,
    /// The payload, row-major or column-major.
    pub repr: Repr,
}

impl Batch {
    /// Builds a row-major batch, checking row arity against the layout
    /// in debug builds.
    pub fn new(cols: Rc<[ColId]>, rows: Vec<Row>) -> Batch {
        debug_assert!(
            rows.iter().all(|r| r.len() == cols.len()),
            "batch arity mismatch: layout has {} columns",
            cols.len()
        );
        Batch {
            cols,
            repr: Repr::Rows(rows),
        }
    }

    /// Builds a column-major batch, checking column count and lengths
    /// in debug builds.
    pub fn from_columns(cols: Rc<[ColId]>, columns: Vec<Column>, len: usize) -> Batch {
        debug_assert_eq!(
            columns.len(),
            cols.len(),
            "batch arity mismatch: layout has {} columns",
            cols.len()
        );
        debug_assert!(
            columns.iter().all(|c| c.len() == len),
            "batch column length mismatch: expected {len} lanes"
        );
        Batch {
            cols,
            repr: Repr::Columns { columns, len },
        }
    }

    /// Checks that the layout and every row / column have exactly
    /// `width` columns. Stateful operators call this before
    /// concatenating a batch into their buffers: `Batch`'s fields are
    /// public, so a malformed literal can bypass the constructors'
    /// arity checks and would otherwise corrupt buffered state
    /// silently. Unlike those `debug_assert`s, this runs in release
    /// builds too and reports through [`Error::Internal`] rather than
    /// panicking — a malformed batch aborts the query, not the process.
    pub fn check_width(&self, width: usize) -> Result<()> {
        if self.cols.len() != width {
            return Err(Error::internal(format!(
                "batch layout width mismatch: expected {width} columns, layout has {}",
                self.cols.len()
            )));
        }
        match &self.repr {
            Repr::Rows(rows) => {
                if let Some(r) = rows.iter().find(|r| r.len() != width) {
                    return Err(Error::internal(format!(
                        "batch row arity mismatch: expected {width} columns, row has {}",
                        r.len()
                    )));
                }
            }
            Repr::Columns { columns, len } => {
                if columns.len() != width {
                    return Err(Error::internal(format!(
                        "batch column arity mismatch: expected {width} columns, got {}",
                        columns.len()
                    )));
                }
                if let Some(c) = columns.iter().find(|c| c.len() != *len) {
                    return Err(Error::internal(format!(
                        "batch column length mismatch: expected {len} lanes, column has {}",
                        c.len()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Rows(rows) => rows.len(),
            Repr::Columns { len, .. } => *len,
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the payload is column-major.
    pub fn is_columnar(&self) -> bool {
        matches!(self.repr, Repr::Columns { .. })
    }

    /// The column-major payload, or `None` for a row-major batch.
    pub fn columns(&self) -> Option<(&[Column], usize)> {
        match &self.repr {
            Repr::Columns { columns, len } => Some((columns, *len)),
            Repr::Rows(_) => None,
        }
    }

    /// Consumes the batch into row-major form, transposing a columnar
    /// payload. Operators that count bridges go through
    /// [`StatsHandle::bridge_rows`] instead.
    pub fn into_rows(self) -> Vec<Row> {
        match self.repr {
            Repr::Rows(rows) => rows,
            Repr::Columns { columns, len } => columns_to_rows(&columns, len),
        }
    }

    /// Consumes the batch into column-major form, transposing a
    /// row-major payload.
    pub fn into_columns(self) -> (Vec<Column>, usize) {
        let width = self.cols.len();
        match self.repr {
            Repr::Columns { columns, len } => (columns, len),
            Repr::Rows(rows) => {
                let len = rows.len();
                (rows_to_columns(&rows, width), len)
            }
        }
    }

    /// Returns the batch in column-major form (no-op when it already
    /// is).
    pub fn to_columnar(self) -> Batch {
        let cols = self.cols.clone();
        let (columns, len) = self.into_columns();
        Batch::from_columns(cols, columns, len)
    }

    /// Bytes charged against memory reservations for this batch.
    /// Columnar batches charge exactly what the equivalent rows would
    /// ([`cols_bytes`] mirrors [`rows_bytes`]), so budget trips do not
    /// depend on the representation that happened to flow.
    pub fn mem_bytes(&self) -> u64 {
        match &self.repr {
            Repr::Rows(rows) => rows_bytes(rows),
            Repr::Columns { columns, len } => cols_bytes(columns, *len),
        }
    }
}

/// A cheap clonable handle onto one operator's [`OpStats`] slot.
/// Operators use it to count vectorized kernel invocations
/// (`kernels`) and columnar→row bridge conversions (`bridged`) without
/// holding a borrow on the shared registry.
#[derive(Clone)]
pub(crate) struct StatsHandle {
    stats: Rc<RefCell<Vec<OpStats>>>,
    id: usize,
}

impl StatsHandle {
    pub(crate) fn new(stats: Rc<RefCell<Vec<OpStats>>>, id: usize) -> StatsHandle {
        StatsHandle { stats, id }
    }

    /// Counts one vectorized kernel invocation.
    fn note_kernel(&self) {
        self.stats.borrow_mut()[self.id].kernels += 1;
    }

    /// Counts one columnar→row bridge conversion.
    fn note_bridge(&self) {
        self.stats.borrow_mut()[self.id].bridged += 1;
    }

    /// Counts one distinct correlation binding actually executed (a
    /// binding-cache miss in `BatchedApply`/`IndexLookupJoin`).
    fn note_distinct_binding(&self) {
        self.stats.borrow_mut()[self.id].distinct_bindings += 1;
    }

    /// Counts one hash-index probe issued by `IndexLookupJoin`.
    fn note_index_probe(&self) {
        self.stats.borrow_mut()[self.id].index_probes += 1;
    }

    /// Records spill activity: partition files written and the bytes
    /// that went to disk.
    fn note_spill(&self, partitions: u64, bytes: u64) {
        let mut stats = self.stats.borrow_mut();
        let s = &mut stats[self.id];
        s.spill_partitions += partitions;
        s.spilled_bytes += bytes;
    }

    /// Max-folds a memory peak into the slot (used by operators that
    /// are not themselves metered nodes, e.g. the rewind cache).
    fn note_mem_peak(&self, peak: u64) {
        let mut stats = self.stats.borrow_mut();
        let s = &mut stats[self.id];
        s.mem_peak = s.mem_peak.max(peak);
    }

    /// Converts a batch to rows, counting a bridge when it was
    /// columnar. This is the accounting boundary row-only operators
    /// pull batches through.
    fn bridge_rows(&self, b: Batch) -> Vec<Row> {
        if b.is_columnar() {
            self.note_bridge();
        }
        b.into_rows()
    }
}

/// Everything an operator needs at run time: the catalog plus the
/// current parameter bindings (shared so parameterized parents can
/// rebind between re-opens).
pub struct ExecCtx<'a> {
    /// The database.
    pub catalog: &'a Catalog,
    /// Scalar parameters and segment stack.
    pub binds: Rc<RefCell<Bindings>>,
    /// Worker-pool size exchange operators may fan out to (1 = serial).
    pub parallelism: usize,
    /// Per-query resource governance (memory budget + cancellation);
    /// ungoverned by default.
    pub gov: QueryContext,
    /// Shared-ownership handle on the same catalog, when the caller has
    /// one (the `Database`/session path). Exchange operators need it to
    /// hand `'static` tasks to the process-wide
    /// [`Scheduler`](crate::scheduler::Scheduler); without it they fall
    /// back to per-query scoped threads.
    pub shared_catalog: Option<Arc<Catalog>>,
    /// This execution's spill scope. Created fresh per execution and
    /// dropped when it ends, so partition files never outlive the query
    /// — including on error, cancellation, and panic paths (unwinding
    /// drops the context). Inner scopes (`ApplyLoop`, `BatchedApply`,
    /// `SegmentExec`) share the parent's scope.
    pub spill: Rc<SpillManager>,
}

impl<'a> ExecCtx<'a> {
    /// A context over fresh bindings, serial and ungoverned by default.
    pub fn new(catalog: &'a Catalog, binds: Bindings) -> ExecCtx<'a> {
        ExecCtx {
            catalog,
            binds: Rc::new(RefCell::new(binds)),
            parallelism: 1,
            gov: QueryContext::default(),
            shared_catalog: None,
            spill: Rc::new(SpillManager::new()),
        }
    }
}

thread_local! {
    /// `(pre-order id, operator name)` of the operator most recently
    /// entered on this thread — consulted by panic handlers to attach
    /// an operator path to converted panics.
    static CURRENT_OP: Cell<Option<(usize, &'static str)>> = const { Cell::new(None) };
}

/// The `(pre-order id, name)` of the operator most recently entered on
/// the calling thread, if any. Panic-isolation boundaries read this to
/// blame the operator a caught panic unwound out of.
pub fn current_op() -> Option<(usize, &'static str)> {
    CURRENT_OP.with(Cell::get)
}

pub(crate) fn note_current_op(id: usize, name: &'static str) {
    CURRENT_OP.with(|c| c.set(Some((id, name))));
}

/// A streaming physical operator.
///
/// Lifecycle: `open` (re)initializes state — it may be called again
/// after exhaustion to rewind, possibly under different parameter
/// bindings; `next_batch` returns `None` once exhausted; `close`
/// reports the stats accumulated since the pipeline started.
pub trait Operator {
    /// (Re)initializes the operator; called before the first
    /// `next_batch` and again on every rewind.
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()>;
    /// Produces the next batch, or `None` when exhausted.
    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>>;
    /// Reports accumulated stats (meaningful on metered nodes).
    fn close(&mut self) -> OpStats {
        OpStats::default()
    }
    /// Peak bytes held by this operator's memory reservation; 0 for
    /// non-buffering operators.
    fn mem_peak(&self) -> u64 {
        0
    }
}

type BoxOp = Box<dyn Operator>;

/// Compile-time knobs for a [`Pipeline`]. Session-scoped settings that
/// must be baked into the compiled operators (rather than read from
/// process-global state at execution time) live here, so two sessions
/// with different settings can run concurrently in one process.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Rows per batch (min 1).
    pub batch_size: usize,
    /// Columnar-scan toggle for this pipeline; `None` defers to the
    /// process-global [`columnar_enabled`](crate::columnar_enabled).
    pub columnar: Option<bool>,
    /// Spill-to-disk toggle for this pipeline; `None` defers to the
    /// process-global [`spill_enabled`](crate::spill::spill_enabled).
    /// When off, refused reservations fail with a hinted
    /// `ResourceExhausted` instead of degrading.
    pub spill: Option<bool>,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            batch_size: DEFAULT_BATCH_SIZE,
            columnar: None,
            spill: None,
        }
    }
}

/// A compiled streaming plan plus its stats registry.
pub struct Pipeline {
    root: BoxOp,
    cols: Rc<[ColId]>,
    stats: Rc<RefCell<Vec<OpStats>>>,
    cached: Vec<usize>,
    batch_size: usize,
    parallelism: usize,
    gov: QueryContext,
    shared_catalog: Option<Arc<Catalog>>,
}

impl Pipeline {
    /// Compiles a physical plan with the default batch size.
    pub fn compile(plan: &PhysExpr) -> Result<Pipeline> {
        Pipeline::with_batch_size(plan, DEFAULT_BATCH_SIZE)
    }

    /// Compiles a physical plan with an explicit batch size (min 1).
    pub fn with_batch_size(plan: &PhysExpr, batch_size: usize) -> Result<Pipeline> {
        Pipeline::with_options(
            plan,
            PipelineOptions {
                batch_size,
                ..PipelineOptions::default()
            },
        )
    }

    /// Compiles a physical plan with explicit [`PipelineOptions`].
    pub fn with_options(plan: &PhysExpr, opts: PipelineOptions) -> Result<Pipeline> {
        let columnar = opts.columnar.unwrap_or_else(crate::columnar_enabled);
        let spill = opts.spill.unwrap_or_else(crate::spill::spill_enabled);
        let mut c = Compiler {
            batch_size: opts.batch_size.max(1),
            stats: Rc::new(RefCell::new(Vec::new())),
            next_id: 0,
            cached: Vec::new(),
            columnar,
            spill,
        };
        let root = c.compile(plan, false)?;
        Ok(Pipeline {
            root,
            cols: rc_cols(&plan.out_cols()),
            stats: c.stats,
            cached: c.cached,
            batch_size: opts.batch_size.max(1),
            parallelism: 1,
            gov: QueryContext::default(),
            shared_catalog: None,
        })
    }

    /// Installs a shared-ownership handle on the catalog this pipeline
    /// will execute against. When present, exchange operators dispatch
    /// worker tasks to the process-wide [`Scheduler`](crate::Scheduler)
    /// (capturing the `Arc`) instead of spawning per-query scoped
    /// threads. Executions must pass the same catalog.
    pub fn set_shared_catalog(&mut self, catalog: Arc<Catalog>) {
        self.shared_catalog = Some(catalog);
    }

    /// Sets the worker-pool size exchange operators fan out to on the
    /// next execution (min 1; plans without `Exchange` nodes ignore it).
    pub fn set_parallelism(&mut self, n: usize) {
        self.parallelism = n.max(1);
    }

    /// The configured worker-pool size.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Installs the per-query governance context (memory budget and
    /// cancellation token) used by subsequent executions. The default
    /// context is ungoverned.
    pub fn set_governor(&mut self, gov: QueryContext) {
        self.gov = gov;
    }

    /// The installed governance context.
    pub fn governor(&self) -> &QueryContext {
        &self.gov
    }

    /// Runs the pipeline to completion, materializing the result.
    /// Stats are reset at the start of each execution.
    pub fn execute(&mut self, catalog: &Catalog, binds: &Bindings) -> Result<Chunk> {
        let mut rows = Vec::new();
        self.execute_each(catalog, binds, |b| {
            rows.extend(b.into_rows());
            Ok(())
        })?;
        Ok(Chunk::new(self.cols.to_vec(), rows))
    }

    /// Runs the pipeline to completion, handing each produced batch to
    /// `f` instead of materializing — the streaming entry point the
    /// exchange runtime drives worker pipelines through. Stats are
    /// reset at the start of each execution.
    pub fn execute_each(
        &mut self,
        catalog: &Catalog,
        binds: &Bindings,
        mut f: impl FnMut(Batch) -> Result<()>,
    ) -> Result<()> {
        for s in self.stats.borrow_mut().iter_mut() {
            *s = OpStats::default();
        }
        let ctx = ExecCtx {
            catalog,
            binds: Rc::new(RefCell::new(binds.clone())),
            parallelism: self.parallelism,
            gov: self.gov.clone(),
            shared_catalog: self.shared_catalog.clone(),
            // A fresh spill scope per execution; dropping `ctx` at the
            // end of this call removes its temp directory, success or
            // not, so spill files cannot outlive the execution even
            // though the compiled pipeline itself is cached and reused.
            spill: Rc::new(SpillManager::new()),
        };
        let run = (|| {
            self.root.open(&ctx)?;
            while let Some(b) = self.root.next_batch(&ctx)? {
                b.check_width(self.cols.len())?;
                f(b)?;
            }
            Ok(())
        })();
        // Close unconditionally: stats (including memory peaks) must be
        // recorded and buffers released on the error path too, so the
        // pipeline is reusable after a budget trip or cancellation.
        self.root.close();
        run
    }

    /// Output layout of the root operator.
    pub fn out_cols(&self) -> &[ColId] {
        &self.cols
    }

    /// Per-operator stats, indexed by pre-order node id (the order
    /// `explain_phys` prints nodes in).
    pub fn stats(&self) -> Vec<OpStats> {
        self.stats.borrow().clone()
    }

    /// Pre-order ids of subtree roots that were compiled behind a
    /// one-time materialization cache.
    pub fn cached_nodes(&self) -> &[usize] {
        &self.cached
    }

    /// Number of operators in the compiled plan.
    pub fn node_count(&self) -> usize {
        self.stats.borrow().len()
    }

    /// The batch size the pipeline was compiled with.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }
}

fn rc_cols(cols: &[ColId]) -> Rc<[ColId]> {
    cols.into()
}

fn pos_of(layout: &[ColId], id: ColId) -> Result<usize> {
    layout
        .iter()
        .position(|c| *c == id)
        .ok_or_else(|| Error::internal(format!("column {id} missing from operator layout")))
}

/// Splits off up to `batch_size` rows from the front of `pending`.
pub(crate) fn drain_pending(
    pending: &mut Vec<Row>,
    batch_size: usize,
    cols: &Rc<[ColId]>,
) -> Option<Batch> {
    if pending.is_empty() {
        return None;
    }
    if pending.len() <= batch_size {
        return Some(Batch::new(cols.clone(), std::mem::take(pending)));
    }
    let rest = pending.split_off(batch_size);
    let head = std::mem::replace(pending, rest);
    Some(Batch::new(cols.clone(), head))
}

// ---------------------------------------------------------------------
// Free-variable analysis for rebind-and-rewind caching.
// ---------------------------------------------------------------------

/// What a subtree needs from its enclosing parameter scope.
#[derive(Debug, Default)]
pub(crate) struct FreeSet {
    /// Column ids resolved through outer bindings.
    cols: BTreeSet<ColId>,
    /// True if the subtree reads a segment bound outside it.
    segment: bool,
}

impl FreeSet {
    pub(crate) fn is_invariant(&self) -> bool {
        self.cols.is_empty() && !self.segment
    }

    fn union(mut self, other: FreeSet) -> FreeSet {
        self.cols.extend(other.cols);
        self.segment |= other.segment;
        self
    }

    /// Adds the references of `exprs` that `provided` does not supply.
    fn add_exprs<'e>(
        mut self,
        exprs: impl IntoIterator<Item = &'e ScalarExpr>,
        provided: &[ColId],
    ) -> FreeSet {
        for e in exprs {
            for c in e.cols() {
                if !provided.contains(&c) {
                    self.cols.insert(c);
                }
            }
        }
        self
    }
}

/// Computes the outer parameters and segments a subtree depends on.
/// A subtree with an empty [`FreeSet`] produces the same result on
/// every rewind, so its materialization can be cached.
pub(crate) fn free_inputs(p: &PhysExpr) -> FreeSet {
    match p {
        PhysExpr::TableScan { .. } | PhysExpr::ConstScan { .. } | PhysExpr::MorselScan { .. } => {
            FreeSet::default()
        }
        PhysExpr::Exchange { input } => free_inputs(input),
        PhysExpr::IndexSeek { probes, .. } => FreeSet::default().add_exprs(probes, &[]),
        PhysExpr::Filter { input, predicate } => {
            free_inputs(input).add_exprs([predicate], &input.out_cols())
        }
        PhysExpr::Compute { input, defs } => {
            free_inputs(input).add_exprs(defs.iter().map(|(_, e)| e), &input.out_cols())
        }
        PhysExpr::ProjectCols { input, .. }
        | PhysExpr::AssertMax1 { input }
        | PhysExpr::RowNumber { input, .. }
        | PhysExpr::Sort { input, .. }
        | PhysExpr::Limit { input, .. } => free_inputs(input),
        PhysExpr::HashJoin {
            left,
            right,
            residual,
            ..
        } => {
            let mut provided = left.out_cols();
            provided.extend(right.out_cols());
            free_inputs(left)
                .union(free_inputs(right))
                .add_exprs([residual], &provided)
        }
        PhysExpr::NLJoin {
            left,
            right,
            predicate,
            ..
        } => {
            let mut provided = left.out_cols();
            provided.extend(right.out_cols());
            free_inputs(left)
                .union(free_inputs(right))
                .add_exprs([predicate], &provided)
        }
        PhysExpr::ApplyLoop {
            left,
            right,
            params,
            ..
        }
        | PhysExpr::BatchedApply {
            left,
            right,
            params,
            ..
        } => {
            let mut inner = free_inputs(right);
            for p in params {
                inner.cols.remove(p);
            }
            free_inputs(left).union(inner)
        }
        PhysExpr::IndexLookupJoin {
            left,
            fetch_cols,
            probes,
            residual,
            params,
            ..
        } => {
            let mut inner = FreeSet::default()
                .add_exprs(probes.iter().chain(std::iter::once(residual)), fetch_cols);
            for p in params {
                inner.cols.remove(p);
            }
            free_inputs(left).union(inner)
        }
        PhysExpr::SegmentExec { input, inner, .. } => {
            // The inner plan's segment reads are bound by this node.
            let mut fin = free_inputs(inner);
            fin.segment = false;
            free_inputs(input).union(fin)
        }
        PhysExpr::SegmentScan { .. } => FreeSet {
            cols: BTreeSet::new(),
            segment: true,
        },
        PhysExpr::HashAggregate { input, aggs, .. } => free_inputs(input).add_exprs(
            aggs.iter().filter_map(|a| a.arg.as_ref()),
            &input.out_cols(),
        ),
        PhysExpr::Concat { left, right, .. } | PhysExpr::ExceptExec { left, right, .. } => {
            free_inputs(left).union(free_inputs(right))
        }
    }
}

// ---------------------------------------------------------------------
// Compiler.
// ---------------------------------------------------------------------

/// Short stable operator name used for cancellation blame, failpoint
/// sites (`faults::hit(name)` at every batch boundary), and panic
/// attribution.
pub(crate) fn op_name(p: &PhysExpr) -> &'static str {
    match p {
        PhysExpr::TableScan { .. } => "TableScan",
        PhysExpr::MorselScan { .. } => "MorselScan",
        PhysExpr::IndexSeek { .. } => "IndexSeek",
        PhysExpr::Filter { .. } => "Filter",
        PhysExpr::Compute { .. } => "Compute",
        PhysExpr::ProjectCols { .. } => "Project",
        PhysExpr::HashJoin { .. } => "HashJoin",
        PhysExpr::NLJoin { .. } => "NLJoin",
        PhysExpr::ApplyLoop { .. } => "ApplyLoop",
        PhysExpr::BatchedApply { .. } => "BatchedApply",
        PhysExpr::IndexLookupJoin { .. } => "IndexLookupJoin",
        PhysExpr::SegmentExec { .. } => "SegmentExec",
        PhysExpr::SegmentScan { .. } => "SegmentScan",
        PhysExpr::HashAggregate { .. } => "HashAggregate",
        PhysExpr::Concat { .. } => "Concat",
        PhysExpr::ExceptExec { .. } => "Except",
        PhysExpr::AssertMax1 { .. } => "Max1Row",
        PhysExpr::RowNumber { .. } => "RowNumber",
        PhysExpr::ConstScan { .. } => "ConstScan",
        PhysExpr::Sort { .. } => "Sort",
        PhysExpr::Limit { .. } => "Limit",
        PhysExpr::Exchange { .. } => "Exchange",
    }
}

struct Compiler {
    batch_size: usize,
    stats: Rc<RefCell<Vec<OpStats>>>,
    next_id: usize,
    cached: Vec<usize>,
    /// Resolved columnar toggle for this compilation (per-pipeline, so
    /// concurrent sessions with different settings don't race on the
    /// process-global flag).
    columnar: bool,
    /// Resolved spill toggle for this compilation (same per-pipeline
    /// reasoning as `columnar`).
    spill: bool,
}

impl Compiler {
    /// Compiles a subtree. `in_param` is true inside a rebind-and-rewind
    /// scope (an `ApplyLoop`/`SegmentExec` inner plan), where invariant
    /// subtrees get a one-time materialization cache.
    fn compile(&mut self, p: &PhysExpr, in_param: bool) -> Result<BoxOp> {
        let cacheable = in_param
            && !matches!(
                p,
                PhysExpr::TableScan { .. }
                    | PhysExpr::ConstScan { .. }
                    | PhysExpr::IndexSeek { .. }
                    | PhysExpr::SegmentScan { .. }
                    | PhysExpr::MorselScan { .. }
            )
            && free_inputs(p).is_invariant();
        if cacheable {
            let id = self.next_id;
            self.cached.push(id);
            // Children no longer need their own caches.
            let inner = self.compile_bare(p, false)?;
            return Ok(Box::new(CacheOp::new(
                inner,
                self.batch_size,
                StatsHandle::new(self.stats.clone(), id),
            )));
        }
        self.compile_bare(p, in_param)
    }

    fn compile_bare(&mut self, p: &PhysExpr, in_param: bool) -> Result<BoxOp> {
        let id = self.next_id;
        self.next_id += 1;
        self.stats.borrow_mut().push(OpStats::default());
        let bs = self.batch_size;
        let sh = StatsHandle::new(self.stats.clone(), id);
        let op: BoxOp = match p {
            PhysExpr::TableScan {
                table,
                positions,
                cols,
            } => Box::new(ScanOp {
                table: *table,
                positions: positions.clone(),
                cols: rc_cols(cols),
                cursor: 0,
                batch_size: bs,
                columnar: self.columnar,
                stats: sh.clone(),
            }),
            PhysExpr::IndexSeek {
                table,
                positions,
                cols,
                index_cols,
                probes,
            } => Box::new(SeekOp {
                table: *table,
                positions: positions.clone(),
                cols: rc_cols(cols),
                index_cols: index_cols.clone(),
                probes: probes.clone(),
                hits: Vec::new(),
                cursor: 0,
                batch_size: bs,
                columnar: self.columnar,
                stats: sh.clone(),
            }),
            PhysExpr::Filter { input, predicate } => {
                let in_layout = input.out_cols();
                Box::new(FilterOp {
                    cols: rc_cols(&in_layout),
                    pos: PosMap::new(&in_layout),
                    input: self.compile(input, in_param)?,
                    predicate: predicate.clone(),
                    stats: sh.clone(),
                })
            }
            PhysExpr::Compute { input, defs } => {
                let in_layout = input.out_cols();
                Box::new(ComputeOp {
                    in_cols: rc_cols(&in_layout),
                    pos: PosMap::new(&in_layout),
                    out_cols: rc_cols(&p.out_cols()),
                    input: self.compile(input, in_param)?,
                    defs: defs.clone(),
                    stats: sh.clone(),
                })
            }
            PhysExpr::ProjectCols { input, cols } => {
                let in_layout = input.out_cols();
                let positions = cols
                    .iter()
                    .map(|c| pos_of(&in_layout, *c))
                    .collect::<Result<_>>()?;
                Box::new(ProjectOp {
                    input: self.compile(input, in_param)?,
                    positions,
                    cols: rc_cols(cols),
                    stats: sh.clone(),
                })
            }
            PhysExpr::HashJoin {
                kind,
                left,
                right,
                left_keys,
                right_keys,
                residual,
            } => {
                let lout = left.out_cols();
                let rout = right.out_cols();
                let left_pos = left_keys
                    .iter()
                    .map(|c| pos_of(&lout, *c))
                    .collect::<Result<Vec<_>>>()?;
                let right_pos = right_keys
                    .iter()
                    .map(|c| pos_of(&rout, *c))
                    .collect::<Result<Vec<_>>>()?;
                let mut combined = lout.clone();
                combined.extend(rout.iter().copied());
                // Inside a parameterized scope an invariant build side
                // can keep its hash table across rewinds.
                let build_stable = in_param && free_inputs(right).is_invariant();
                Box::new(HashJoinOp {
                    kind: *kind,
                    left: self.compile(left, in_param)?,
                    right: self.compile(right, in_param && !build_stable)?,
                    left_pos,
                    right_pos,
                    residual: residual.clone(),
                    residual_trivial: residual.is_true(),
                    combined_pos: PosMap::new(&combined),
                    combined: rc_cols(&combined),
                    out_cols: rc_cols(&p.out_cols()),
                    right_width: rout.len(),
                    build_stable,
                    table: HashMap::new(),
                    build_mode: None,
                    build_parts: Vec::new(),
                    build_cols: Vec::new(),
                    build_index: HashMap::new(),
                    build_len: 0,
                    row_table_ready: false,
                    built: false,
                    out_queue: VecDeque::new(),
                    pending: Vec::new(),
                    left_done: false,
                    batch_size: bs,
                    mem: MemoryReservation::detached("HashJoin"),
                    // A stable build is kept across rewinds; grace
                    // partitions are consumed when joined, so spilling
                    // would break the rewind contract.
                    allow_spill: self.spill && !build_stable,
                    grace: None,
                    stats: sh.clone(),
                })
            }
            PhysExpr::NLJoin {
                kind,
                left,
                right,
                predicate,
            } => {
                let lout = left.out_cols();
                let rout = right.out_cols();
                let mut combined = lout.clone();
                combined.extend(rout.iter().copied());
                let right_stable = in_param && free_inputs(right).is_invariant();
                Box::new(NLJoinOp {
                    kind: *kind,
                    left: self.compile(left, in_param)?,
                    right: self.compile(right, in_param && !right_stable)?,
                    predicate: predicate.clone(),
                    combined_pos: PosMap::new(&combined),
                    combined: rc_cols(&combined),
                    out_cols: rc_cols(&p.out_cols()),
                    right_width: rout.len(),
                    right_stable,
                    right_rows: Vec::new(),
                    right_built: false,
                    pending: Vec::new(),
                    left_done: false,
                    batch_size: bs,
                    mem: MemoryReservation::detached("NLJoin"),
                    stats: sh.clone(),
                })
            }
            PhysExpr::ApplyLoop {
                kind,
                left,
                right,
                params,
            } => {
                let lout = left.out_cols();
                let param_pos: Vec<(ColId, usize)> = params
                    .iter()
                    .filter_map(|c| lout.iter().position(|l| l == c).map(|i| (*c, i)))
                    .collect();
                Box::new(ApplyLoopOp {
                    kind: *kind,
                    left: self.compile(left, in_param)?,
                    inner: self.compile(right, true)?,
                    param_pos,
                    right_width: right.out_cols().len(),
                    out_cols: rc_cols(&p.out_cols()),
                    inner_binds: Rc::new(RefCell::new(Bindings::new())),
                    pending: Vec::new(),
                    left_done: false,
                    batch_size: bs,
                    columnar: self.columnar,
                    stats: sh.clone(),
                })
            }
            PhysExpr::BatchedApply {
                kind,
                left,
                right,
                params,
            } => {
                let lout = left.out_cols();
                let param_pos: Vec<(ColId, usize)> = params
                    .iter()
                    .filter_map(|c| lout.iter().position(|l| l == c).map(|i| (*c, i)))
                    .collect();
                Box::new(BatchedApplyOp {
                    kind: *kind,
                    left: self.compile(left, in_param)?,
                    inner: self.compile(right, true)?,
                    param_pos,
                    right_width: right.out_cols().len(),
                    out_cols: rc_cols(&p.out_cols()),
                    inner_binds: Rc::new(RefCell::new(Bindings::new())),
                    cache: HashMap::new(),
                    degraded: false,
                    mem: MemoryReservation::detached("BatchedApply"),
                    pending: Vec::new(),
                    left_done: false,
                    batch_size: bs,
                    columnar: self.columnar,
                    stats: sh.clone(),
                })
            }
            PhysExpr::IndexLookupJoin {
                kind,
                left,
                table,
                positions,
                fetch_cols,
                index_cols,
                probes,
                residual,
                cols,
                params,
            } => {
                let lout = left.out_cols();
                let param_pos: Vec<(ColId, usize)> = params
                    .iter()
                    .filter_map(|c| lout.iter().position(|l| l == c).map(|i| (*c, i)))
                    .collect();
                let proj = cols
                    .iter()
                    .map(|c| pos_of(fetch_cols, *c))
                    .collect::<Result<Vec<_>>>()?;
                Box::new(IndexLookupJoinOp {
                    kind: *kind,
                    left: self.compile(left, in_param)?,
                    table: *table,
                    positions: positions.clone(),
                    fetch_cols: fetch_cols.clone(),
                    index_cols: index_cols.clone(),
                    probes: probes.clone(),
                    residual: residual.clone(),
                    proj,
                    param_pos,
                    right_width: cols.len(),
                    out_cols: rc_cols(&p.out_cols()),
                    inner_binds: Rc::new(RefCell::new(Bindings::new())),
                    cache: HashMap::new(),
                    degraded: false,
                    mem: MemoryReservation::detached("IndexLookupJoin"),
                    pending: Vec::new(),
                    left_done: false,
                    batch_size: bs,
                    columnar: self.columnar,
                    stats: sh.clone(),
                })
            }
            PhysExpr::SegmentExec {
                input,
                segment_cols,
                inner,
                out_cols,
            } => {
                let in_layout = input.out_cols();
                let seg_pos = segment_cols
                    .iter()
                    .map(|c| pos_of(&in_layout, *c))
                    .collect::<Result<Vec<_>>>()?;
                let inner_layout = inner.out_cols();
                let out_src = out_cols
                    .iter()
                    .map(|oc| {
                        if let Some(i) = segment_cols.iter().position(|c| c == oc) {
                            Ok(OutSrc::Seg(i))
                        } else {
                            pos_of(&inner_layout, *oc)
                                .map(OutSrc::Inner)
                                .map_err(|_| Error::internal("segment output column"))
                        }
                    })
                    .collect::<Result<Vec<_>>>()?;
                Box::new(SegmentExecOp {
                    input: self.compile(input, in_param)?,
                    inner: self.compile(inner, true)?,
                    seg_pos,
                    input_cols: in_layout,
                    out_src,
                    out_cols: rc_cols(out_cols),
                    inner_binds: Rc::new(RefCell::new(Bindings::new())),
                    segments: Vec::new(),
                    partitioned: false,
                    seg_cursor: 0,
                    pending: Vec::new(),
                    batch_size: bs,
                    columnar: self.columnar,
                    mem: MemoryReservation::detached("SegmentExec"),
                    stats: sh.clone(),
                })
            }
            PhysExpr::SegmentScan { cols } => Box::new(SegmentScanOp {
                cols: cols.clone(),
                out_cols: rc_cols(&p.out_cols()),
                segment: None,
                positions: Vec::new(),
                cursor: 0,
                batch_size: bs,
            }),
            PhysExpr::HashAggregate {
                kind,
                input,
                group_cols,
                aggs,
            } => {
                let in_layout = input.out_cols();
                let group_pos = group_cols
                    .iter()
                    .map(|c| pos_of(&in_layout, *c))
                    .collect::<Result<Vec<_>>>()?;
                Box::new(HashAggregateOp {
                    kind: *kind,
                    input: self.compile(input, in_param)?,
                    group_pos,
                    aggs: aggs.clone(),
                    in_pos: PosMap::new(&in_layout),
                    in_cols: rc_cols(&in_layout),
                    out_cols: rc_cols(&p.out_cols()),
                    state: None,
                    result: Vec::new(),
                    done: false,
                    batch_size: bs,
                    columnar: self.columnar,
                    allow_spill: self.spill,
                    spilled: None,
                    mem_peak: 0,
                    stats: sh.clone(),
                })
            }
            PhysExpr::Concat {
                left,
                right,
                cols,
                left_map,
                right_map,
            } => {
                let lout = left.out_cols();
                let rout = right.out_cols();
                let lpos = left_map
                    .iter()
                    .map(|c| pos_of(&lout, *c))
                    .collect::<Result<Vec<_>>>()?;
                let rpos = right_map
                    .iter()
                    .map(|c| pos_of(&rout, *c))
                    .collect::<Result<Vec<_>>>()?;
                Box::new(ConcatOp {
                    left: self.compile(left, in_param)?,
                    right: self.compile(right, in_param)?,
                    lpos,
                    rpos,
                    cols: rc_cols(cols),
                    on_right: false,
                    stats: sh.clone(),
                })
            }
            PhysExpr::ExceptExec {
                left,
                right,
                right_map,
            } => {
                let rout = right.out_cols();
                let rpos = right_map
                    .iter()
                    .map(|c| pos_of(&rout, *c))
                    .collect::<Result<Vec<_>>>()?;
                Box::new(ExceptOp {
                    left: self.compile(left, in_param)?,
                    right: self.compile(right, in_param)?,
                    rpos,
                    cols: rc_cols(&left.out_cols()),
                    counts: HashMap::new(),
                    built: false,
                    mem: MemoryReservation::detached("Except"),
                    stats: sh.clone(),
                })
            }
            PhysExpr::AssertMax1 { input } => Box::new(AssertMax1Op {
                cols: rc_cols(&input.out_cols()),
                input: self.compile(input, in_param)?,
                buffered: Vec::new(),
                done: false,
                mem: MemoryReservation::detached("Max1Row"),
                stats: sh.clone(),
            }),
            PhysExpr::RowNumber { input, .. } => Box::new(RowNumberOp {
                input: self.compile(input, in_param)?,
                out_cols: rc_cols(&p.out_cols()),
                counter: 0,
                stats: sh.clone(),
            }),
            PhysExpr::ConstScan { cols, rows } => Box::new(ConstScanOp {
                cols: rc_cols(cols),
                rows: Rc::new(rows.clone()),
                cursor: 0,
                batch_size: bs,
            }),
            PhysExpr::Sort { input, by } => {
                let in_layout = input.out_cols();
                let by_pos = by
                    .iter()
                    .map(|(c, desc)| Ok((pos_of(&in_layout, *c)?, *desc)))
                    .collect::<Result<Vec<_>>>()?;
                Box::new(SortOp {
                    input: self.compile(input, in_param)?,
                    by_pos,
                    cols: rc_cols(&in_layout),
                    buffered: Vec::new(),
                    sorted: false,
                    batch_size: bs,
                    mem: MemoryReservation::detached("Sort"),
                    allow_spill: self.spill,
                    runs: Vec::new(),
                    merge: None,
                    stats: sh.clone(),
                })
            }
            PhysExpr::Limit { input, n } => Box::new(LimitOp {
                cols: rc_cols(&input.out_cols()),
                input: self.compile(input, in_param)?,
                n: *n,
                buffered: Vec::new(),
                done: false,
                batch_size: bs,
                mem: MemoryReservation::detached("Limit"),
                stats: sh.clone(),
            }),
            PhysExpr::Exchange { input } => {
                // The subtree is not compiled here: the exchange runtime
                // builds per-worker pipelines at execution time. Reserve
                // one stats slot per subtree node so worker-side counters
                // land at the pre-order ids `explain_phys` prints.
                let count = input.node_count();
                let base = self.next_id;
                self.next_id += count;
                self.stats
                    .borrow_mut()
                    .extend(std::iter::repeat_with(OpStats::default).take(count));
                Box::new(crate::parallel::ExchangeOp::new(
                    (**input).clone(),
                    base,
                    self.stats.clone(),
                    bs,
                    self.columnar,
                    self.spill,
                ))
            }
            PhysExpr::MorselScan {
                table,
                positions,
                cols,
                ranges,
            } => Box::new(MorselScanOp {
                table: *table,
                positions: positions.clone(),
                cols: rc_cols(cols),
                ranges: ranges.clone(),
                range_idx: 0,
                cursor: 0,
                batch_size: bs,
                columnar: self.columnar,
                stats: sh.clone(),
            }),
        };
        Ok(Box::new(Metered {
            op,
            id,
            name: op_name(p),
            stats: self.stats.clone(),
        }))
    }
}

// ---------------------------------------------------------------------
// Instrumentation.
// ---------------------------------------------------------------------

/// Wraps an operator to record [`OpStats`] into the pipeline registry.
/// Also the per-operator governance boundary: every `next_batch` polls
/// the cancellation token and the (feature-gated) failpoint registry,
/// and notes the operator in thread-local state so panic handlers can
/// attach an operator path.
struct Metered {
    op: BoxOp,
    id: usize,
    name: &'static str,
    stats: Rc<RefCell<Vec<OpStats>>>,
}

impl Operator for Metered {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        note_current_op(self.id, self.name);
        let t = Instant::now();
        let r = self.op.open(ctx);
        let mut stats = self.stats.borrow_mut();
        let s = &mut stats[self.id];
        s.opens += 1;
        s.elapsed += t.elapsed();
        r
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        note_current_op(self.id, self.name);
        ctx.gov.check_cancelled(self.name)?;
        crate::faults::hit(self.name)?;
        let t = Instant::now();
        let r = self.op.next_batch(ctx);
        let mut stats = self.stats.borrow_mut();
        let s = &mut stats[self.id];
        s.elapsed += t.elapsed();
        match &r {
            Ok(Some(b)) => {
                s.batches += 1;
                s.rows += b.len() as u64;
            }
            // Exhaustion or failure: fold in the operator's memory peak
            // (close is not recursive, so this is where inner buffering
            // operators surface their reservation peaks).
            Ok(None) | Err(_) => s.mem_peak = s.mem_peak.max(self.op.mem_peak()),
        }
        r
    }

    fn close(&mut self) -> OpStats {
        self.op.close();
        let mut stats = self.stats.borrow_mut();
        let s = &mut stats[self.id];
        s.mem_peak = s.mem_peak.max(self.op.mem_peak());
        *s
    }
}

/// One-time materialization of a parameter-invariant subtree: drains
/// its input on first demand and replays the result on every rewind.
///
/// When the memory budget refuses the materialization, the cache *sheds*
/// instead of failing: buffered rows are released and the operator
/// degrades to a passthrough that re-executes its input on every rewind
/// — the pre-cache behavior, slower but correct.
struct CacheOp {
    input: BoxOp,
    filled: bool,
    /// Budget refusal during fill happened: operate as a passthrough.
    degraded: bool,
    cols: Option<Rc<[ColId]>>,
    rows: Vec<Row>,
    cursor: usize,
    batch_size: usize,
    mem: MemoryReservation,
    /// The cache is not itself a metered node — it records its peak
    /// (and any bridge conversions) into the cached subtree root's
    /// stats slot.
    stats: StatsHandle,
}

impl CacheOp {
    fn new(input: BoxOp, batch_size: usize, stats: StatsHandle) -> CacheOp {
        CacheOp {
            input,
            filled: false,
            degraded: false,
            cols: None,
            rows: Vec::new(),
            cursor: 0,
            batch_size,
            mem: MemoryReservation::detached("Cache"),
            stats,
        }
    }

    fn record_peak(&self) {
        self.stats.note_mem_peak(self.mem.peak());
    }
}

impl Operator for CacheOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.cursor = 0;
        if self.filled {
            return Ok(());
        }
        if self.degraded {
            // Passthrough mode: every rewind re-executes the input.
            self.rows.clear();
            return self.input.open(ctx);
        }
        self.mem = ctx.gov.reservation("Cache");
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.filled && !self.degraded {
            while let Some(b) = self.input.next_batch(ctx)? {
                b.check_width(b.cols.len())?;
                self.cols.get_or_insert_with(|| b.cols.clone());
                let charged =
                    crate::faults::hit("cache.fill").and_then(|()| self.mem.grow(b.mem_bytes()));
                match charged {
                    Ok(()) => self.rows.extend(self.stats.bridge_rows(b)),
                    Err(Error::ResourceExhausted { .. }) => {
                        // Shed: stream out what is buffered (plus the
                        // batch in hand), then abandon caching.
                        self.record_peak();
                        self.mem.reset();
                        self.degraded = true;
                        self.rows.extend(self.stats.bridge_rows(b));
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !self.degraded {
                self.filled = true;
                self.record_peak();
                self.input.close();
            }
        }
        if self.cursor < self.rows.len() {
            let cols = self
                .cols
                .clone()
                .ok_or_else(|| Error::internal("cache buffered rows without a layout"))?;
            let end = (self.cursor + self.batch_size).min(self.rows.len());
            let rows = self.rows[self.cursor..end].to_vec();
            self.cursor = end;
            return Ok(Some(Batch::new(cols, rows)));
        }
        if self.degraded {
            // Head drained; release it and stream the live input.
            if !self.rows.is_empty() {
                self.rows = Vec::new();
                self.cursor = 0;
            }
            return self.input.next_batch(ctx);
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------
// Leaf operators.
// ---------------------------------------------------------------------

struct ScanOp {
    table: TableId,
    positions: Vec<usize>,
    cols: Rc<[ColId]>,
    cursor: usize,
    batch_size: usize,
    /// Captured at compile time: emit zero-copy columnar slices of the
    /// table's columnar mirror instead of cloning rows. The toggle
    /// gates only the sources — everything downstream dispatches on
    /// the representation it receives.
    columnar: bool,
    stats: StatsHandle,
}

impl Operator for ScanOp {
    fn open(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let t = ctx.catalog.table(self.table);
        let total = t.rows().len();
        if self.cursor >= total {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(total);
        if self.columnar {
            let tcols = t.columns();
            let take = end - self.cursor;
            let out = self
                .positions
                .iter()
                .map(|&i| tcols[i].slice(self.cursor, take))
                .collect();
            self.cursor = end;
            self.stats.note_kernel();
            return Ok(Some(Batch::from_columns(self.cols.clone(), out, take)));
        }
        let rows = t.rows()[self.cursor..end]
            .iter()
            .map(|r| self.positions.iter().map(|&i| r[i].clone()).collect())
            .collect();
        self.cursor = end;
        Ok(Some(Batch::new(self.cols.clone(), rows)))
    }
}

/// Worker-local scan over a static set of row ranges (morsels); see
/// [`crate::parallel`] for how ranges are assigned.
struct MorselScanOp {
    table: TableId,
    positions: Vec<usize>,
    cols: Rc<[ColId]>,
    ranges: Vec<(usize, usize)>,
    range_idx: usize,
    cursor: usize,
    batch_size: usize,
    columnar: bool,
    stats: StatsHandle,
}

impl Operator for MorselScanOp {
    fn open(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.range_idx = 0;
        self.cursor = self.ranges.first().map_or(0, |r| r.0);
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let t = ctx.catalog.table(self.table);
        let total = t.rows().len();
        while let Some(&(_, end)) = self.ranges.get(self.range_idx) {
            let end = end.min(total);
            if self.cursor >= end {
                self.range_idx += 1;
                if let Some(&(start, _)) = self.ranges.get(self.range_idx) {
                    self.cursor = start;
                }
                continue;
            }
            let stop = (self.cursor + self.batch_size).min(end);
            if self.columnar {
                let tcols = t.columns();
                let take = stop - self.cursor;
                let out = self
                    .positions
                    .iter()
                    .map(|&i| tcols[i].slice(self.cursor, take))
                    .collect();
                self.cursor = stop;
                self.stats.note_kernel();
                return Ok(Some(Batch::from_columns(self.cols.clone(), out, take)));
            }
            let rows = t.rows()[self.cursor..stop]
                .iter()
                .map(|r| self.positions.iter().map(|&i| r[i].clone()).collect())
                .collect();
            self.cursor = stop;
            return Ok(Some(Batch::new(self.cols.clone(), rows)));
        }
        Ok(None)
    }
}

struct SeekOp {
    table: TableId,
    positions: Vec<usize>,
    cols: Rc<[ColId]>,
    index_cols: Vec<usize>,
    probes: Vec<ScalarExpr>,
    hits: Vec<usize>,
    cursor: usize,
    batch_size: usize,
    columnar: bool,
    stats: StatsHandle,
}

impl Operator for SeekOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.hits.clear();
        self.cursor = 0;
        let binds = ctx.binds.borrow();
        let empty_ctx = EvalCtx::plain(&[], &[], &binds);
        let mut key = Vec::with_capacity(self.probes.len());
        for probe in &self.probes {
            let v = eval(probe, &empty_ctx)?;
            if v.is_null() {
                // SQL equality never matches NULL: empty result.
                return Ok(());
            }
            key.push(v);
        }
        let t = ctx.catalog.table(self.table);
        let hits = t.index_lookup(&self.index_cols, &key).ok_or_else(|| {
            Error::internal(format!(
                "missing index on {:?} of {}",
                self.index_cols, t.def.name
            ))
        })?;
        self.hits.extend_from_slice(hits);
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.cursor >= self.hits.len() {
            return Ok(None);
        }
        let t = ctx.catalog.table(self.table);
        let end = (self.cursor + self.batch_size).min(self.hits.len());
        if self.columnar {
            let tcols = t.columns();
            let idx = &self.hits[self.cursor..end];
            let out = self
                .positions
                .iter()
                .map(|&i| tcols[i].gather(idx))
                .collect();
            let take = idx.len();
            self.cursor = end;
            self.stats.note_kernel();
            return Ok(Some(Batch::from_columns(self.cols.clone(), out, take)));
        }
        let all = t.rows();
        let rows = self.hits[self.cursor..end]
            .iter()
            .map(|&rid| {
                let r = &all[rid];
                self.positions.iter().map(|&i| r[i].clone()).collect()
            })
            .collect();
        self.cursor = end;
        Ok(Some(Batch::new(self.cols.clone(), rows)))
    }
}

struct ConstScanOp {
    cols: Rc<[ColId]>,
    rows: Rc<Vec<Row>>,
    cursor: usize,
    batch_size: usize,
}

impl Operator for ConstScanOp {
    fn open(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }

    fn next_batch(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.cursor >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(self.rows.len());
        let rows = self.rows[self.cursor..end].to_vec();
        self.cursor = end;
        Ok(Some(Batch::new(self.cols.clone(), rows)))
    }
}

struct SegmentScanOp {
    cols: Vec<(ColId, ColId)>,
    out_cols: Rc<[ColId]>,
    segment: Option<Rc<Chunk>>,
    positions: Vec<usize>,
    cursor: usize,
    batch_size: usize,
}

impl Operator for SegmentScanOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.cursor = 0;
        let binds = ctx.binds.borrow();
        let segment = binds
            .current_segment()
            .ok_or_else(|| Error::internal("SegmentScan outside SegmentExec"))?
            .clone();
        self.positions = self
            .cols
            .iter()
            .map(|(_, src)| segment.require_pos(*src))
            .collect::<Result<_>>()?;
        self.segment = Some(segment);
        Ok(())
    }

    fn next_batch(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let Some(segment) = &self.segment else {
            return Ok(None);
        };
        if self.cursor >= segment.rows.len() {
            return Ok(None);
        }
        let end = (self.cursor + self.batch_size).min(segment.rows.len());
        let rows = segment.rows[self.cursor..end]
            .iter()
            .map(|r| self.positions.iter().map(|&i| r[i].clone()).collect())
            .collect();
        self.cursor = end;
        Ok(Some(Batch::new(self.out_cols.clone(), rows)))
    }
}

// ---------------------------------------------------------------------
// Row-at-a-time streaming operators.
// ---------------------------------------------------------------------

struct FilterOp {
    input: BoxOp,
    predicate: ScalarExpr,
    cols: Rc<[ColId]>,
    pos: PosMap,
    stats: StatsHandle,
}

impl Operator for FilterOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        loop {
            let Some(batch) = self.input.next_batch(ctx)? else {
                return Ok(None);
            };
            let binds = ctx.binds.borrow();
            // Vectorized path: evaluate the predicate over whole
            // columns and gather the selected lanes. Any kernel error
            // falls back to the row path on the whole batch, which
            // reproduces row-ordered error behavior.
            let mut vec_out = None;
            if let Some((columns, len)) = batch.columns() {
                let cx = VecEval {
                    cols: &self.cols,
                    pos: &self.pos,
                    columns,
                    len,
                    binds: &binds,
                };
                if let Ok(sel) = eval_column(&self.predicate, &cx).and_then(|p| selected_true(&p)) {
                    self.stats.note_kernel();
                    vec_out = Some(if sel.is_empty() {
                        None
                    } else if sel.len() == len {
                        Some(Batch::from_columns(
                            self.cols.clone(),
                            columns.to_vec(),
                            len,
                        ))
                    } else {
                        let out = columns.iter().map(|c| c.gather(&sel)).collect();
                        Some(Batch::from_columns(self.cols.clone(), out, sel.len()))
                    });
                }
            }
            match vec_out {
                Some(Some(out)) => return Ok(Some(out)),
                Some(None) => {}
                None => {
                    let mut kept = Vec::new();
                    for r in self.stats.bridge_rows(batch) {
                        if eval_predicate(
                            &self.predicate,
                            &EvalCtx::mapped(&self.cols, &self.pos, &r, &binds),
                        )? {
                            kept.push(r);
                        }
                    }
                    if !kept.is_empty() {
                        return Ok(Some(Batch::new(self.cols.clone(), kept)));
                    }
                }
            }
        }
    }
}

struct ComputeOp {
    input: BoxOp,
    defs: Vec<(ColId, ScalarExpr)>,
    in_cols: Rc<[ColId]>,
    pos: PosMap,
    out_cols: Rc<[ColId]>,
    stats: StatsHandle,
}

impl Operator for ComputeOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next_batch(ctx)? else {
            return Ok(None);
        };
        let binds = ctx.binds.borrow();
        // Vectorized path: each definition is one whole-column kernel
        // over the *input* layout (definitions never see each other),
        // appended to the carried-through input columns.
        let mut vec_out = None;
        if let Some((columns, len)) = batch.columns() {
            let cx = VecEval {
                cols: &self.in_cols,
                pos: &self.pos,
                columns,
                len,
                binds: &binds,
            };
            let computed: Result<Vec<Column>> =
                self.defs.iter().map(|(_, e)| eval_column(e, &cx)).collect();
            if let Ok(mut newc) = computed {
                let mut out = columns.to_vec();
                out.append(&mut newc);
                self.stats.note_kernel();
                vec_out = Some(Batch::from_columns(self.out_cols.clone(), out, len));
            }
        }
        if let Some(out) = vec_out {
            return Ok(Some(out));
        }
        let in_rows = self.stats.bridge_rows(batch);
        let mut rows = Vec::with_capacity(in_rows.len());
        for mut r in in_rows {
            // Evaluation sees only the input layout, so appending in
            // place is safe: lookups never index past `in_cols`.
            for (_, e) in &self.defs {
                let v = eval(e, &EvalCtx::mapped(&self.in_cols, &self.pos, &r, &binds))?;
                r.push(v);
            }
            rows.push(r);
        }
        Ok(Some(Batch::new(self.out_cols.clone(), rows)))
    }
}

struct ProjectOp {
    input: BoxOp,
    positions: Vec<usize>,
    cols: Rc<[ColId]>,
    stats: StatsHandle,
}

impl Operator for ProjectOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next_batch(ctx)? else {
            return Ok(None);
        };
        // Columnar projection is pure column selection: O(1) per
        // column (a shared-buffer handle clone), no per-row work.
        if let Some((columns, len)) = batch.columns() {
            let out = self.positions.iter().map(|&i| columns[i].clone()).collect();
            self.stats.note_kernel();
            return Ok(Some(Batch::from_columns(self.cols.clone(), out, len)));
        }
        let rows = batch
            .into_rows()
            .into_iter()
            .map(|r| self.positions.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Some(Batch::new(self.cols.clone(), rows)))
    }
}

struct RowNumberOp {
    input: BoxOp,
    out_cols: Rc<[ColId]>,
    counter: i64,
    stats: StatsHandle,
}

impl Operator for RowNumberOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.counter = 0;
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next_batch(ctx)? else {
            return Ok(None);
        };
        if batch.is_columnar() {
            let (mut columns, len) = batch.into_columns();
            let start = self.counter;
            self.counter += len as i64;
            columns.push(Column::from_data(ColumnData {
                data: ColData::Int((start..self.counter).collect()),
                validity: Bitmap::new_valid(len),
            }));
            self.stats.note_kernel();
            return Ok(Some(Batch::from_columns(
                self.out_cols.clone(),
                columns,
                len,
            )));
        }
        let mut rows = batch.into_rows();
        for r in &mut rows {
            r.push(Value::Int(self.counter));
            self.counter += 1;
        }
        Ok(Some(Batch::new(self.out_cols.clone(), rows)))
    }
}

// ---------------------------------------------------------------------
// Joins.
// ---------------------------------------------------------------------

/// Extracts a join key; `None` when any key value is NULL (SQL equality
/// never matches NULL).
fn join_key(row: &[Value], positions: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(positions.len());
    for &i in positions {
        if row[i].is_null() {
            return None;
        }
        key.push(row[i].clone());
    }
    Some(key)
}

/// Disk-resident state of a grace hash join: both sides partitioned by
/// the (fixed-key) join-key hash, joined pair by pair. Partition files
/// are consumed as their pair is processed; everything left over is
/// reclaimed when the operator (or the execution's spill scope) drops.
struct GraceJoin {
    /// Level-0 build partitions, while the build side drains.
    build: Option<SpillPartitions>,
    /// Sealed build partition files awaiting the probe side.
    build_files: Vec<SpillFile>,
    /// Level-0 probe partitions, while the probe side drains.
    probe: Option<SpillPartitions>,
    /// The probe side has been fully partitioned and `pairs` populated.
    sealed: bool,
    /// `(build, probe, level)` partition pairs still to join, processed
    /// from the back (pushed in reverse partition order, so partition 0
    /// is joined first — deterministic output order for a given budget).
    pairs: Vec<(SpillFile, SpillFile, usize)>,
}

/// Probes `rows` against a row-mode hash `table`, appending result rows
/// to `pending` with exactly the in-memory join's per-kind semantics.
/// Shared by [`HashJoinOp`]'s resident probe path and the grace join's
/// per-partition-pair probe.
#[allow(clippy::too_many_arguments)]
fn probe_rows_against(
    table: &HashMap<Vec<Value>, Vec<Row>>,
    kind: JoinKind,
    left_pos: &[usize],
    residual: &ScalarExpr,
    residual_trivial: bool,
    combined: &[ColId],
    combined_pos: &PosMap,
    right_width: usize,
    rows: Vec<Row>,
    binds: &Bindings,
    pending: &mut Vec<Row>,
) -> Result<()> {
    for lr in rows {
        let matches = join_key(&lr, left_pos).and_then(|k| table.get(&k));
        let mut matched = false;
        if let Some(rows) = matches {
            for rr in rows {
                let mut row = lr.clone();
                row.extend(rr.iter().cloned());
                let pass = residual_trivial
                    || eval_predicate(
                        residual,
                        &EvalCtx::mapped(combined, combined_pos, &row, binds),
                    )?;
                if pass {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => pending.push(row),
                        JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                    }
                }
            }
        }
        match kind {
            JoinKind::LeftOuter if !matched => {
                let mut row = lr;
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                pending.push(row);
            }
            JoinKind::LeftSemi if matched => pending.push(lr),
            JoinKind::LeftAnti if !matched => pending.push(lr),
            _ => {}
        }
    }
    Ok(())
}

struct HashJoinOp {
    kind: JoinKind,
    left: BoxOp,
    right: BoxOp,
    left_pos: Vec<usize>,
    right_pos: Vec<usize>,
    residual: ScalarExpr,
    residual_trivial: bool,
    combined: Rc<[ColId]>,
    combined_pos: PosMap,
    out_cols: Rc<[ColId]>,
    right_width: usize,
    /// Keep the hash table across rewinds (invariant build side inside
    /// a parameterized scope).
    build_stable: bool,
    /// Row-mode hash table (also materialized lazily from the columnar
    /// build when a row-repr probe batch needs it).
    table: HashMap<Vec<Value>, Vec<Row>>,
    /// `Some(true)` = columnar build, `Some(false)` = row build,
    /// `None` until the first build batch decides (an empty build side
    /// finishes columnar so columnar probes have columns to gather).
    build_mode: Option<bool>,
    /// Raw columnar build batches, concatenated when the build ends.
    build_parts: Vec<Vec<Column>>,
    /// Concatenated build-side columns (columnar mode).
    build_cols: Vec<Column>,
    /// Key hash → build lane indices, in build order. Lanes with NULL
    /// keys are absent (SQL equality never matches NULL).
    build_index: HashMap<u64, Vec<u32>>,
    build_len: usize,
    /// The row-mode `table` has been materialized from `build_cols`.
    row_table_ready: bool,
    built: bool,
    /// Finished output batches, ahead of `pending` in output order.
    out_queue: VecDeque<Batch>,
    pending: Vec<Row>,
    left_done: bool,
    batch_size: usize,
    mem: MemoryReservation,
    /// Degrade to a grace join on a refused build reservation (compiled
    /// from the pipeline's spill toggle; never set for stable builds).
    allow_spill: bool,
    /// Active grace-join state, once the build has overflowed to disk.
    grace: Option<GraceJoin>,
    stats: StatsHandle,
}

impl HashJoinOp {
    /// Concatenates the buffered columnar build batches and hashes the
    /// key columns into the lane index.
    fn finish_columnar_build(&mut self) {
        self.build_cols = (0..self.right_width)
            .map(|c| {
                let parts: Vec<Column> = self.build_parts.iter().map(|p| p[c].clone()).collect();
                Column::concat(&parts)
            })
            .collect();
        self.build_parts.clear();
        let key_cols: Vec<&Column> = self
            .right_pos
            .iter()
            .map(|&i| &self.build_cols[i])
            .collect();
        let hashes = hash_lanes(&key_cols, self.build_len);
        self.build_index.clear();
        for (j, &h) in hashes.iter().enumerate() {
            if !keys_valid(&key_cols, j) {
                continue;
            }
            self.build_index.entry(h).or_default().push(j as u32);
        }
        if self.build_len > 0 {
            self.stats.note_kernel();
        }
    }

    /// Lazily materializes the row-mode hash table from the columnar
    /// build, for row-repr probe batches and kernel-error fallback.
    /// Deliberately uncharged: the build bytes were already charged
    /// once, and charging the transpose could trip budgets the row
    /// engine would not.
    fn ensure_row_table(&mut self) {
        if self.row_table_ready || self.build_mode != Some(true) {
            return;
        }
        for j in 0..self.build_len {
            let rr = lane_row(&self.build_cols, j);
            if let Some(key) = join_key(&rr, &self.right_pos) {
                self.table.entry(key).or_default().push(rr);
            }
        }
        self.row_table_ready = true;
    }

    /// Moves buffered row output into the queue so columnar output
    /// pushed afterwards cannot overtake it.
    fn flush_pending(&mut self) {
        if !self.pending.is_empty() {
            self.out_queue.push_back(Batch::new(
                self.out_cols.clone(),
                std::mem::take(&mut self.pending),
            ));
        }
    }

    /// Vectorized probe of one columnar batch against the columnar
    /// build. Errors (kernel gaps, residual eval) make the caller fall
    /// back to the row path on the same batch.
    fn probe_columns(&mut self, b: &Batch, binds: &Bindings) -> Result<Batch> {
        let (columns, len) = b
            .columns()
            .ok_or_else(|| Error::internal("columnar probe of a row batch"))?;
        let key_cols: Vec<&Column> = self.left_pos.iter().map(|&i| &columns[i]).collect();
        let hashes = hash_lanes(&key_cols, len);
        // Candidate (probe lane, build lane) pairs, residual-filtered.
        // Lanes are visited in probe order and candidates in build
        // order, matching the row path's output order exactly.
        let mut pairs: Vec<(usize, u32)> = Vec::new();
        for (i, h) in hashes.iter().enumerate() {
            if !keys_valid(&key_cols, i) {
                continue;
            }
            let Some(cands) = self.build_index.get(h) else {
                continue;
            };
            let kvals: Vec<Value> = key_cols.iter().map(|c| c.value(i)).collect();
            for &j in cands {
                if self
                    .right_pos
                    .iter()
                    .zip(&kvals)
                    .all(|(&bi, v)| self.build_cols[bi].lane_eq(j as usize, v))
                {
                    pairs.push((i, j));
                }
            }
        }
        let kept = if self.residual_trivial || pairs.is_empty() {
            pairs
        } else {
            let pis: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let bis: Vec<usize> = pairs.iter().map(|p| p.1 as usize).collect();
            let mut comb: Vec<Column> = columns.iter().map(|c| c.gather(&pis)).collect();
            comb.extend(self.build_cols.iter().map(|c| c.gather(&bis)));
            let cx = VecEval {
                cols: &self.combined,
                pos: &self.combined_pos,
                columns: &comb,
                len: pairs.len(),
                binds,
            };
            let sel = selected_true(&eval_column(&self.residual, &cx)?)?;
            sel.into_iter().map(|k| pairs[k]).collect()
        };
        match self.kind {
            JoinKind::Inner => {
                let pis: Vec<usize> = kept.iter().map(|p| p.0).collect();
                let bis: Vec<usize> = kept.iter().map(|p| p.1 as usize).collect();
                let mut out: Vec<Column> = columns.iter().map(|c| c.gather(&pis)).collect();
                out.extend(self.build_cols.iter().map(|c| c.gather(&bis)));
                Ok(Batch::from_columns(self.out_cols.clone(), out, kept.len()))
            }
            JoinKind::LeftOuter => {
                // Walk probe lanes in order, interleaving each lane's
                // matches with a NULL-padded row for unmatched lanes.
                let mut ob: Vec<(usize, Option<usize>)> = Vec::new();
                let mut k = 0;
                for i in 0..len {
                    let start = k;
                    while k < kept.len() && kept[k].0 == i {
                        ob.push((i, Some(kept[k].1 as usize)));
                        k += 1;
                    }
                    if k == start {
                        ob.push((i, None));
                    }
                }
                let pis: Vec<usize> = ob.iter().map(|p| p.0).collect();
                let mut out: Vec<Column> = columns.iter().map(|c| c.gather(&pis)).collect();
                out.extend(self.build_cols.iter().map(|c| {
                    Column::from_values(
                        ob.iter()
                            .map(|&(_, j)| j.map_or(Value::Null, |j| c.value(j)))
                            .collect(),
                    )
                }));
                Ok(Batch::from_columns(self.out_cols.clone(), out, ob.len()))
            }
            JoinKind::LeftSemi | JoinKind::LeftAnti => {
                let mut matched = vec![false; len];
                for &(i, _) in &kept {
                    matched[i] = true;
                }
                let want = self.kind == JoinKind::LeftSemi;
                let sel: Vec<usize> = (0..len).filter(|&i| matched[i] == want).collect();
                let out: Vec<Column> = columns.iter().map(|c| c.gather(&sel)).collect();
                Ok(Batch::from_columns(self.out_cols.clone(), out, sel.len()))
            }
        }
    }

    fn probe_rows(&mut self, rows: Vec<Row>, binds: &Bindings) -> Result<()> {
        probe_rows_against(
            &self.table,
            self.kind,
            &self.left_pos,
            &self.residual,
            self.residual_trivial,
            &self.combined,
            &self.combined_pos,
            self.right_width,
            rows,
            binds,
            &mut self.pending,
        )
    }

    /// Probe-side width (the build side contributes `right_width`).
    fn left_width(&self) -> usize {
        self.combined.len() - self.right_width
    }

    /// Activates the grace join: the refused reservation's contents —
    /// everything buffered so far plus the batch that tripped the budget
    /// — are hash-partitioned to disk and the reservation is released.
    fn grace_start(&mut self, ctx: &ExecCtx<'_>, overflow: Batch) -> Result<()> {
        let mut parts = SpillPartitions::create(&ctx.spill, "hj-build", self.right_width)?;
        // Flush the buffered columnar build: concatenating first makes
        // the row count explicit even for zero-width layouts.
        if self.build_mode == Some(true) {
            self.finish_columnar_build();
            for j in 0..self.build_len {
                let rr = lane_row(&self.build_cols, j);
                if let Some(key) = join_key(&rr, &self.right_pos) {
                    parts.push(partition_of(hash_values(&key), 0), rr)?;
                }
                if j % 1024 == 1023 {
                    ctx.gov.check_cancelled("HashJoin")?;
                }
            }
            self.build_cols.clear();
            self.build_index.clear();
            self.build_len = 0;
        }
        // Flush the buffered row table (keys already non-NULL).
        for (key, rows) in std::mem::take(&mut self.table) {
            let p = partition_of(hash_values(&key), 0);
            for rr in rows {
                parts.push(p, rr)?;
            }
            ctx.gov.check_cancelled("HashJoin")?;
        }
        // The batch whose charge was refused.
        for rr in self.stats.bridge_rows(overflow) {
            if let Some(key) = join_key(&rr, &self.right_pos) {
                parts.push(partition_of(hash_values(&key), 0), rr)?;
            }
        }
        self.row_table_ready = false;
        // Grace probing is row-mode; keep columnar probes off the
        // vectorized path.
        self.build_mode = Some(false);
        // reset() releases the pool bytes but keeps the local peak for
        // stats.
        self.mem.reset();
        self.grace = Some(GraceJoin {
            build: Some(parts),
            build_files: Vec::new(),
            probe: None,
            sealed: false,
            pairs: Vec::new(),
        });
        ctx.gov.check_cancelled("HashJoin")
    }

    /// Routes one probe-side batch to the level-0 probe partitions.
    /// NULL-keyed probe rows never match, so their per-kind result is
    /// emitted immediately instead of being spilled.
    fn grace_probe_batch(&mut self, ctx: &ExecCtx<'_>, batch: Batch) -> Result<()> {
        let rows = self.stats.bridge_rows(batch);
        let width = self.left_width();
        let g = self
            .grace
            .as_mut()
            .expect("grace_probe_batch requires active grace state");
        if g.probe.is_none() {
            g.probe = Some(SpillPartitions::create(&ctx.spill, "hj-probe", width)?);
        }
        let parts = g.probe.as_mut().expect("probe partitions just ensured");
        for mut lr in rows {
            match join_key(&lr, &self.left_pos) {
                Some(key) => {
                    parts.push(partition_of(hash_values(&key), 0), lr)?;
                }
                None => match self.kind {
                    JoinKind::Inner | JoinKind::LeftSemi => {}
                    JoinKind::LeftOuter => {
                        lr.extend(std::iter::repeat_n(Value::Null, self.right_width));
                        self.pending.push(lr);
                    }
                    JoinKind::LeftAnti => self.pending.push(lr),
                },
            }
        }
        ctx.gov.check_cancelled("HashJoin")
    }

    /// Seals the probe partitions and forms the level-0 partition pairs
    /// (pushed in reverse so partition 0 is processed first).
    fn grace_seal_probe(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        let width = self.left_width();
        let g = self
            .grace
            .as_mut()
            .expect("grace_seal_probe requires active grace state");
        let probe = match g.probe.take() {
            Some(p) => p,
            // No keyed probe rows at all: partitions of nothing.
            None => SpillPartitions::create(&ctx.spill, "hj-probe", width)?,
        };
        let pfiles = probe.finish()?;
        let written: u64 = pfiles.iter().map(SpillFile::bytes).sum();
        let count = pfiles.iter().filter(|f| !f.is_empty()).count() as u64;
        self.stats.note_spill(count, written);
        let bfiles = std::mem::take(&mut g.build_files);
        for pair in bfiles.into_iter().zip(pfiles).rev() {
            g.pairs.push((pair.0, pair.1, 0));
        }
        g.sealed = true;
        Ok(())
    }

    /// Joins (or repartitions) one partition pair. Returns `false` when
    /// no pairs remain.
    fn grace_step(&mut self, ctx: &ExecCtx<'_>, binds: &Bindings) -> Result<bool> {
        let Some((mut bf, mut pf, level)) = self.grace.as_mut().and_then(|g| g.pairs.pop()) else {
            return Ok(false);
        };
        // An empty build partition cannot produce Inner/Semi output;
        // skip reading the probe partition entirely.
        if bf.is_empty() && matches!(self.kind, JoinKind::Inner | JoinKind::LeftSemi) {
            return Ok(true);
        }
        // Try to load this build partition into a resident table, under
        // the same reservation the in-memory build uses.
        let mut table: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        let mut charged = 0u64;
        let mut refusal: Option<Error> = None;
        {
            let mut r = bf.reader()?;
            while let Some(block) = r.next_block()? {
                let bytes = rows_bytes(&block);
                match self.mem.grow(bytes) {
                    Ok(()) => charged += bytes,
                    Err(e) => {
                        refusal = Some(e);
                        break;
                    }
                }
                for rr in block {
                    let key = join_key(&rr, &self.right_pos)
                        .ok_or_else(|| Error::internal("NULL key in grace build partition"))?;
                    table.entry(key).or_default().push(rr);
                }
                ctx.gov.check_cancelled("HashJoin")?;
            }
        }
        if let Some(err) = refusal {
            // Partition still too big: subdivide both files one level
            // deeper, up to the recursion cap.
            drop(table);
            self.mem.shrink(charged);
            let next = level + 1;
            if next >= MAX_SPILL_DEPTH {
                // Repartition depth exhausted: one partition is still
                // too big for the budget (e.g. one very hot key).
                return Err(err.with_hint(MEM_HINT));
            }
            let mut bparts = SpillPartitions::create(&ctx.spill, "hj-build", self.right_width)?;
            let mut r = bf.reader()?;
            while let Some(block) = r.next_block()? {
                for rr in block {
                    let key = join_key(&rr, &self.right_pos)
                        .ok_or_else(|| Error::internal("NULL key in grace build partition"))?;
                    bparts.push(partition_of(hash_values(&key), next), rr)?;
                }
                ctx.gov.check_cancelled("HashJoin")?;
            }
            drop(r);
            drop(bf);
            let mut pparts = SpillPartitions::create(&ctx.spill, "hj-probe", self.left_width())?;
            let mut r = pf.reader()?;
            while let Some(block) = r.next_block()? {
                for lr in block {
                    let key = join_key(&lr, &self.left_pos)
                        .ok_or_else(|| Error::internal("NULL key in grace probe partition"))?;
                    pparts.push(partition_of(hash_values(&key), next), lr)?;
                }
                ctx.gov.check_cancelled("HashJoin")?;
            }
            drop(r);
            drop(pf);
            let bfiles = bparts.finish()?;
            let pfiles = pparts.finish()?;
            let written: u64 = bfiles.iter().chain(&pfiles).map(SpillFile::bytes).sum();
            let count = bfiles
                .iter()
                .chain(&pfiles)
                .filter(|f| !f.is_empty())
                .count() as u64;
            self.stats.note_spill(count, written);
            let g = self.grace.as_mut().expect("grace state active");
            for pair in bfiles.into_iter().zip(pfiles).rev() {
                g.pairs.push((pair.0, pair.1, next));
            }
            return Ok(true);
        }
        // Table resident: stream the probe partition through it.
        let mut r = pf.reader()?;
        while let Some(block) = r.next_block()? {
            probe_rows_against(
                &table,
                self.kind,
                &self.left_pos,
                &self.residual,
                self.residual_trivial,
                &self.combined,
                &self.combined_pos,
                self.right_width,
                block,
                binds,
                &mut self.pending,
            )?;
            ctx.gov.check_cancelled("HashJoin")?;
        }
        drop(r);
        self.mem.shrink(charged);
        Ok(true)
    }
}

impl Operator for HashJoinOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.pending.clear();
        self.out_queue.clear();
        self.left_done = false;
        self.left.open(ctx)?;
        if !(self.build_stable && self.built) {
            self.table.clear();
            self.build_mode = None;
            self.build_parts.clear();
            self.build_cols.clear();
            self.build_index.clear();
            self.build_len = 0;
            self.row_table_ready = false;
            self.built = false;
            // Dropping stale grace state removes any leftover partition
            // files from a previous (errored) execution of this cached
            // pipeline.
            self.grace = None;
            // Fresh reservation: replacing the old one releases the
            // dropped table's bytes back to the pool.
            self.mem = ctx.gov.reservation("HashJoin");
            self.right.open(ctx)?;
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.built {
            // The first build batch decides the mode; later batches in
            // the other representation are converted. The per-batch
            // fault/charge order is identical in both modes so budget
            // trips and failpoints do not depend on the representation.
            while let Some(b) = self.right.next_batch(ctx)? {
                b.check_width(self.right_width)?;
                if let Some(g) = self.grace.as_mut() {
                    // Already degraded: the failpoint still fires
                    // (Panic / Error / SlowMs), but a refused
                    // allocation is moot on the disk path.
                    match crate::faults::hit("hashjoin.build") {
                        Err(Error::ResourceExhausted { .. }) => {}
                        r => r?,
                    }
                    let rows = self.stats.bridge_rows(b);
                    let parts = g.build.as_mut().expect("build partitions active");
                    for rr in rows {
                        if let Some(key) = join_key(&rr, &self.right_pos) {
                            parts.push(partition_of(hash_values(&key), 0), rr)?;
                        }
                    }
                    ctx.gov.check_cancelled("HashJoin")?;
                    continue;
                }
                match crate::faults::hit("hashjoin.build")
                    .and_then(|()| self.mem.grow(b.mem_bytes()))
                {
                    Ok(()) => {}
                    Err(e) => {
                        let refused = matches!(e, Error::ResourceExhausted { .. });
                        if refused && self.allow_spill {
                            self.grace_start(ctx, b)?;
                            continue;
                        }
                        return Err(e.with_hint(MEM_OR_SPILL_HINT));
                    }
                }
                let columnar = *self.build_mode.get_or_insert(b.is_columnar());
                if columnar {
                    let (columns, n) = b.into_columns();
                    self.build_len += n;
                    self.build_parts.push(columns);
                } else {
                    for rr in self.stats.bridge_rows(b) {
                        if let Some(key) = join_key(&rr, &self.right_pos) {
                            self.table.entry(key).or_default().push(rr);
                        }
                    }
                }
            }
            if let Some(g) = self.grace.as_mut() {
                let parts = g.build.take().expect("build partitions active");
                let files = parts.finish()?;
                let written: u64 = files.iter().map(SpillFile::bytes).sum();
                let count = files.iter().filter(|f| !f.is_empty()).count() as u64;
                self.stats.note_spill(count, written);
                g.build_files = files;
            } else if self.build_mode != Some(false) {
                // Columnar build — or an empty build side, finished
                // columnar so columnar probes have columns to gather.
                self.build_mode = Some(true);
                self.finish_columnar_build();
            }
            self.built = true;
        }
        loop {
            if let Some(b) = self.out_queue.pop_front() {
                return Ok(Some(b));
            }
            if self.grace.is_some() {
                // Grace probe phase: partition the probe side to disk,
                // then join partition pairs one step per iteration.
                if self.pending.len() >= self.batch_size {
                    if let Some(b) =
                        drain_pending(&mut self.pending, self.batch_size, &self.out_cols)
                    {
                        return Ok(Some(b));
                    }
                }
                if !self.left_done {
                    match self.left.next_batch(ctx)? {
                        None => self.left_done = true,
                        Some(batch) => self.grace_probe_batch(ctx, batch)?,
                    }
                    continue;
                }
                if !self.grace.as_ref().is_some_and(|g| g.sealed) {
                    self.grace_seal_probe(ctx)?;
                    continue;
                }
                let binds = ctx.binds.borrow().clone();
                if self.grace_step(ctx, &binds)? {
                    continue;
                }
                if let Some(b) = drain_pending(&mut self.pending, self.batch_size, &self.out_cols) {
                    return Ok(Some(b));
                }
                return Ok(None);
            }
            if self.pending.len() >= self.batch_size || self.left_done {
                if let Some(b) = drain_pending(&mut self.pending, self.batch_size, &self.out_cols) {
                    return Ok(Some(b));
                }
                if self.left_done {
                    return Ok(None);
                }
            }
            match self.left.next_batch(ctx)? {
                None => self.left_done = true,
                Some(batch) => {
                    let binds = ctx.binds.borrow().clone();
                    let mut handled = false;
                    if batch.is_columnar() && self.build_mode == Some(true) {
                        // On kernel gap or residual error, fall back to
                        // the row path on the whole batch, which
                        // reproduces row-ordered behavior.
                        if let Ok(out) = self.probe_columns(&batch, &binds) {
                            self.stats.note_kernel();
                            if !out.is_empty() {
                                self.flush_pending();
                                self.out_queue.push_back(out);
                            }
                            handled = true;
                        }
                    }
                    if !handled {
                        self.ensure_row_table();
                        let rows = self.stats.bridge_rows(batch);
                        self.probe_rows(rows, &binds)?;
                    }
                }
            }
        }
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

struct NLJoinOp {
    kind: JoinKind,
    left: BoxOp,
    right: BoxOp,
    predicate: ScalarExpr,
    combined: Rc<[ColId]>,
    combined_pos: PosMap,
    out_cols: Rc<[ColId]>,
    right_width: usize,
    /// Keep the materialized inner side across rewinds.
    right_stable: bool,
    right_rows: Vec<Row>,
    right_built: bool,
    pending: Vec<Row>,
    left_done: bool,
    batch_size: usize,
    mem: MemoryReservation,
    stats: StatsHandle,
}

impl NLJoinOp {
    fn probe_rows(&mut self, rows: Vec<Row>, binds: &Bindings) -> Result<()> {
        for lr in rows {
            let mut matched = false;
            for rr in &self.right_rows {
                let mut row = lr.clone();
                row.extend(rr.iter().cloned());
                if eval_predicate(
                    &self.predicate,
                    &EvalCtx::mapped(&self.combined, &self.combined_pos, &row, binds),
                )? {
                    matched = true;
                    match self.kind {
                        JoinKind::Inner | JoinKind::LeftOuter => self.pending.push(row),
                        JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                    }
                }
            }
            match self.kind {
                JoinKind::LeftOuter if !matched => {
                    let mut row = lr;
                    row.extend(std::iter::repeat_n(Value::Null, self.right_width));
                    self.pending.push(row);
                }
                JoinKind::LeftSemi if matched => self.pending.push(lr),
                JoinKind::LeftAnti if !matched => self.pending.push(lr),
                _ => {}
            }
        }
        Ok(())
    }
}

impl Operator for NLJoinOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.pending.clear();
        self.left_done = false;
        self.left.open(ctx)?;
        if !(self.right_stable && self.right_built) {
            self.right_rows.clear();
            self.right_built = false;
            self.mem = ctx.gov.reservation("NLJoin");
            self.right.open(ctx)?;
        }
        Ok(())
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.right_built {
            while let Some(b) = self.right.next_batch(ctx)? {
                b.check_width(self.right_width)?;
                crate::faults::hit("nljoin.build")
                    .and_then(|()| self.mem.grow(b.mem_bytes()))
                    .map_err(|e| e.with_hint(MEM_HINT))?;
                let rows = self.stats.bridge_rows(b);
                self.right_rows.extend(rows);
            }
            self.right_built = true;
        }
        while self.pending.len() < self.batch_size && !self.left_done {
            match self.left.next_batch(ctx)? {
                None => self.left_done = true,
                Some(batch) => {
                    let binds = ctx.binds.borrow().clone();
                    let rows = self.stats.bridge_rows(batch);
                    self.probe_rows(rows, &binds)?;
                }
            }
        }
        Ok(drain_pending(
            &mut self.pending,
            self.batch_size,
            &self.out_cols,
        ))
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

// ---------------------------------------------------------------------
// Parameterized (rebind-and-rewind) operators.
// ---------------------------------------------------------------------

struct ApplyLoopOp {
    kind: ApplyKind,
    left: BoxOp,
    inner: BoxOp,
    param_pos: Vec<(ColId, usize)>,
    right_width: usize,
    out_cols: Rc<[ColId]>,
    /// Private bindings the inner plan runs under; parameter slots are
    /// overwritten per outer row, then the inner subtree is re-opened.
    inner_binds: Rc<RefCell<Bindings>>,
    pending: Vec<Row>,
    left_done: bool,
    batch_size: usize,
    /// Transpose assembled output batches to columns so downstream
    /// vectorized operators stay on the kernel path (the apply loop
    /// itself is row-at-a-time by nature: it rebinds per outer row).
    columnar: bool,
    stats: StatsHandle,
}

impl Operator for ApplyLoopOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.inner_binds = Rc::new(RefCell::new(ctx.binds.borrow().clone()));
        self.pending.clear();
        self.left_done = false;
        self.left.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        while self.pending.len() < self.batch_size && !self.left_done {
            let Some(batch) = self.left.next_batch(ctx)? else {
                self.left_done = true;
                break;
            };
            let ictx = ExecCtx {
                catalog: ctx.catalog,
                binds: self.inner_binds.clone(),
                parallelism: ctx.parallelism,
                gov: ctx.gov.clone(),
                shared_catalog: ctx.shared_catalog.clone(),
                spill: Rc::clone(&ctx.spill),
            };
            for lr in self.stats.bridge_rows(batch) {
                {
                    let mut binds = self.inner_binds.borrow_mut();
                    for (p, i) in &self.param_pos {
                        binds.set(*p, lr[*i].clone());
                    }
                }
                self.inner.open(&ictx)?;
                let mut inner_rows = Vec::new();
                while let Some(b) = self.inner.next_batch(&ictx)? {
                    b.check_width(self.right_width)?;
                    inner_rows.extend(self.stats.bridge_rows(b));
                }
                match self.kind {
                    ApplyKind::Cross | ApplyKind::LeftOuter => {
                        if inner_rows.is_empty() && self.kind == ApplyKind::LeftOuter {
                            let mut row = lr;
                            row.extend(std::iter::repeat_n(Value::Null, self.right_width));
                            self.pending.push(row);
                        } else {
                            for ir in inner_rows {
                                let mut row = lr.clone();
                                row.extend(ir);
                                self.pending.push(row);
                            }
                        }
                    }
                    ApplyKind::Semi => {
                        if !inner_rows.is_empty() {
                            self.pending.push(lr);
                        }
                    }
                    ApplyKind::Anti => {
                        if inner_rows.is_empty() {
                            self.pending.push(lr);
                        }
                    }
                }
            }
        }
        let out = drain_pending(&mut self.pending, self.batch_size, &self.out_cols);
        Ok(match out {
            Some(b) if self.columnar => Some(b.to_columnar()),
            other => other,
        })
    }
}

/// Dedups one outer batch on the correlation parameters: returns the
/// distinct binding tuples in first-seen order, the tuple index per
/// outer row, and the rows themselves. Columnar batches dedup on the
/// parameter lanes directly (a vectorized kernel) before bridging to
/// rows for assembly.
fn dedup_apply_batch(
    param_pos: &[(ColId, usize)],
    batch: Batch,
    stats: &StatsHandle,
) -> (Vec<Row>, Vec<usize>, Vec<Row>) {
    if let Repr::Columns { columns, len } = &batch.repr {
        let key_cols: Vec<&Column> = param_pos.iter().map(|(_, i)| &columns[*i]).collect();
        let (distinct, group_of) = dedup_lanes(&key_cols, *len);
        stats.note_kernel();
        let rows = stats.bridge_rows(batch);
        return (distinct, group_of, rows);
    }
    let rows = batch.into_rows();
    let mut index: HashMap<Row, usize> = HashMap::new();
    let mut distinct: Vec<Row> = Vec::new();
    let mut group_of = Vec::with_capacity(rows.len());
    for r in &rows {
        let key: Row = param_pos.iter().map(|(_, i)| r[*i].clone()).collect();
        match index.get(&key) {
            Some(&g) => group_of.push(g),
            None => {
                let g = distinct.len();
                index.insert(key.clone(), g);
                distinct.push(key);
                group_of.push(g);
            }
        }
    }
    (distinct, group_of, rows)
}

/// Applies the `ApplyKind` combination semantics for one outer row
/// against its inner result — shared by the batched apply operators so
/// they match [`ApplyLoopOp`] exactly.
fn emit_apply_row(
    kind: ApplyKind,
    lr: Row,
    inner_rows: &[Row],
    right_width: usize,
    pending: &mut Vec<Row>,
) {
    match kind {
        ApplyKind::Cross | ApplyKind::LeftOuter => {
            if inner_rows.is_empty() && kind == ApplyKind::LeftOuter {
                let mut row = lr;
                row.extend(std::iter::repeat_n(Value::Null, right_width));
                pending.push(row);
            } else {
                for ir in inner_rows {
                    let mut row = lr.clone();
                    row.extend(ir.iter().cloned());
                    pending.push(row);
                }
            }
        }
        ApplyKind::Semi => {
            if !inner_rows.is_empty() {
                pending.push(lr);
            }
        }
        ApplyKind::Anti => {
            if inner_rows.is_empty() {
                pending.push(lr);
            }
        }
    }
}

/// Batched correlated execution: dedups each outer batch on the
/// correlation parameters and runs the inner plan once per *distinct*
/// binding, caching inner results across batches in a governor-charged
/// binding cache. This generalizes the invariant-subtree cache
/// ([`CacheOp`], the zero-parameter case) to parameterized inners.
///
/// NULL binding semantics: cache keys use `Value`'s own `Eq`, under
/// which `Null == Null` but `Null != v` for every non-NULL `v` — so a
/// NULL correlation parameter can never hit a cached non-NULL result,
/// and two NULL bindings sharing one entry is sound because the inner
/// plan is deterministic per binding tuple (an `IndexSeek` under a NULL
/// probe yields empty on every execution, per SQL equality).
struct BatchedApplyOp {
    kind: ApplyKind,
    left: BoxOp,
    inner: BoxOp,
    param_pos: Vec<(ColId, usize)>,
    right_width: usize,
    out_cols: Rc<[ColId]>,
    inner_binds: Rc<RefCell<Bindings>>,
    /// Inner results per distinct binding tuple, kept across batches
    /// within one execution; cleared on every `open` (rewinds under an
    /// outer apply re-parameterize the whole subtree).
    cache: HashMap<Row, Rc<Vec<Row>>>,
    /// Set when the governor refused binding-cache growth: the cache is
    /// shed and bindings execute uncached (still deduped per batch).
    degraded: bool,
    mem: MemoryReservation,
    pending: Vec<Row>,
    left_done: bool,
    batch_size: usize,
    columnar: bool,
    stats: StatsHandle,
}

impl BatchedApplyOp {
    /// Runs the inner plan under one binding tuple and drains it.
    fn run_inner(&mut self, ictx: &ExecCtx<'_>, key: &[Value]) -> Result<Vec<Row>> {
        {
            let mut binds = self.inner_binds.borrow_mut();
            for ((p, _), v) in self.param_pos.iter().zip(key.iter()) {
                binds.set(*p, v.clone());
            }
        }
        self.inner.open(ictx)?;
        let mut inner_rows = Vec::new();
        while let Some(b) = self.inner.next_batch(ictx)? {
            b.check_width(self.right_width)?;
            inner_rows.extend(self.stats.bridge_rows(b));
        }
        self.stats.note_distinct_binding();
        Ok(inner_rows)
    }

    /// Caches one binding's result, charging the governor; on refusal
    /// the cache is shed (reset + degrade) and execution continues
    /// uncached — results are identical either way.
    fn try_cache(&mut self, key: Row, rs: &Rc<Vec<Row>>) -> Result<()> {
        let bytes = rows_bytes(std::slice::from_ref(&key)) + rows_bytes(rs);
        match crate::faults::hit("batched.bindings").and_then(|()| self.mem.grow(bytes)) {
            Ok(()) => {
                self.cache.insert(key, rs.clone());
                Ok(())
            }
            Err(Error::ResourceExhausted { .. }) => {
                self.stats.note_mem_peak(self.mem.peak());
                self.mem.reset();
                self.cache.clear();
                self.degraded = true;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

impl Operator for BatchedApplyOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.inner_binds = Rc::new(RefCell::new(ctx.binds.borrow().clone()));
        self.cache.clear();
        self.degraded = false;
        self.mem = ctx.gov.reservation("BatchedApply");
        self.pending.clear();
        self.left_done = false;
        self.left.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        while self.pending.len() < self.batch_size && !self.left_done {
            let Some(batch) = self.left.next_batch(ctx)? else {
                self.left_done = true;
                break;
            };
            let (distinct, group_of, rows) = dedup_apply_batch(&self.param_pos, batch, &self.stats);
            let ictx = ExecCtx {
                catalog: ctx.catalog,
                binds: self.inner_binds.clone(),
                parallelism: ctx.parallelism,
                gov: ctx.gov.clone(),
                shared_catalog: ctx.shared_catalog.clone(),
                spill: Rc::clone(&ctx.spill),
            };
            let mut results: Vec<Rc<Vec<Row>>> = Vec::with_capacity(distinct.len());
            for key in distinct {
                if let Some(rs) = self.cache.get(&key) {
                    results.push(rs.clone());
                    continue;
                }
                let rs = Rc::new(self.run_inner(&ictx, &key)?);
                if !self.degraded {
                    self.try_cache(key, &rs)?;
                }
                results.push(rs);
            }
            for (lr, g) in rows.into_iter().zip(group_of) {
                emit_apply_row(
                    self.kind,
                    lr,
                    &results[g],
                    self.right_width,
                    &mut self.pending,
                );
            }
        }
        let out = drain_pending(&mut self.pending, self.batch_size, &self.out_cols);
        Ok(match out {
            Some(b) if self.columnar => Some(b.to_columnar()),
            other => other,
        })
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

/// Correlated index-lookup join (§4): per distinct outer binding,
/// probes the table's hash index directly, applies the residual over
/// the fetched layout, and projects the inner columns — the whole
/// seek-shaped inner plan fused into this operator. Shares the binding
/// cache + dedup machinery (and its NULL semantics) with
/// [`BatchedApplyOp`]; a NULL probe value yields the empty inner result
/// (SQL equality never matches NULL), exactly like `IndexSeek` under
/// `ApplyLoop`.
struct IndexLookupJoinOp {
    kind: ApplyKind,
    left: BoxOp,
    table: TableId,
    positions: Vec<usize>,
    fetch_cols: Vec<ColId>,
    index_cols: Vec<usize>,
    probes: Vec<ScalarExpr>,
    residual: ScalarExpr,
    /// Positions of the output projection within `fetch_cols`.
    proj: Vec<usize>,
    param_pos: Vec<(ColId, usize)>,
    right_width: usize,
    out_cols: Rc<[ColId]>,
    inner_binds: Rc<RefCell<Bindings>>,
    cache: HashMap<Row, Rc<Vec<Row>>>,
    degraded: bool,
    mem: MemoryReservation,
    pending: Vec<Row>,
    left_done: bool,
    batch_size: usize,
    columnar: bool,
    stats: StatsHandle,
}

impl IndexLookupJoinOp {
    /// Probes the index under one binding tuple: evaluates the probe
    /// expressions against the rebound parameters, looks up matching
    /// row ids, fetches + filters + projects.
    fn probe(&mut self, ctx: &ExecCtx<'_>, key: &[Value]) -> Result<Vec<Row>> {
        {
            let mut binds = self.inner_binds.borrow_mut();
            for ((p, _), v) in self.param_pos.iter().zip(key.iter()) {
                binds.set(*p, v.clone());
            }
        }
        self.stats.note_distinct_binding();
        let binds = self.inner_binds.borrow();
        let empty_ctx = EvalCtx::plain(&[], &[], &binds);
        let mut probe_key = Vec::with_capacity(self.probes.len());
        for probe in &self.probes {
            let v = eval(probe, &empty_ctx)?;
            if v.is_null() {
                // SQL equality never matches NULL: empty result.
                return Ok(Vec::new());
            }
            probe_key.push(v);
        }
        let t = ctx.catalog.table(self.table);
        let hits = t
            .index_lookup(&self.index_cols, &probe_key)
            .ok_or_else(|| {
                Error::internal(format!(
                    "missing index on {:?} of {}",
                    self.index_cols, t.def.name
                ))
            })?;
        self.stats.note_index_probe();
        let all = t.rows();
        let mut out = Vec::new();
        for &rid in hits {
            let r = &all[rid];
            let fetched: Row = self.positions.iter().map(|&i| r[i].clone()).collect();
            if eval_predicate(
                &self.residual,
                &EvalCtx::plain(&self.fetch_cols, &fetched, &binds),
            )? {
                out.push(self.proj.iter().map(|&i| fetched[i].clone()).collect());
            }
        }
        Ok(out)
    }

    /// Caches one binding's fetched result, charging the governor; on
    /// refusal the cache is shed and probing continues uncached.
    fn try_cache(&mut self, key: Row, rs: &Rc<Vec<Row>>) -> Result<()> {
        let bytes = rows_bytes(std::slice::from_ref(&key)) + rows_bytes(rs);
        match crate::faults::hit("indexjoin.fetch").and_then(|()| self.mem.grow(bytes)) {
            Ok(()) => {
                self.cache.insert(key, rs.clone());
                Ok(())
            }
            Err(Error::ResourceExhausted { .. }) => {
                self.stats.note_mem_peak(self.mem.peak());
                self.mem.reset();
                self.cache.clear();
                self.degraded = true;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }
}

impl Operator for IndexLookupJoinOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        // Validate index selection up front, so a mis-planned probe
        // fails at open rather than on the first non-NULL binding.
        let t = ctx.catalog.table(self.table);
        if t.select_index(&self.index_cols).as_deref() != Some(&self.index_cols[..]) {
            return Err(Error::internal(format!(
                "missing index on {:?} of {}",
                self.index_cols, t.def.name
            )));
        }
        self.inner_binds = Rc::new(RefCell::new(ctx.binds.borrow().clone()));
        self.cache.clear();
        self.degraded = false;
        self.mem = ctx.gov.reservation("IndexLookupJoin");
        self.pending.clear();
        self.left_done = false;
        self.left.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        while self.pending.len() < self.batch_size && !self.left_done {
            let Some(batch) = self.left.next_batch(ctx)? else {
                self.left_done = true;
                break;
            };
            let (distinct, group_of, rows) = dedup_apply_batch(&self.param_pos, batch, &self.stats);
            let mut results: Vec<Rc<Vec<Row>>> = Vec::with_capacity(distinct.len());
            for key in distinct {
                if let Some(rs) = self.cache.get(&key) {
                    results.push(rs.clone());
                    continue;
                }
                let rs = Rc::new(self.probe(ctx, &key)?);
                if !self.degraded {
                    self.try_cache(key, &rs)?;
                }
                results.push(rs);
            }
            for (lr, g) in rows.into_iter().zip(group_of) {
                emit_apply_row(
                    self.kind,
                    lr,
                    &results[g],
                    self.right_width,
                    &mut self.pending,
                );
            }
        }
        let out = drain_pending(&mut self.pending, self.batch_size, &self.out_cols);
        Ok(match out {
            Some(b) if self.columnar => Some(b.to_columnar()),
            other => other,
        })
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

/// Where each `SegmentExec` output column comes from.
enum OutSrc {
    /// Position within the segment key.
    Seg(usize),
    /// Position within the inner plan's output.
    Inner(usize),
}

struct SegmentExecOp {
    input: BoxOp,
    inner: BoxOp,
    seg_pos: Vec<usize>,
    input_cols: Vec<ColId>,
    out_src: Vec<OutSrc>,
    out_cols: Rc<[ColId]>,
    inner_binds: Rc<RefCell<Bindings>>,
    /// Segments in first-seen order: `(key, rows)`.
    segments: Vec<(Vec<Value>, Vec<Row>)>,
    partitioned: bool,
    seg_cursor: usize,
    pending: Vec<Row>,
    batch_size: usize,
    /// Transpose assembled output batches to columns so downstream
    /// vectorized operators stay on the kernel path.
    columnar: bool,
    mem: MemoryReservation,
    stats: StatsHandle,
}

impl Operator for SegmentExecOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.inner_binds = Rc::new(RefCell::new(ctx.binds.borrow().clone()));
        self.segments.clear();
        self.partitioned = false;
        self.seg_cursor = 0;
        self.pending.clear();
        self.mem = ctx.gov.reservation("SegmentExec");
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.partitioned {
            // The partitioner is a pipeline breaker: it must see every
            // input row before any segment runs.
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            while let Some(b) = self.input.next_batch(ctx)? {
                b.check_width(self.input_cols.len())?;
                crate::faults::hit("segment.partition")
                    .and_then(|()| self.mem.grow(b.mem_bytes()))
                    .map_err(|e| e.with_hint(MEM_HINT))?;
                for r in self.stats.bridge_rows(b) {
                    let key: Vec<Value> = self.seg_pos.iter().map(|&i| r[i].clone()).collect();
                    match index.get(&key) {
                        Some(&i) => self.segments[i].1.push(r),
                        None => {
                            index.insert(key.clone(), self.segments.len());
                            self.segments.push((key, vec![r]));
                        }
                    }
                }
            }
            self.partitioned = true;
        }
        while self.pending.len() < self.batch_size && self.seg_cursor < self.segments.len() {
            let (key, rows) = {
                let (k, r) = &mut self.segments[self.seg_cursor];
                (k.clone(), std::mem::take(r))
            };
            self.seg_cursor += 1;
            let segment = Rc::new(Chunk::new(self.input_cols.clone(), rows));
            self.inner_binds.borrow_mut().push_segment(segment);
            let ictx = ExecCtx {
                catalog: ctx.catalog,
                binds: self.inner_binds.clone(),
                parallelism: ctx.parallelism,
                gov: ctx.gov.clone(),
                shared_catalog: ctx.shared_catalog.clone(),
                spill: Rc::clone(&ctx.spill),
            };
            let run = (|| -> Result<()> {
                self.inner.open(&ictx)?;
                while let Some(b) = self.inner.next_batch(&ictx)? {
                    for ir in self.stats.bridge_rows(b) {
                        let row: Row = self
                            .out_src
                            .iter()
                            .map(|src| match src {
                                OutSrc::Seg(i) => key[*i].clone(),
                                OutSrc::Inner(p) => ir[*p].clone(),
                            })
                            .collect();
                        self.pending.push(row);
                    }
                }
                Ok(())
            })();
            self.inner_binds.borrow_mut().pop_segment();
            run?;
        }
        let out = drain_pending(&mut self.pending, self.batch_size, &self.out_cols);
        Ok(match out {
            Some(b) if self.columnar => Some(b.to_columnar()),
            other => other,
        })
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

// ---------------------------------------------------------------------
// Pipeline breakers.
// ---------------------------------------------------------------------

/// Disk-resident overflow of a spillable hash aggregation: rows the
/// resident state refused are stored as already-evaluated
/// `key ++ present-args` tuples (no re-evaluation on restore),
/// partitioned by group-key hash.
struct SpilledAgg {
    parts: SpillPartitions,
    key_width: usize,
    /// Which aggregate specs carry an argument value in the spilled row
    /// (static per plan: `arg` is `Some` for everything but COUNT(*)).
    has_arg: Vec<bool>,
}

struct HashAggregateOp {
    kind: GroupKind,
    input: BoxOp,
    group_pos: Vec<usize>,
    aggs: Vec<AggDef>,
    in_cols: Rc<[ColId]>,
    in_pos: PosMap,
    out_cols: Rc<[ColId]>,
    state: Option<GroupedAggState>,
    result: Vec<Row>,
    done: bool,
    batch_size: usize,
    /// Transpose result batches to columns so downstream vectorized
    /// operators stay on the kernel path.
    columnar: bool,
    /// Peak bytes of the grouped state, captured before `finish`
    /// consumes it (the reservation lives inside the state).
    mem_peak: u64,
    /// Degrade to partitioned spilling on a refused state charge.
    allow_spill: bool,
    /// Active spill state; once set, the resident group state is frozen
    /// and every further input row goes to disk.
    spilled: Option<SpilledAgg>,
    stats: StatsHandle,
}

impl HashAggregateOp {
    /// Enters spill mode (idempotent): the resident state freezes and
    /// further rows are partitioned to disk by group-key hash.
    fn enter_spill(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        if self.spilled.is_some() {
            return Ok(());
        }
        let has_arg: Vec<bool> = self.aggs.iter().map(|a| a.arg.is_some()).collect();
        let width = self.group_pos.len() + has_arg.iter().filter(|&&h| h).count();
        let parts = SpillPartitions::create(&ctx.spill, "agg-part", width)?;
        self.spilled = Some(SpilledAgg {
            parts,
            key_width: self.group_pos.len(),
            has_arg,
        });
        Ok(())
    }

    /// Routes one evaluated `(key, args)` row to its spill partition.
    fn spill_row(&mut self, key: Row, args: Vec<Option<Value>>) -> Result<()> {
        let sp = self.spilled.as_mut().expect("spill mode active");
        let p = partition_of(hash_values(&key), 0);
        let mut row = key;
        row.extend(args.into_iter().flatten());
        sp.parts.push(p, row)?;
        Ok(())
    }

    /// Pulls the whole input through the grouped state, degrading to
    /// disk partitions when the governor refuses a charge.
    fn drain_input(&mut self, ctx: &ExecCtx<'_>, state: &mut GroupedAggState) -> Result<()> {
        while let Some(b) = self.input.next_batch(ctx)? {
            match crate::faults::hit("hashagg.state") {
                Ok(()) => {}
                Err(e) => {
                    let refused = matches!(e, Error::ResourceExhausted { .. });
                    if !(refused && self.allow_spill) {
                        return Err(e.with_hint(MEM_OR_SPILL_HINT));
                    }
                    self.enter_spill(ctx)?;
                }
            }
            let binds = ctx.binds.borrow();
            // Vectorized feed: evaluate every aggregate argument as a
            // whole column first (an argument kernel error falls back
            // to the row path on the whole batch), then stream the
            // lanes into the grouped state. Lane charges are atomic:
            // a refused lane leaves the state consistent and the tail
            // of the batch goes to disk.
            let mut vector_ok = false;
            if let Some((columns, len)) = b.columns() {
                let cx = VecEval {
                    cols: &self.in_cols,
                    pos: &self.in_pos,
                    columns,
                    len,
                    binds: &binds,
                };
                let args: Result<Vec<Option<Column>>> = self
                    .aggs
                    .iter()
                    .map(|a| a.arg.as_ref().map(|e| eval_column(e, &cx)).transpose())
                    .collect();
                if let Ok(arg_cols) = args {
                    let key_cols: Vec<&Column> =
                        self.group_pos.iter().map(|&i| &columns[i]).collect();
                    let mut start = 0;
                    if self.spilled.is_none() {
                        let (applied, refusal) =
                            state.feed_lanes_or_reject(&key_cols, &arg_cols, len)?;
                        match refusal {
                            None => start = len,
                            Some(err) => {
                                if !self.allow_spill {
                                    return Err(err.with_hint(MEM_OR_SPILL_HINT));
                                }
                                self.enter_spill(ctx)?;
                                start = applied;
                            }
                        }
                    }
                    if start < len {
                        for i in start..len {
                            let key: Row = self
                                .group_pos
                                .iter()
                                .map(|&p| columns[p].value(i))
                                .collect();
                            let row_args: Vec<Option<Value>> = arg_cols
                                .iter()
                                .map(|c| c.as_ref().map(|c| c.value(i)))
                                .collect();
                            self.spill_row(key, row_args)?;
                        }
                        ctx.gov.check_cancelled("HashAggregate")?;
                    }
                    self.stats.note_kernel();
                    vector_ok = true;
                }
            }
            if vector_ok {
                continue;
            }
            for r in &self.stats.bridge_rows(b) {
                let key: Vec<Value> = self.group_pos.iter().map(|&i| r[i].clone()).collect();
                let args = self
                    .aggs
                    .iter()
                    .map(|a| {
                        a.arg
                            .as_ref()
                            .map(|e| {
                                eval(e, &EvalCtx::mapped(&self.in_cols, &self.in_pos, r, &binds))
                            })
                            .transpose()
                    })
                    .collect::<Result<Vec<_>>>()?;
                if self.spilled.is_some() {
                    self.spill_row(key, args)?;
                    continue;
                }
                match state.feed_or_reject(key, args)? {
                    FeedOutcome::Fed => {}
                    FeedOutcome::Refused { key, args, err } => {
                        if !self.allow_spill {
                            return Err(err.with_hint(MEM_OR_SPILL_HINT));
                        }
                        self.enter_spill(ctx)?;
                        self.spill_row(key, args)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Replays one spilled partition file into `st`.
    fn replay_file(
        ctx: &ExecCtx<'_>,
        st: &mut GroupedAggState,
        file: &mut SpillFile,
        key_width: usize,
        has_arg: &[bool],
    ) -> Result<()> {
        let mut r = file.reader()?;
        while let Some(rows) = r.next_block()? {
            for row in rows {
                let mut it = row.into_iter();
                let key: Row = it.by_ref().take(key_width).collect();
                let args: Vec<Option<Value>> = has_arg
                    .iter()
                    .map(|&h| if h { it.next() } else { None })
                    .collect();
                st.feed(key, args).map_err(|e| e.with_hint(MEM_HINT))?;
            }
            ctx.gov.check_cancelled("HashAggregate")?;
        }
        Ok(())
    }

    /// Finishes a spilled aggregation: the frozen resident state is
    /// split by the same partition function the disk rows used, then
    /// each partition is finalized independently — merge the resident
    /// split, replay the partition file, emit. Peak memory is one
    /// partition's groups instead of all of them.
    fn finish_spilled(
        &mut self,
        ctx: &ExecCtx<'_>,
        state: GroupedAggState,
        sp: SpilledAgg,
    ) -> Result<Vec<Row>> {
        let SpilledAgg {
            parts,
            key_width,
            has_arg,
        } = sp;
        let files = parts.finish()?;
        let written: u64 = files.iter().map(SpillFile::bytes).sum();
        let count = files.iter().filter(|f| !f.is_empty()).count() as u64;
        self.stats.note_spill(count, written);
        let splits = state.split_by(FANOUT, |key| partition_of(hash_values(key), 0));
        if matches!(self.kind, GroupKind::Scalar) {
            // Scalar aggregation has a single (empty) group key, so all
            // rows live in one partition: fold everything into one
            // state and finish once, so `agg(∅)` fires exactly when the
            // whole input was empty.
            let mut total = GroupedAggState::new(&self.aggs);
            total.set_reservation(ctx.gov.reservation("HashAggregate"));
            let r = (|| -> Result<()> {
                for split in splits {
                    total.merge(split).map_err(|e| e.with_hint(MEM_HINT))?;
                }
                for mut file in files {
                    Self::replay_file(ctx, &mut total, &mut file, key_width, &has_arg)?;
                }
                Ok(())
            })();
            self.mem_peak = self.mem_peak.max(total.mem_peak());
            r?;
            return Ok(total.finish(self.kind));
        }
        let mut out = Vec::new();
        for (split, mut file) in splits.into_iter().zip(files) {
            let mut st = GroupedAggState::new(&self.aggs);
            st.set_reservation(ctx.gov.reservation("HashAggregate"));
            let r = (|| -> Result<()> {
                st.merge(split).map_err(|e| e.with_hint(MEM_HINT))?;
                Self::replay_file(ctx, &mut st, &mut file, key_width, &has_arg)
            })();
            self.mem_peak = self.mem_peak.max(st.mem_peak());
            r?;
            out.extend(st.finish(self.kind));
            // The partition file is consumed; dropping it reclaims the
            // disk space before the next partition loads.
            drop(file);
            ctx.gov.check_cancelled("HashAggregate")?;
        }
        Ok(out)
    }
}

impl Operator for HashAggregateOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        let mut state = GroupedAggState::new(&self.aggs);
        state.set_reservation(ctx.gov.reservation("HashAggregate"));
        self.state = Some(state);
        self.result.clear();
        self.done = false;
        self.mem_peak = 0;
        // Dropping stale spill partitions removes their files (left by
        // a previous errored execution of this cached pipeline).
        self.spilled = None;
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.done {
            let mut state = self
                .state
                .take()
                .ok_or_else(|| Error::internal("aggregate state missing"))?;
            let fed = self.drain_input(ctx, &mut state);
            self.mem_peak = self.mem_peak.max(state.mem_peak());
            fed?;
            self.result = match self.spilled.take() {
                None => state.finish(self.kind),
                Some(sp) => self.finish_spilled(ctx, state, sp)?,
            };
            self.done = true;
        }
        let out = drain_pending(&mut self.result, self.batch_size, &self.out_cols);
        Ok(match out {
            Some(b) if self.columnar => Some(b.to_columnar()),
            other => other,
        })
    }

    fn mem_peak(&self) -> u64 {
        self.mem_peak
    }
}

/// Compares two rows under a sort specification (`(position, desc)`
/// pairs). NULLs order via [`Value::total_cmp`].
fn cmp_rows(a: &Row, b: &Row, by: &[(usize, bool)]) -> std::cmp::Ordering {
    for &(i, desc) in by {
        let mut o = a[i].total_cmp(&b[i]);
        if desc {
            o = o.reverse();
        }
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

/// One run in an external k-way merge: a spilled sorted run being
/// streamed block by block, or the final in-memory run (`reader` is
/// `None` and `buf` holds all of it).
struct RunCursor {
    reader: Option<SpillReader>,
    buf: VecDeque<Row>,
}

impl RunCursor {
    /// Ensures `buf` has the run's next row (empty only at end-of-run).
    fn refill(&mut self) -> Result<()> {
        while self.buf.is_empty() {
            let Some(r) = self.reader.as_mut() else {
                return Ok(());
            };
            match r.next_block()? {
                Some(rows) => self.buf = rows.into(),
                None => self.reader = None,
            }
        }
        Ok(())
    }
}

/// K-way merge state over sorted runs. Cursors are ordered by run
/// creation time; ties between heads resolve to the earliest run, which
/// reproduces exactly the stable sort of the concatenated input.
struct MergeState {
    cursors: Vec<RunCursor>,
}

struct SortOp {
    input: BoxOp,
    by_pos: Vec<(usize, bool)>,
    cols: Rc<[ColId]>,
    buffered: Vec<Row>,
    sorted: bool,
    batch_size: usize,
    mem: MemoryReservation,
    /// Degrade to an external merge sort on a refused reservation.
    allow_spill: bool,
    /// Spilled sorted runs, in creation order. The files must outlive
    /// `merge` (its readers reopen them by path); cleared when the
    /// merge completes.
    runs: Vec<SpillFile>,
    merge: Option<MergeState>,
    stats: StatsHandle,
}

impl SortOp {
    /// Stable-sorts the buffered rows and writes them out as one run,
    /// then releases the reservation (keeping its peak).
    fn spill_run(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        let by = std::mem::take(&mut self.by_pos);
        self.buffered.sort_by(|a, b| cmp_rows(a, b, &by));
        self.by_pos = by;
        let mut f = ctx.spill.create("sort-run")?;
        for chunk in self.buffered.chunks(DEFAULT_BATCH_SIZE) {
            f.append(chunk, self.cols.len())?;
            ctx.gov.check_cancelled("Sort")?;
        }
        self.buffered.clear();
        self.runs.push(f);
        self.mem.reset();
        Ok(())
    }

    /// Pops up to one batch of rows off the k-way merge.
    fn merge_next(&mut self) -> Result<Vec<Row>> {
        let m = self.merge.as_mut().expect("merge state active");
        let mut out = Vec::new();
        loop {
            for c in &mut m.cursors {
                c.refill()?;
            }
            let mut best: Option<usize> = None;
            for (i, c) in m.cursors.iter().enumerate() {
                let Some(h) = c.buf.front() else { continue };
                best = match best {
                    None => Some(i),
                    Some(j) => {
                        // Strict `<` keeps the earlier run on ties.
                        let bh = m.cursors[j].buf.front().expect("best head present");
                        if cmp_rows(h, bh, &self.by_pos) == std::cmp::Ordering::Less {
                            Some(i)
                        } else {
                            Some(j)
                        }
                    }
                };
            }
            let Some(i) = best else { break };
            out.push(m.cursors[i].buf.pop_front().expect("head present"));
            if out.len() >= self.batch_size {
                break;
            }
        }
        Ok(out)
    }
}

impl Operator for SortOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.buffered.clear();
        self.sorted = false;
        // Dropping stale runs removes their files (a previous errored
        // execution of this cached pipeline may have left some).
        self.runs.clear();
        self.merge = None;
        self.mem = ctx.gov.reservation("Sort");
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.sorted {
            while let Some(b) = self.input.next_batch(ctx)? {
                b.check_width(self.cols.len())?;
                match crate::faults::hit("sort.buffer").and_then(|()| self.mem.grow(b.mem_bytes()))
                {
                    Ok(()) => {}
                    Err(e) => {
                        let refused = matches!(e, Error::ResourceExhausted { .. });
                        if !(refused && self.allow_spill) {
                            return Err(e.with_hint(MEM_OR_SPILL_HINT));
                        }
                        // Write everything buffered so far as a sorted
                        // run, then retry the charge for this batch.
                        self.spill_run(ctx)?;
                        if let Err(e2) = self.mem.grow(b.mem_bytes()) {
                            if !matches!(e2, Error::ResourceExhausted { .. }) {
                                return Err(e2);
                            }
                            // The batch alone exceeds the budget: it
                            // becomes its own run without ever being
                            // resident past this point.
                            let mut rows = self.stats.bridge_rows(b);
                            rows.sort_by(|a, b| cmp_rows(a, b, &self.by_pos));
                            let mut f = ctx.spill.create("sort-run")?;
                            for chunk in rows.chunks(DEFAULT_BATCH_SIZE) {
                                f.append(chunk, self.cols.len())?;
                            }
                            self.runs.push(f);
                            ctx.gov.check_cancelled("Sort")?;
                            continue;
                        }
                    }
                }
                let rows = self.stats.bridge_rows(b);
                self.buffered.extend(rows);
            }
            let by = &self.by_pos;
            self.buffered.sort_by(|a, b| cmp_rows(a, b, by));
            self.sorted = true;
            if !self.runs.is_empty() {
                let written: u64 = self.runs.iter().map(SpillFile::bytes).sum();
                let count = self.runs.iter().filter(|f| !f.is_empty()).count() as u64;
                self.stats.note_spill(count, written);
                let mut cursors = Vec::with_capacity(self.runs.len() + 1);
                for f in &mut self.runs {
                    cursors.push(RunCursor {
                        reader: Some(f.reader()?),
                        buf: VecDeque::new(),
                    });
                }
                // The still-resident tail is the youngest run.
                cursors.push(RunCursor {
                    reader: None,
                    buf: std::mem::take(&mut self.buffered).into(),
                });
                self.merge = Some(MergeState { cursors });
            }
        }
        if self.merge.is_some() {
            ctx.gov.check_cancelled("Sort")?;
            let out = self.merge_next()?;
            if out.is_empty() {
                // Merge exhausted: drop the run files now rather than
                // at close, so a long-lived cached pipeline does not
                // pin disk space.
                self.merge = None;
                self.runs.clear();
                self.mem.reset();
                return Ok(None);
            }
            return Ok(Some(Batch::new(self.cols.clone(), out)));
        }
        Ok(drain_pending(
            &mut self.buffered,
            self.batch_size,
            &self.cols,
        ))
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

struct LimitOp {
    input: BoxOp,
    n: usize,
    cols: Rc<[ColId]>,
    buffered: Vec<Row>,
    done: bool,
    batch_size: usize,
    mem: MemoryReservation,
    stats: StatsHandle,
}

impl Operator for LimitOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.buffered.clear();
        self.done = false;
        self.mem = ctx.gov.reservation("Limit");
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.done {
            // Drain the child completely so errors past the cutoff still
            // surface, matching materialized semantics.
            while let Some(b) = self.input.next_batch(ctx)? {
                b.check_width(self.cols.len())?;
                let room = self.n.saturating_sub(self.buffered.len());
                if room == 0 {
                    // Past the cutoff: keep draining for errors but
                    // skip the (bridge) conversion entirely.
                    continue;
                }
                let kept: Vec<Row> = self.stats.bridge_rows(b).into_iter().take(room).collect();
                if !kept.is_empty() {
                    crate::faults::hit("limit.buffer")
                        .and_then(|()| self.mem.grow(rows_bytes(&kept)))
                        .map_err(|e| e.with_hint(MEM_HINT))?;
                    self.buffered.extend(kept);
                }
            }
            self.done = true;
        }
        Ok(drain_pending(
            &mut self.buffered,
            self.batch_size,
            &self.cols,
        ))
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

struct AssertMax1Op {
    input: BoxOp,
    cols: Rc<[ColId]>,
    buffered: Vec<Row>,
    done: bool,
    mem: MemoryReservation,
    stats: StatsHandle,
}

impl Operator for AssertMax1Op {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.buffered.clear();
        self.done = false;
        self.mem = ctx.gov.reservation("Max1Row");
        self.input.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        // Materialize first: input errors take precedence over the
        // cardinality violation, as in the reference semantics.
        while let Some(b) = self.input.next_batch(ctx)? {
            b.check_width(self.cols.len())?;
            crate::faults::hit("max1.buffer")
                .and_then(|()| self.mem.grow(b.mem_bytes()))
                .map_err(|e| e.with_hint(MEM_HINT))?;
            let rows = self.stats.bridge_rows(b);
            self.buffered.extend(rows);
        }
        self.done = true;
        if self.buffered.len() > 1 {
            return Err(Error::SubqueryReturnedMoreThanOneRow);
        }
        if self.buffered.is_empty() {
            return Ok(None);
        }
        Ok(Some(Batch::new(
            self.cols.clone(),
            std::mem::take(&mut self.buffered),
        )))
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

struct ConcatOp {
    left: BoxOp,
    right: BoxOp,
    lpos: Vec<usize>,
    rpos: Vec<usize>,
    cols: Rc<[ColId]>,
    on_right: bool,
    stats: StatsHandle,
}

impl ConcatOp {
    /// Remaps one side's layout onto the output layout; columnar
    /// batches stay columnar (column selection is O(1) per column).
    fn remap(&self, b: Batch, pos: &[usize]) -> Batch {
        if let Some((columns, len)) = b.columns() {
            let out = pos.iter().map(|&i| columns[i].clone()).collect();
            self.stats.note_kernel();
            return Batch::from_columns(self.cols.clone(), out, len);
        }
        let rows = b
            .into_rows()
            .into_iter()
            .map(|r| pos.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Batch::new(self.cols.clone(), rows)
    }
}

impl Operator for ConcatOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.on_right = false;
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.on_right {
            if let Some(b) = self.left.next_batch(ctx)? {
                let out = self.remap(b, &self.lpos);
                return Ok(Some(out));
            }
            self.on_right = true;
        }
        let Some(b) = self.right.next_batch(ctx)? else {
            return Ok(None);
        };
        let out = self.remap(b, &self.rpos);
        Ok(Some(out))
    }
}

struct ExceptOp {
    left: BoxOp,
    right: BoxOp,
    rpos: Vec<usize>,
    cols: Rc<[ColId]>,
    counts: HashMap<Row, usize>,
    built: bool,
    mem: MemoryReservation,
    stats: StatsHandle,
}

impl Operator for ExceptOp {
    fn open(&mut self, ctx: &ExecCtx<'_>) -> Result<()> {
        self.counts.clear();
        self.built = false;
        self.mem = ctx.gov.reservation("Except");
        self.left.open(ctx)?;
        self.right.open(ctx)
    }

    fn next_batch(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
        if !self.built {
            while let Some(b) = self.right.next_batch(ctx)? {
                crate::faults::hit("except.build")
                    .and_then(|()| self.mem.grow(b.mem_bytes()))
                    .map_err(|e| e.with_hint(MEM_HINT))?;
                for r in &self.stats.bridge_rows(b) {
                    let key: Row = self.rpos.iter().map(|&i| r[i].clone()).collect();
                    *self.counts.entry(key).or_insert(0) += 1;
                }
            }
            self.built = true;
        }
        loop {
            let Some(b) = self.left.next_batch(ctx)? else {
                return Ok(None);
            };
            let mut rows = Vec::new();
            for row in self.stats.bridge_rows(b) {
                match self.counts.get_mut(&row) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => rows.push(row),
                }
            }
            if !rows.is_empty() {
                return Ok(Some(Batch::new(self.cols.clone(), rows)));
            }
        }
    }

    fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_common::DataType;
    use orthopt_storage::{Catalog, ColumnDef, TableDef};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let t = c
            .create_table(TableDef::new(
                "t",
                vec![
                    ColumnDef::new("a", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ],
                vec![vec![0]],
            ))
            .unwrap();
        c.table_mut(t)
            .insert_all((0..7).map(|i| vec![Value::Int(i), Value::Int(i * 10)]))
            .unwrap();
        c
    }

    fn scan() -> PhysExpr {
        PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0, 1],
            cols: vec![ColId(1), ColId(2)],
        }
    }

    #[test]
    fn scan_respects_batch_size() {
        let catalog = catalog();
        let mut p = Pipeline::with_batch_size(&scan(), 3).unwrap();
        let out = p.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(out.len(), 7);
        let stats = p.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].rows, 7);
        assert_eq!(stats[0].batches, 3); // 3 + 3 + 1
        assert_eq!(stats[0].opens, 1);
    }

    #[test]
    fn filter_skips_empty_batches() {
        let catalog = catalog();
        let plan = PhysExpr::Filter {
            input: Box::new(scan()),
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(1)), ScalarExpr::lit(5i64)),
        };
        let mut p = Pipeline::with_batch_size(&plan, 2).unwrap();
        let out = p.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(5), Value::Int(50)]]);
        let stats = p.stats();
        // Node 0 is the filter, node 1 the scan (pre-order).
        assert_eq!(stats[0].rows, 1);
        assert_eq!(stats[1].rows, 7);
    }

    #[test]
    fn stats_reset_between_executions() {
        let catalog = catalog();
        let mut p = Pipeline::compile(&scan()).unwrap();
        p.execute(&catalog, &Bindings::new()).unwrap();
        p.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(p.stats()[0].rows, 7);
    }

    #[test]
    fn invariant_apply_inner_is_cached() {
        // ApplyLoop whose inner never references the outer row: the
        // inner subtree must be wrapped in a cache and opened once.
        let catalog = catalog();
        let inner = PhysExpr::Filter {
            input: Box::new(scan()),
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(1)), ScalarExpr::lit(1i64)),
        };
        let plan = PhysExpr::ApplyLoop {
            kind: ApplyKind::Cross,
            left: Box::new(PhysExpr::TableScan {
                table: TableId(0),
                positions: vec![0],
                cols: vec![ColId(3)],
            }),
            right: Box::new(inner),
            params: vec![],
        };
        let mut p = Pipeline::compile(&plan).unwrap();
        assert_eq!(p.cached_nodes(), &[2]); // the inner Filter subtree
        let out = p.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(out.len(), 7); // 7 outer rows x 1 cached inner row
        let stats = p.stats();
        // Cached inner filter ran exactly once despite 7 outer rows.
        assert_eq!(stats[2].opens, 1);
        assert_eq!(stats[3].opens, 1);
    }

    #[test]
    fn correlated_apply_reopens_inner() {
        let catalog = catalog();
        let inner = PhysExpr::Filter {
            input: Box::new(scan()),
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(1)), ScalarExpr::col(ColId(3))),
        };
        let plan = PhysExpr::ApplyLoop {
            kind: ApplyKind::Semi,
            left: Box::new(PhysExpr::TableScan {
                table: TableId(0),
                positions: vec![0],
                cols: vec![ColId(3)],
            }),
            right: Box::new(inner),
            params: vec![ColId(3)],
        };
        let mut p = Pipeline::compile(&plan).unwrap();
        assert!(p.cached_nodes().is_empty());
        let out = p.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(out.len(), 7);
        assert_eq!(p.stats()[2].opens, 7); // inner filter re-opened per row
    }

    #[test]
    fn empty_input_yields_empty_chunk_with_layout() {
        let mut c = Catalog::new();
        c.create_table(TableDef::new(
            "e",
            vec![ColumnDef::new("a", DataType::Int)],
            vec![vec![0]],
        ))
        .unwrap();
        let plan = PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![ColId(1)],
        };
        let mut p = Pipeline::compile(&plan).unwrap();
        let out = p.execute(&c, &Bindings::new()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.cols, vec![ColId(1)]);
        assert_eq!(p.stats()[0].batches, 0);
    }

    /// `Batch`'s fields are public, so a literal can bypass the arity
    /// `debug_assert` in [`Batch::new`]. Stateful operators must catch
    /// the mismatch on their own batch-concatenation path — in release
    /// builds too, as a query error rather than a panic.
    #[test]
    fn malformed_batch_caught_on_concat_path() {
        struct LyingOp {
            cols: Rc<[ColId]>,
            fired: bool,
        }
        impl Operator for LyingOp {
            fn open(&mut self, _ctx: &ExecCtx<'_>) -> Result<()> {
                self.fired = false;
                Ok(())
            }
            fn next_batch(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<Batch>> {
                if self.fired {
                    return Ok(None);
                }
                self.fired = true;
                // Literal construction: two-column layout, one-column row.
                Ok(Some(Batch {
                    cols: self.cols.clone(),
                    repr: Repr::Rows(vec![vec![Value::Int(1)]]),
                }))
            }
        }
        let layout = rc_cols(&[ColId(1), ColId(2)]);
        let mut sort = SortOp {
            input: Box::new(LyingOp {
                cols: layout.clone(),
                fired: false,
            }),
            by_pos: vec![(0, false)],
            cols: layout,
            buffered: Vec::new(),
            sorted: false,
            batch_size: 16,
            mem: MemoryReservation::detached("Sort"),
            allow_spill: false,
            runs: Vec::new(),
            merge: None,
            stats: StatsHandle::new(Rc::new(RefCell::new(vec![OpStats::default()])), 0),
        };
        let catalog = catalog();
        let ctx = ExecCtx::new(&catalog, Bindings::new());
        sort.open(&ctx).unwrap();
        let err = sort
            .next_batch(&ctx)
            .expect_err("arity mismatch must error on the buffering path");
        assert!(
            matches!(err, Error::Internal(ref m) if m.contains("arity")),
            "unexpected error: {err}"
        );
    }
}
