//! Aggregation core shared by the reference interpreter and the
//! physical engine.
//!
//! Implements the SQL semantics the paper leans on (§1.1): vector
//! aggregation is empty on empty input; scalar aggregation always emits
//! exactly one row with `agg(∅)` results; NULL inputs are skipped by all
//! aggregates; `COUNT(*)` counts rows. `LocalGroupBy` "need not be
//! different from a GroupBy" in the engine (§3.3) — it runs through the
//! same code path.

use std::collections::{HashMap, HashSet};

use orthopt_common::row::row_bytes;
use orthopt_common::{Error, MemoryReservation, Result, Row, Value};
use orthopt_ir::{AggDef, AggFunc, GroupKind};

/// Running state of one aggregate over one group.
#[derive(Debug, Clone)]
pub enum AggAcc {
    /// COUNT(*) / COUNT(expr): running row count.
    Count(i64),
    /// SUM: running total (None until the first non-NULL input).
    Sum(Option<Value>),
    /// MIN.
    Min(Option<Value>),
    /// MAX.
    Max(Option<Value>),
    /// AVG: running (sum, count) over non-NULL inputs.
    Avg(f64, i64),
}

impl AggAcc {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc) -> AggAcc {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggAcc::Count(0),
            AggFunc::Sum => AggAcc::Sum(None),
            AggFunc::Min => AggAcc::Min(None),
            AggFunc::Max => AggAcc::Max(None),
            AggFunc::Avg => AggAcc::Avg(0.0, 0),
        }
    }

    /// Feeds one input value. `v` is `None` only for `COUNT(*)` (no
    /// argument); NULL argument values are skipped per SQL.
    pub fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggAcc::Count(n) => {
                match v {
                    // COUNT(*): every row counts.
                    None => *n += 1,
                    // COUNT(expr): only non-NULL values count.
                    Some(x) if !x.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            AggAcc::Sum(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *acc = Some(match acc.take() {
                            Some(cur) => cur.add(x)?,
                            None => x.clone(),
                        });
                    }
                }
            }
            AggAcc::Min(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        let better = acc
                            .as_ref()
                            .is_none_or(|cur| x.sql_cmp(cur) == Some(std::cmp::Ordering::Less));
                        if better {
                            *acc = Some(x.clone());
                        }
                    }
                }
            }
            AggAcc::Max(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        let better = acc
                            .as_ref()
                            .is_none_or(|cur| x.sql_cmp(cur) == Some(std::cmp::Ordering::Greater));
                        if better {
                            *acc = Some(x.clone());
                        }
                    }
                }
            }
            AggAcc::Avg(sum, n) => {
                if let Some(x) = v {
                    match x {
                        Value::Null => {}
                        Value::Int(i) => {
                            *sum += *i as f64;
                            *n += 1;
                        }
                        Value::Float(fl) => {
                            *sum += *fl;
                            *n += 1;
                        }
                        other => {
                            return Err(Error::TypeMismatch(format!(
                                "avg over non-numeric {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds another accumulator of the same function into this one —
    /// the global half of the §3.3 local/global split, used when
    /// thread-local partial aggregation states are merged at close.
    pub fn merge(&mut self, other: AggAcc) -> Result<()> {
        match (self, other) {
            (AggAcc::Count(n), AggAcc::Count(m)) => *n += m,
            (AggAcc::Sum(acc), AggAcc::Sum(v)) => {
                if let Some(x) = v {
                    *acc = Some(match acc.take() {
                        Some(cur) => cur.add(&x)?,
                        None => x,
                    });
                }
            }
            (acc @ AggAcc::Min(_), AggAcc::Min(v)) | (acc @ AggAcc::Max(_), AggAcc::Max(v)) => {
                if let Some(x) = v {
                    acc.update(Some(&x))?;
                }
            }
            (AggAcc::Avg(sum, n), AggAcc::Avg(s2, n2)) => {
                *sum += s2;
                *n += n2;
            }
            _ => return Err(Error::internal("merge of mismatched aggregate states")),
        }
        Ok(())
    }

    /// Final value of the aggregate for this group.
    pub fn finish(self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(n),
            AggAcc::Sum(v) | AggAcc::Min(v) | AggAcc::Max(v) => v.unwrap_or(Value::Null),
            AggAcc::Avg(sum, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// State of one group: accumulators plus per-aggregate distinct filters.
struct GroupState {
    accs: Vec<AggAcc>,
    seen: Vec<Option<HashSet<Value>>>,
}

impl GroupState {
    fn new(specs: &[(AggFunc, bool)]) -> GroupState {
        GroupState {
            accs: specs.iter().map(|(f, _)| AggAcc::new(*f)).collect(),
            seen: specs
                .iter()
                .map(|(_, distinct)| {
                    if *distinct {
                        Some(HashSet::new())
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }
}

/// Incremental hash-aggregation state: feed `(key, args)` pairs batch by
/// batch, then [`finish`](GroupedAggState::finish) to emit one row per
/// group in first-seen order.
pub struct GroupedAggState {
    /// `(function, distinct)` per aggregate.
    specs: Vec<(AggFunc, bool)>,
    /// `on_empty` results, for scalar aggregation over empty input.
    on_empty: Vec<Value>,
    groups: HashMap<Vec<Value>, GroupState>,
    order: Vec<Vec<Value>>,
    /// Memory charged for group state (detached unless the owner
    /// attached a budgeted reservation).
    mem: MemoryReservation,
}

/// Approximate heap footprint of one aggregate input value (DISTINCT
/// filter entries).
fn value_bytes(v: &Value) -> u64 {
    let heap = if let Value::Str(s) = v { s.len() } else { 0 };
    (std::mem::size_of::<Value>() + heap) as u64
}

impl GroupedAggState {
    /// Fresh state for a set of aggregate definitions.
    pub fn new(aggs: &[AggDef]) -> GroupedAggState {
        GroupedAggState {
            specs: aggs.iter().map(|a| (a.func, a.distinct)).collect(),
            on_empty: aggs.iter().map(|a| a.func.on_empty()).collect(),
            groups: HashMap::new(),
            order: Vec::new(),
            mem: MemoryReservation::detached("HashAggregate"),
        }
    }

    /// Attaches a memory reservation: every new group (and every DISTINCT
    /// filter entry) is charged against it from now on.
    pub fn set_reservation(&mut self, mem: MemoryReservation) {
        self.mem = mem;
    }

    /// Peak bytes this state's reservation has held.
    pub fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }

    /// Feeds one input row: its group key plus the evaluated argument of
    /// each aggregate (`None` for `COUNT(*)`). The key is cloned only
    /// when a new group is created.
    pub fn feed(&mut self, key: Vec<Value>, args: Vec<Option<Value>>) -> Result<()> {
        debug_assert_eq!(args.len(), self.specs.len());
        let state = match self.groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let bytes = {
                    let key = e.key();
                    let accs = self.specs.len()
                        * (std::mem::size_of::<AggAcc>()
                            + std::mem::size_of::<Option<HashSet<Value>>>());
                    2 * row_bytes(key) + accs as u64
                };
                self.mem.grow(bytes)?;
                self.order.push(e.key().clone());
                e.insert(GroupState::new(&self.specs))
            }
        };
        for (i, arg) in args.into_iter().enumerate() {
            if let Some(seen) = &mut state.seen[i] {
                // DISTINCT: skip repeated non-NULL values.
                if let Some(v) = &arg {
                    if !v.is_null() {
                        if !seen.insert(v.clone()) {
                            continue;
                        }
                        self.mem.grow(value_bytes(v))?;
                    }
                }
            }
            state.accs[i].update(arg.as_ref())?;
        }
        Ok(())
    }

    /// Number of distinct groups fed so far.
    pub fn group_count(&self) -> usize {
        self.order.len()
    }

    /// Folds another partial state (same specs) into this one. Groups
    /// unseen here are moved over wholesale (preserving `other`'s
    /// first-seen order after this state's own); shared groups merge
    /// accumulator-wise, with DISTINCT filters re-deduplicated against
    /// this state's seen sets.
    pub fn merge(&mut self, other: GroupedAggState) -> Result<()> {
        debug_assert_eq!(self.specs, other.specs);
        let mut other_groups = other.groups;
        for key in other.order {
            let theirs = other_groups.remove(&key).ok_or_else(|| {
                Error::internal("partial-aggregate group listed in order but missing from map")
            })?;
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    let bytes = {
                        let key = e.key();
                        let accs = self.specs.len()
                            * (std::mem::size_of::<AggAcc>()
                                + std::mem::size_of::<Option<HashSet<Value>>>());
                        2 * row_bytes(key) + accs as u64
                    };
                    self.mem.grow(bytes)?;
                    self.order.push(e.key().clone());
                    e.insert(theirs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    for (i, (acc, seen)) in theirs.accs.into_iter().zip(theirs.seen).enumerate() {
                        match seen {
                            // DISTINCT: replay only values this state has
                            // not yet seen; the partial accumulator is
                            // discarded (it may double-count values both
                            // workers saw).
                            Some(their_seen) => {
                                let my_seen = mine.seen[i].as_mut().ok_or_else(|| {
                                    Error::internal(
                                        "distinct filter missing while merging partial aggregates",
                                    )
                                })?;
                                for v in their_seen {
                                    if my_seen.insert(v.clone()) {
                                        mine.accs[i].update(Some(&v))?;
                                    }
                                }
                            }
                            None => mine.accs[i].merge(acc)?,
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Emits one row per group laid out as
    /// `group key values ++ aggregate results`.
    pub fn finish(mut self, kind: GroupKind) -> Vec<Row> {
        // Scalar aggregation over empty input: one row of agg(∅).
        if self.groups.is_empty() && matches!(kind, GroupKind::Scalar) {
            return vec![self.on_empty];
        }
        let mut out = Vec::with_capacity(self.order.len());
        for key in self.order {
            // Unreachable by construction: `feed`/`merge` insert into
            // `groups` and `order` together, and `finish` consumes self.
            let state = self
                .groups
                .remove(&key)
                .expect("every key in order has a group (feed/merge insert both)");
            let mut row = key;
            row.extend(state.accs.into_iter().map(AggAcc::finish));
            out.push(row);
        }
        out
    }
}

/// Hash aggregation over already-extracted inputs.
///
/// `rows` supplies, per input row, the group key and the evaluated
/// argument of each aggregate (`None` for `COUNT(*)`). Returns one row
/// per group laid out as `group key values ++ aggregate results`.
pub fn hash_aggregate(
    kind: GroupKind,
    aggs: &[AggDef],
    rows: impl IntoIterator<Item = (Vec<Value>, Vec<Option<Value>>)>,
) -> Result<Vec<Row>> {
    let mut state = GroupedAggState::new(aggs);
    for (key, args) in rows {
        state.feed(key, args)?;
    }
    Ok(state.finish(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_common::{ColId, DataType};
    use orthopt_ir::{ColumnMeta, ScalarExpr};

    fn sum_def() -> AggDef {
        AggDef::new(
            ColumnMeta::new(ColId(10), "s", DataType::Int, true),
            AggFunc::Sum,
            Some(ScalarExpr::col(ColId(1))),
        )
    }

    #[test]
    fn sum_skips_nulls() {
        let rows = vec![
            (vec![], vec![Some(Value::Int(1))]),
            (vec![], vec![Some(Value::Null)]),
            (vec![], vec![Some(Value::Int(2))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[sum_def()], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn scalar_agg_on_empty_input() {
        let out = hash_aggregate(GroupKind::Scalar, &[sum_def()], vec![]).unwrap();
        assert_eq!(out, vec![vec![Value::Null]]);
        let count = AggDef::new(
            ColumnMeta::new(ColId(11), "n", DataType::Int, false),
            AggFunc::CountStar,
            None,
        );
        let out = hash_aggregate(GroupKind::Scalar, &[count], vec![]).unwrap();
        assert_eq!(out, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn vector_agg_on_empty_input_is_empty() {
        let out = hash_aggregate(GroupKind::Vector, &[sum_def()], vec![]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn groups_by_key_with_null_group() {
        let rows = vec![
            (vec![Value::Int(1)], vec![Some(Value::Int(10))]),
            (vec![Value::Null], vec![Some(Value::Int(5))]),
            (vec![Value::Int(1)], vec![Some(Value::Int(20))]),
            (vec![Value::Null], vec![Some(Value::Int(6))]),
        ];
        let mut out = hash_aggregate(GroupKind::Vector, &[sum_def()], rows).unwrap();
        out.sort_by(orthopt_common::row::cmp_rows);
        assert_eq!(
            out,
            vec![
                vec![Value::Null, Value::Int(11)],
                vec![Value::Int(1), Value::Int(30)],
            ]
        );
    }

    #[test]
    fn count_expr_vs_count_star() {
        let count_star = AggDef::new(
            ColumnMeta::new(ColId(11), "n", DataType::Int, false),
            AggFunc::CountStar,
            None,
        );
        let count_col = AggDef::new(
            ColumnMeta::new(ColId(12), "c", DataType::Int, false),
            AggFunc::Count,
            Some(ScalarExpr::col(ColId(1))),
        );
        let rows = vec![
            (vec![], vec![None, Some(Value::Int(1))]),
            (vec![], vec![None, Some(Value::Null)]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[count_star, count_col], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(2), Value::Int(1)]]);
    }

    #[test]
    fn min_max_track_extremes() {
        let min = AggDef::new(
            ColumnMeta::new(ColId(11), "mn", DataType::Int, true),
            AggFunc::Min,
            Some(ScalarExpr::col(ColId(1))),
        );
        let max = AggDef::new(
            ColumnMeta::new(ColId(12), "mx", DataType::Int, true),
            AggFunc::Max,
            Some(ScalarExpr::col(ColId(1))),
        );
        let rows = vec![
            (vec![], vec![Some(Value::Int(3)), Some(Value::Int(3))]),
            (vec![], vec![Some(Value::Int(1)), Some(Value::Int(1))]),
            (vec![], vec![Some(Value::Int(2)), Some(Value::Int(2))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[min, max], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(1), Value::Int(3)]]);
    }

    #[test]
    fn avg_ignores_nulls_and_divides() {
        let avg = AggDef::new(
            ColumnMeta::new(ColId(11), "a", DataType::Float, true),
            AggFunc::Avg,
            Some(ScalarExpr::col(ColId(1))),
        );
        let rows = vec![
            (vec![], vec![Some(Value::Int(1))]),
            (vec![], vec![Some(Value::Null)]),
            (vec![], vec![Some(Value::Int(2))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[avg], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Float(1.5)]]);
    }

    #[test]
    fn distinct_sum_deduplicates() {
        let mut def = sum_def();
        def.distinct = true;
        let rows = vec![
            (vec![], vec![Some(Value::Int(5))]),
            (vec![], vec![Some(Value::Int(5))]),
            (vec![], vec![Some(Value::Int(3))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[def], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(8)]]);
    }

    #[test]
    fn all_null_group_sums_to_null() {
        let rows = vec![
            (vec![Value::Int(1)], vec![Some(Value::Null)]),
            (vec![Value::Int(1)], vec![Some(Value::Null)]),
        ];
        let out = hash_aggregate(GroupKind::Vector, &[sum_def()], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(1), Value::Null]]);
    }
}
