//! Aggregation core shared by the reference interpreter and the
//! physical engine.
//!
//! Implements the SQL semantics the paper leans on (§1.1): vector
//! aggregation is empty on empty input; scalar aggregation always emits
//! exactly one row with `agg(∅)` results; NULL inputs are skipped by all
//! aggregates; `COUNT(*)` counts rows. `LocalGroupBy` "need not be
//! different from a GroupBy" in the engine (§3.3) — it runs through the
//! same code path.

use std::collections::{HashMap, HashSet};

use orthopt_common::column::Column;
use orthopt_common::row::row_bytes;
use orthopt_common::{Error, MemoryReservation, Result, Row, Value};
use orthopt_ir::{AggDef, AggFunc, GroupKind};

use crate::vector::{hash_lanes, hash_values};

/// Running state of one aggregate over one group.
#[derive(Debug, Clone)]
pub enum AggAcc {
    /// COUNT(*) / COUNT(expr): running row count.
    Count(i64),
    /// SUM: running total (None until the first non-NULL input).
    Sum(Option<Value>),
    /// MIN.
    Min(Option<Value>),
    /// MAX.
    Max(Option<Value>),
    /// AVG: running (sum, count) over non-NULL inputs.
    Avg(f64, i64),
}

impl AggAcc {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc) -> AggAcc {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggAcc::Count(0),
            AggFunc::Sum => AggAcc::Sum(None),
            AggFunc::Min => AggAcc::Min(None),
            AggFunc::Max => AggAcc::Max(None),
            AggFunc::Avg => AggAcc::Avg(0.0, 0),
        }
    }

    /// Feeds one input value. `v` is `None` only for `COUNT(*)` (no
    /// argument); NULL argument values are skipped per SQL.
    pub fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggAcc::Count(n) => {
                match v {
                    // COUNT(*): every row counts.
                    None => *n += 1,
                    // COUNT(expr): only non-NULL values count.
                    Some(x) if !x.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            AggAcc::Sum(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *acc = Some(match acc.take() {
                            Some(cur) => cur.add(x)?,
                            None => x.clone(),
                        });
                    }
                }
            }
            AggAcc::Min(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        let better = acc
                            .as_ref()
                            .is_none_or(|cur| x.sql_cmp(cur) == Some(std::cmp::Ordering::Less));
                        if better {
                            *acc = Some(x.clone());
                        }
                    }
                }
            }
            AggAcc::Max(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        let better = acc
                            .as_ref()
                            .is_none_or(|cur| x.sql_cmp(cur) == Some(std::cmp::Ordering::Greater));
                        if better {
                            *acc = Some(x.clone());
                        }
                    }
                }
            }
            AggAcc::Avg(sum, n) => {
                if let Some(x) = v {
                    match x {
                        Value::Null => {}
                        Value::Int(i) => {
                            *sum += *i as f64;
                            *n += 1;
                        }
                        Value::Float(fl) => {
                            *sum += *fl;
                            *n += 1;
                        }
                        other => {
                            return Err(Error::TypeMismatch(format!(
                                "avg over non-numeric {other:?}"
                            )))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds another accumulator of the same function into this one —
    /// the global half of the §3.3 local/global split, used when
    /// thread-local partial aggregation states are merged at close.
    pub fn merge(&mut self, other: AggAcc) -> Result<()> {
        match (self, other) {
            (AggAcc::Count(n), AggAcc::Count(m)) => *n += m,
            (AggAcc::Sum(acc), AggAcc::Sum(v)) => {
                if let Some(x) = v {
                    *acc = Some(match acc.take() {
                        Some(cur) => cur.add(&x)?,
                        None => x,
                    });
                }
            }
            (acc @ AggAcc::Min(_), AggAcc::Min(v)) | (acc @ AggAcc::Max(_), AggAcc::Max(v)) => {
                if let Some(x) = v {
                    acc.update(Some(&x))?;
                }
            }
            (AggAcc::Avg(sum, n), AggAcc::Avg(s2, n2)) => {
                *sum += s2;
                *n += n2;
            }
            _ => return Err(Error::internal("merge of mismatched aggregate states")),
        }
        Ok(())
    }

    /// Final value of the aggregate for this group.
    pub fn finish(self) -> Value {
        match self {
            AggAcc::Count(n) => Value::Int(n),
            AggAcc::Sum(v) | AggAcc::Min(v) | AggAcc::Max(v) => v.unwrap_or(Value::Null),
            AggAcc::Avg(sum, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// State of one group: accumulators plus per-aggregate distinct filters.
struct GroupState {
    accs: Vec<AggAcc>,
    seen: Vec<Option<HashSet<Value>>>,
}

impl GroupState {
    fn new(specs: &[(AggFunc, bool)]) -> GroupState {
        GroupState {
            accs: specs.iter().map(|(f, _)| AggAcc::new(*f)).collect(),
            seen: specs
                .iter()
                .map(|(_, distinct)| {
                    if *distinct {
                        Some(HashSet::new())
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }
}

/// Incremental hash-aggregation state: feed `(key, args)` pairs batch by
/// batch, then [`finish`](GroupedAggState::finish) to emit one row per
/// group in first-seen order.
pub struct GroupedAggState {
    /// `(function, distinct)` per aggregate.
    specs: Vec<(AggFunc, bool)>,
    /// `on_empty` results, for scalar aggregation over empty input.
    on_empty: Vec<Value>,
    /// Key hash → group ids with that hash. Equality is resolved
    /// against `keys`, so the row-fed and column-fed paths share one
    /// table (the hash of a key is precomputable from column lanes
    /// without materializing a `Vec<Value>` per row).
    index: HashMap<u64, Vec<u32>>,
    /// Group keys in first-seen order; `keys[g]` pairs with `states[g]`.
    keys: Vec<Row>,
    states: Vec<GroupState>,
    /// Memory charged for group state (detached unless the owner
    /// attached a budgeted reservation).
    mem: MemoryReservation,
}

/// Result of a row-atomic [`GroupedAggState::feed_or_reject`].
pub enum FeedOutcome {
    /// The row was admitted and fully applied.
    Fed,
    /// The reservation refused the row's charge. No state mutated; the
    /// row is handed back so the caller can spill it.
    Refused {
        /// The group key, returned unconsumed.
        key: Row,
        /// The evaluated aggregate arguments, returned unconsumed.
        args: Vec<Option<Value>>,
        /// The refusing [`Error::ResourceExhausted`].
        err: Error,
    },
}

/// Approximate heap footprint of one aggregate input value (DISTINCT
/// filter entries).
fn value_bytes(v: &Value) -> u64 {
    let heap = if let Value::Str(s) = v { s.len() } else { 0 };
    (std::mem::size_of::<Value>() + heap) as u64
}

impl GroupedAggState {
    /// Fresh state for a set of aggregate definitions.
    pub fn new(aggs: &[AggDef]) -> GroupedAggState {
        GroupedAggState {
            specs: aggs.iter().map(|a| (a.func, a.distinct)).collect(),
            on_empty: aggs.iter().map(|a| a.func.on_empty()).collect(),
            index: HashMap::new(),
            keys: Vec::new(),
            states: Vec::new(),
            mem: MemoryReservation::detached("HashAggregate"),
        }
    }

    /// Attaches a memory reservation: every new group (and every DISTINCT
    /// filter entry) is charged against it from now on.
    pub fn set_reservation(&mut self, mem: MemoryReservation) {
        self.mem = mem;
    }

    /// Peak bytes this state's reservation has held.
    pub fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }

    /// Finds an existing group by hash + per-key equality probe.
    fn find(&self, hash: u64, eq: impl Fn(&[Value]) -> bool) -> Option<usize> {
        self.index
            .get(&hash)?
            .iter()
            .copied()
            .find(|&g| eq(&self.keys[g as usize]))
            .map(|g| g as usize)
    }

    /// Bytes one new group costs: the key's own copy plus the hash-table
    /// entry, plus the accumulator slots.
    fn group_bytes(&self, key: &Row) -> u64 {
        let accs = self.specs.len()
            * (std::mem::size_of::<AggAcc>() + std::mem::size_of::<Option<HashSet<Value>>>());
        2 * row_bytes(key) + accs as u64
    }

    /// Whether feeding `v` into aggregate `i` of group `gid` would admit
    /// a new DISTINCT filter entry (and therefore charge its bytes).
    /// `gid` is `None` for a not-yet-inserted group, whose filters are
    /// all empty.
    fn distinct_admits(&self, gid: Option<usize>, i: usize, v: &Value) -> bool {
        if !self.specs[i].1 || v.is_null() {
            return false;
        }
        match gid {
            None => true,
            Some(g) => self.states[g].seen[i]
                .as_ref()
                .is_some_and(|seen| !seen.contains(v)),
        }
    }

    /// Registers a new group whose bytes were already charged.
    fn insert_group_prepaid(&mut self, hash: u64, key: Row) -> usize {
        let gid = self.keys.len();
        self.keys.push(key);
        self.states.push(GroupState::new(&self.specs));
        self.index.entry(hash).or_default().push(gid as u32);
        gid
    }

    /// Registers a new group, charging the reservation for the key (its
    /// own copy plus the hash-table entry) and the accumulator slots.
    fn insert_group(&mut self, hash: u64, key: Row) -> Result<usize> {
        self.mem.grow(self.group_bytes(&key))?;
        Ok(self.insert_group_prepaid(hash, key))
    }

    /// Feeds one aggregate's argument into one group, enforcing the
    /// DISTINCT filter. The memory charge happened up front (see
    /// [`feed_or_reject`](GroupedAggState::feed_or_reject)), so this
    /// never refuses.
    fn apply_arg(&mut self, gid: usize, i: usize, arg: Option<Value>) -> Result<()> {
        let state = &mut self.states[gid];
        if let Some(seen) = &mut state.seen[i] {
            // DISTINCT: skip repeated non-NULL values.
            if let Some(v) = &arg {
                if !v.is_null() && !seen.insert(v.clone()) {
                    return Ok(());
                }
            }
        }
        self.states[gid].accs[i].update(arg.as_ref())
    }

    /// Feeds one input row: its group key plus the evaluated argument of
    /// each aggregate (`None` for `COUNT(*)`). The key is moved only
    /// when a new group is created.
    pub fn feed(&mut self, key: Vec<Value>, args: Vec<Option<Value>>) -> Result<()> {
        match self.feed_or_reject(key, args)? {
            FeedOutcome::Fed => Ok(()),
            FeedOutcome::Refused { err, .. } => Err(err),
        }
    }

    /// Row-atomic feed: the row's whole memory cost — a new group if its
    /// key is unseen, plus every DISTINCT filter admission — is charged
    /// *before* any state mutates. A refused charge therefore leaves the
    /// state exactly as it was and hands the row back to the caller,
    /// which can spill it; any other error propagates.
    pub fn feed_or_reject(
        &mut self,
        key: Vec<Value>,
        args: Vec<Option<Value>>,
    ) -> Result<FeedOutcome> {
        debug_assert_eq!(args.len(), self.specs.len());
        let hash = hash_values(&key);
        let gid = self.find(hash, |k| k == key.as_slice());
        let mut charge = if gid.is_none() {
            self.group_bytes(&key)
        } else {
            0
        };
        for (i, arg) in args.iter().enumerate() {
            if let Some(v) = arg {
                if self.distinct_admits(gid, i, v) {
                    charge += value_bytes(v);
                }
            }
        }
        if let Err(err) = self.mem.grow(charge) {
            if matches!(err, Error::ResourceExhausted { .. }) {
                return Ok(FeedOutcome::Refused { key, args, err });
            }
            return Err(err);
        }
        let gid = match gid {
            Some(g) => g,
            None => self.insert_group_prepaid(hash, key),
        };
        for (i, arg) in args.into_iter().enumerate() {
            self.apply_arg(gid, i, arg)?;
        }
        Ok(FeedOutcome::Fed)
    }

    /// Columnar feed: one call per batch. `key_cols` are the group-key
    /// columns, `arg_cols` the pre-evaluated argument column per
    /// aggregate (`None` for `COUNT(*)`). Group lookup hashes lanes
    /// directly off the columns and compares via [`Column::lane_eq`], so
    /// no per-row key `Vec` is allocated for already-seen groups; state
    /// updates run in the same (row-major, aggregate-minor) order as the
    /// row path, so errors and DISTINCT behavior are identical.
    pub fn feed_lanes(
        &mut self,
        key_cols: &[&Column],
        arg_cols: &[Option<Column>],
        len: usize,
    ) -> Result<()> {
        match self.feed_lanes_or_reject(key_cols, arg_cols, len)? {
            (_, Some(err)) => Err(err),
            _ => Ok(()),
        }
    }

    /// Lane-atomic columnar feed: stops at the first lane whose memory
    /// charge is refused instead of erroring. Returns how many lanes
    /// were fully applied plus the refusal, if any — the state is
    /// consistent either way, and the caller can spill lanes
    /// `applied..len`.
    pub fn feed_lanes_or_reject(
        &mut self,
        key_cols: &[&Column],
        arg_cols: &[Option<Column>],
        len: usize,
    ) -> Result<(usize, Option<Error>)> {
        debug_assert_eq!(arg_cols.len(), self.specs.len());
        let hashes = hash_lanes(key_cols, len);
        for (i, &h) in hashes.iter().enumerate() {
            let gid = self.find(h, |k| key_cols.iter().zip(k).all(|(c, v)| c.lane_eq(i, v)));
            // Only a new group materializes its key `Vec` here, same as
            // the all-resident path always has.
            let key: Option<Row> = match gid {
                Some(_) => None,
                None => Some(key_cols.iter().map(|c| c.value(i)).collect()),
            };
            let mut charge = key.as_ref().map_or(0, |k| self.group_bytes(k));
            for (a, col) in arg_cols.iter().enumerate() {
                if !self.specs[a].1 {
                    continue;
                }
                let Some(c) = col else { continue };
                let v = c.value(i);
                if self.distinct_admits(gid, a, &v) {
                    charge += value_bytes(&v);
                }
            }
            if let Err(err) = self.mem.grow(charge) {
                if matches!(err, Error::ResourceExhausted { .. }) {
                    return Ok((i, Some(err)));
                }
                return Err(err);
            }
            let gid = match gid {
                Some(g) => g,
                None => self.insert_group_prepaid(h, key.expect("new group has a key")),
            };
            for (a, col) in arg_cols.iter().enumerate() {
                self.apply_arg(gid, a, col.as_ref().map(|c| c.value(i)))?;
            }
        }
        Ok((len, None))
    }

    /// Number of distinct groups fed so far.
    pub fn group_count(&self) -> usize {
        self.keys.len()
    }

    /// Worst-case bytes [`feed`](GroupedAggState::feed) could charge for
    /// one `(key, args)` row: a brand-new group (key copy, table entry,
    /// accumulator slots) plus every DISTINCT filter admitting its
    /// value. The spillable aggregation pre-probes this bound per batch
    /// so `feed` — which charges mid-mutation and is not row-atomic —
    /// never sees a refusal once the batch is admitted.
    pub fn feed_bound(&self, key: &Row, args: &[Option<Value>]) -> u64 {
        let accs = self.specs.len()
            * (std::mem::size_of::<AggAcc>() + std::mem::size_of::<Option<HashSet<Value>>>());
        let mut b = 2 * row_bytes(key) + accs as u64;
        for ((_, distinct), arg) in self.specs.iter().zip(args) {
            if *distinct {
                if let Some(v) = arg {
                    b += value_bytes(v);
                }
            }
        }
        b
    }

    /// Splits this state into `n` states, routing each group by
    /// `route(&key)`. Group keys and accumulators move wholesale (no
    /// re-aggregation); each returned state keeps the groups in this
    /// state's first-seen order. The returned states carry detached
    /// reservations — the bytes were already charged to this state's
    /// reservation, which is released when `self` is consumed here, and
    /// the spillable aggregation drains the splits one partition at a
    /// time immediately after.
    pub fn split_by(self, n: usize, route: impl Fn(&Row) -> usize) -> Vec<GroupedAggState> {
        let mut out: Vec<GroupedAggState> = (0..n)
            .map(|_| GroupedAggState {
                specs: self.specs.clone(),
                on_empty: self.on_empty.clone(),
                index: HashMap::new(),
                keys: Vec::new(),
                states: Vec::new(),
                mem: MemoryReservation::detached("HashAggregate"),
            })
            .collect();
        for (key, state) in self.keys.into_iter().zip(self.states) {
            let p = route(&key);
            let target = &mut out[p];
            let hash = hash_values(&key);
            let gid = target.keys.len();
            target.keys.push(key);
            target.states.push(state);
            target.index.entry(hash).or_default().push(gid as u32);
        }
        out
    }

    /// Folds another partial state (same specs) into this one. Groups
    /// unseen here are moved over wholesale (preserving `other`'s
    /// first-seen order after this state's own); shared groups merge
    /// accumulator-wise, with DISTINCT filters re-deduplicated against
    /// this state's seen sets.
    pub fn merge(&mut self, other: GroupedAggState) -> Result<()> {
        debug_assert_eq!(self.specs, other.specs);
        for (key, theirs) in other.keys.into_iter().zip(other.states) {
            let hash = hash_values(&key);
            match self.find(hash, |k| k == key.as_slice()) {
                None => {
                    let gid = self.insert_group(hash, key)?;
                    self.states[gid] = theirs;
                }
                Some(gid) => {
                    let mine = &mut self.states[gid];
                    for (i, (acc, seen)) in theirs.accs.into_iter().zip(theirs.seen).enumerate() {
                        match seen {
                            // DISTINCT: replay only values this state has
                            // not yet seen; the partial accumulator is
                            // discarded (it may double-count values both
                            // workers saw).
                            Some(their_seen) => {
                                let my_seen = mine.seen[i].as_mut().ok_or_else(|| {
                                    Error::internal(
                                        "distinct filter missing while merging partial aggregates",
                                    )
                                })?;
                                for v in their_seen {
                                    if my_seen.insert(v.clone()) {
                                        mine.accs[i].update(Some(&v))?;
                                    }
                                }
                            }
                            None => mine.accs[i].merge(acc)?,
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Emits one row per group laid out as
    /// `group key values ++ aggregate results`, in first-seen order.
    pub fn finish(self, kind: GroupKind) -> Vec<Row> {
        // Scalar aggregation over empty input: one row of agg(∅).
        if self.keys.is_empty() && matches!(kind, GroupKind::Scalar) {
            return vec![self.on_empty];
        }
        self.keys
            .into_iter()
            .zip(self.states)
            .map(|(key, state)| {
                let mut row = key;
                row.extend(state.accs.into_iter().map(AggAcc::finish));
                row
            })
            .collect()
    }
}

/// Hash aggregation over already-extracted inputs.
///
/// `rows` supplies, per input row, the group key and the evaluated
/// argument of each aggregate (`None` for `COUNT(*)`). Returns one row
/// per group laid out as `group key values ++ aggregate results`.
pub fn hash_aggregate(
    kind: GroupKind,
    aggs: &[AggDef],
    rows: impl IntoIterator<Item = (Vec<Value>, Vec<Option<Value>>)>,
) -> Result<Vec<Row>> {
    let mut state = GroupedAggState::new(aggs);
    for (key, args) in rows {
        state.feed(key, args)?;
    }
    Ok(state.finish(kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_common::{ColId, DataType};
    use orthopt_ir::{ColumnMeta, ScalarExpr};

    fn sum_def() -> AggDef {
        AggDef::new(
            ColumnMeta::new(ColId(10), "s", DataType::Int, true),
            AggFunc::Sum,
            Some(ScalarExpr::col(ColId(1))),
        )
    }

    #[test]
    fn sum_skips_nulls() {
        let rows = vec![
            (vec![], vec![Some(Value::Int(1))]),
            (vec![], vec![Some(Value::Null)]),
            (vec![], vec![Some(Value::Int(2))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[sum_def()], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn scalar_agg_on_empty_input() {
        let out = hash_aggregate(GroupKind::Scalar, &[sum_def()], vec![]).unwrap();
        assert_eq!(out, vec![vec![Value::Null]]);
        let count = AggDef::new(
            ColumnMeta::new(ColId(11), "n", DataType::Int, false),
            AggFunc::CountStar,
            None,
        );
        let out = hash_aggregate(GroupKind::Scalar, &[count], vec![]).unwrap();
        assert_eq!(out, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn vector_agg_on_empty_input_is_empty() {
        let out = hash_aggregate(GroupKind::Vector, &[sum_def()], vec![]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn groups_by_key_with_null_group() {
        let rows = vec![
            (vec![Value::Int(1)], vec![Some(Value::Int(10))]),
            (vec![Value::Null], vec![Some(Value::Int(5))]),
            (vec![Value::Int(1)], vec![Some(Value::Int(20))]),
            (vec![Value::Null], vec![Some(Value::Int(6))]),
        ];
        let mut out = hash_aggregate(GroupKind::Vector, &[sum_def()], rows).unwrap();
        out.sort_by(orthopt_common::row::cmp_rows);
        assert_eq!(
            out,
            vec![
                vec![Value::Null, Value::Int(11)],
                vec![Value::Int(1), Value::Int(30)],
            ]
        );
    }

    #[test]
    fn count_expr_vs_count_star() {
        let count_star = AggDef::new(
            ColumnMeta::new(ColId(11), "n", DataType::Int, false),
            AggFunc::CountStar,
            None,
        );
        let count_col = AggDef::new(
            ColumnMeta::new(ColId(12), "c", DataType::Int, false),
            AggFunc::Count,
            Some(ScalarExpr::col(ColId(1))),
        );
        let rows = vec![
            (vec![], vec![None, Some(Value::Int(1))]),
            (vec![], vec![None, Some(Value::Null)]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[count_star, count_col], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(2), Value::Int(1)]]);
    }

    #[test]
    fn min_max_track_extremes() {
        let min = AggDef::new(
            ColumnMeta::new(ColId(11), "mn", DataType::Int, true),
            AggFunc::Min,
            Some(ScalarExpr::col(ColId(1))),
        );
        let max = AggDef::new(
            ColumnMeta::new(ColId(12), "mx", DataType::Int, true),
            AggFunc::Max,
            Some(ScalarExpr::col(ColId(1))),
        );
        let rows = vec![
            (vec![], vec![Some(Value::Int(3)), Some(Value::Int(3))]),
            (vec![], vec![Some(Value::Int(1)), Some(Value::Int(1))]),
            (vec![], vec![Some(Value::Int(2)), Some(Value::Int(2))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[min, max], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(1), Value::Int(3)]]);
    }

    #[test]
    fn avg_ignores_nulls_and_divides() {
        let avg = AggDef::new(
            ColumnMeta::new(ColId(11), "a", DataType::Float, true),
            AggFunc::Avg,
            Some(ScalarExpr::col(ColId(1))),
        );
        let rows = vec![
            (vec![], vec![Some(Value::Int(1))]),
            (vec![], vec![Some(Value::Null)]),
            (vec![], vec![Some(Value::Int(2))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[avg], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Float(1.5)]]);
    }

    #[test]
    fn distinct_sum_deduplicates() {
        let mut def = sum_def();
        def.distinct = true;
        let rows = vec![
            (vec![], vec![Some(Value::Int(5))]),
            (vec![], vec![Some(Value::Int(5))]),
            (vec![], vec![Some(Value::Int(3))]),
        ];
        let out = hash_aggregate(GroupKind::Scalar, &[def], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(8)]]);
    }

    #[test]
    fn all_null_group_sums_to_null() {
        let rows = vec![
            (vec![Value::Int(1)], vec![Some(Value::Null)]),
            (vec![Value::Int(1)], vec![Some(Value::Null)]),
        ];
        let out = hash_aggregate(GroupKind::Vector, &[sum_def()], rows).unwrap();
        assert_eq!(out, vec![vec![Value::Int(1), Value::Null]]);
    }
}
