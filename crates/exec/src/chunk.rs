//! Materialized row batches with a column layout.

use orthopt_common::{ColId, Error, Result, Row, Value};

/// A materialized intermediate result: a bag of rows plus the layout
/// saying which [`ColId`] lives at which position.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Column ids, positionally matching each row.
    pub cols: Vec<ColId>,
    /// Row data.
    pub rows: Vec<Row>,
}

impl Chunk {
    /// Builds a chunk, checking in debug builds that every row's arity
    /// matches the layout.
    pub fn new(cols: Vec<ColId>, rows: Vec<Row>) -> Self {
        debug_assert!(
            rows.iter().all(|r| r.len() == cols.len()),
            "chunk arity mismatch: layout has {} columns",
            cols.len()
        );
        Chunk { cols, rows }
    }

    /// An empty chunk with the given layout.
    pub fn empty(cols: Vec<ColId>) -> Self {
        Chunk { cols, rows: vec![] }
    }

    /// Position of a column in the layout.
    pub fn col_pos(&self, id: ColId) -> Option<usize> {
        self.cols.iter().position(|c| *c == id)
    }

    /// Position of a column, as an internal-error `Result`.
    pub fn require_pos(&self, id: ColId) -> Result<usize> {
        self.col_pos(id)
            .ok_or_else(|| Error::internal(format!("column {id} missing from chunk layout")))
    }

    /// Extracts the values of `ids` from one row of this chunk.
    pub fn key_of(&self, row: &[Value], ids: &[ColId]) -> Result<Vec<Value>> {
        ids.iter()
            .map(|id| Ok(row[self.require_pos(*id)?].clone()))
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Reorders/prunes columns to exactly `ids` (each must exist).
    pub fn project(&self, ids: &[ColId]) -> Result<Chunk> {
        let positions: Vec<usize> = ids
            .iter()
            .map(|id| self.require_pos(*id))
            .collect::<Result<_>>()?;
        let rows = self
            .rows
            .iter()
            .map(|r| positions.iter().map(|&p| r[p].clone()).collect())
            .collect();
        Ok(Chunk {
            cols: ids.to_vec(),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk() -> Chunk {
        Chunk {
            cols: vec![ColId(1), ColId(2)],
            rows: vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(2), Value::str("b")],
            ],
        }
    }

    #[test]
    fn col_pos_finds_columns() {
        let c = chunk();
        assert_eq!(c.col_pos(ColId(2)), Some(1));
        assert_eq!(c.col_pos(ColId(9)), None);
        assert!(c.require_pos(ColId(9)).is_err());
    }

    #[test]
    fn project_reorders() {
        let c = chunk().project(&[ColId(2), ColId(1)]).unwrap();
        assert_eq!(c.cols, vec![ColId(2), ColId(1)]);
        assert_eq!(c.rows[0], vec![Value::str("a"), Value::Int(1)]);
    }

    #[test]
    fn key_of_extracts_values() {
        let c = chunk();
        let k = c.key_of(&c.rows[1], &[ColId(2)]).unwrap();
        assert_eq!(k, vec![Value::str("b")]);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn malformed_chunk_is_caught_in_debug_builds() {
        let err = std::panic::catch_unwind(|| {
            Chunk::new(
                vec![ColId(1), ColId(2)],
                vec![vec![Value::Int(1)]], // arity 1 != layout arity 2
            )
        });
        assert!(err.is_err());
    }
}
