//! Vectorized scalar kernels over [`Column`]s.
//!
//! [`eval_column`] walks a scalar expression **once per batch** and
//! evaluates every lane in tight loops, instead of re-walking the tree
//! for every row the way [`crate::eval::eval`] does. Hot typed
//! combinations (int/float/date comparisons and arithmetic, possibly
//! against a constant) run branch-light kernels over the typed storage;
//! everything else goes through a generic lane loop that calls the
//! *same* value-level primitives as the row evaluator, so results are
//! identical by construction.
//!
//! Error contract: kernels evaluate eagerly across all lanes, so they
//! may surface an error for a lane the short-circuiting row evaluator
//! would never have reached, or surface errors in a different order.
//! Callers therefore treat any `Err` as "this batch needs the row
//! path": they re-run the whole batch row-at-a-time, which reproduces
//! the exact row-ordered error (or the successful result, if the row
//! path short-circuits around the failing lane). Kernels never mutate
//! operator state, so the fallback is always safe.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use orthopt_common::column::{Bitmap, ColData, Column, ColumnData};
use orthopt_common::{ColId, Error, Result, Row, Value};
use orthopt_ir::{ArithOp, CmpOp, Quant, ScalarExpr};

use crate::bindings::Bindings;
use crate::eval::PosMap;

/// Per-batch evaluation context for the vectorized path.
pub struct VecEval<'a> {
    /// Layout of the batch.
    pub cols: &'a [ColId],
    /// Position map for `cols`, resolved once per operator.
    pub pos: &'a PosMap,
    /// The batch's columns (same order as `cols`).
    pub columns: &'a [Column],
    /// Number of lanes (rows) in the batch.
    pub len: usize,
    /// Outer parameter bindings.
    pub binds: &'a Bindings,
}

/// A kernel operand: either a real column or an unexpanded constant
/// (literals and parameter bindings broadcast lazily, so `x < 10`
/// never materializes a column of tens).
enum VCol {
    Col(Column),
    Const(Value),
}

impl VCol {
    fn value(&self, i: usize) -> Value {
        match self {
            VCol::Col(c) => c.value(i),
            VCol::Const(v) => v.clone(),
        }
    }
}

/// Evaluates `expr` over every lane of the batch, returning a column of
/// `cx.len` results. Any `Err` means "fall back to the row path for
/// this batch" — see the module docs for the contract.
pub fn eval_column(expr: &ScalarExpr, cx: &VecEval<'_>) -> Result<Column> {
    Ok(materialize(eval_v(expr, cx)?, cx.len))
}

fn materialize(v: VCol, len: usize) -> Column {
    match v {
        VCol::Col(c) => c,
        VCol::Const(val) => Column::from_values(vec![val; len]),
    }
}

fn eval_v(expr: &ScalarExpr, cx: &VecEval<'_>) -> Result<VCol> {
    match expr {
        ScalarExpr::Column(id) => {
            if let Some(p) = cx.pos.get(*id) {
                return Ok(VCol::Col(cx.columns[p].clone()));
            }
            cx.binds
                .get(*id)
                .cloned()
                .map(VCol::Const)
                .ok_or_else(|| Error::UnknownColumn(id.to_string()))
        }
        ScalarExpr::Literal(v) => Ok(VCol::Const(v.clone())),
        ScalarExpr::Cmp { op, left, right } => {
            let l = eval_v(left, cx)?;
            let r = eval_v(right, cx)?;
            cmp_kernel(*op, &l, &r, cx.len)
        }
        ScalarExpr::Arith { op, left, right } => {
            let l = eval_v(left, cx)?;
            let r = eval_v(right, cx)?;
            arith_kernel(*op, &l, &r, cx.len)
        }
        ScalarExpr::Neg(e) => {
            let v = eval_v(e, cx)?;
            match v {
                VCol::Const(c) => Ok(VCol::Const(c.neg()?)),
                VCol::Col(c) => {
                    let mut out = Vec::with_capacity(cx.len);
                    for i in 0..cx.len {
                        out.push(c.value(i).neg()?);
                    }
                    Ok(VCol::Col(Column::from_values(out)))
                }
            }
        }
        ScalarExpr::And(parts) => bool_fold(parts, cx, true),
        ScalarExpr::Or(parts) => bool_fold(parts, cx, false),
        ScalarExpr::Not(e) => {
            let v = eval_v(e, cx)?;
            let mut flags = Vec::with_capacity(cx.len);
            for i in 0..cx.len {
                flags.push(orthopt_common::value::not3(bool3_at(&v, i)?));
            }
            Ok(VCol::Col(bool3_column(&flags)))
        }
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval_v(expr, cx)?;
            match v {
                VCol::Const(c) => Ok(VCol::Const(Value::Bool(c.is_null() != *negated))),
                VCol::Col(c) => {
                    let flags: Vec<bool> = (0..cx.len).map(|i| c.is_valid(i) == *negated).collect();
                    let validity = Bitmap::new_valid(cx.len);
                    Ok(VCol::Col(Column::from_data(ColumnData {
                        data: ColData::Bool(flags),
                        validity,
                    })))
                }
            }
        }
        ScalarExpr::Case {
            operand,
            whens,
            else_,
        } => {
            // Eager: evaluate every arm over every lane, then select per
            // lane. Arms have no side effects; an error in an arm the
            // row path would have skipped triggers the row fallback,
            // which then takes the lazy route.
            let comparand = operand.as_ref().map(|o| eval_v(o, cx)).transpose()?;
            let arms: Vec<(VCol, VCol)> = whens
                .iter()
                .map(|(w, t)| Ok((eval_v(w, cx)?, eval_v(t, cx)?)))
                .collect::<Result<_>>()?;
            let else_v = else_.as_ref().map(|e| eval_v(e, cx)).transpose()?;
            let mut out = Vec::with_capacity(cx.len);
            'lanes: for i in 0..cx.len {
                for (w, t) in &arms {
                    let fire = match &comparand {
                        Some(c) => c.value(i).sql_eq(&w.value(i)) == Some(true),
                        None => bool3_at(w, i)? == Some(true),
                    };
                    if fire {
                        out.push(t.value(i));
                        continue 'lanes;
                    }
                }
                out.push(match &else_v {
                    Some(e) => e.value(i),
                    None => Value::Null,
                });
            }
            Ok(VCol::Col(Column::from_values(out)))
        }
        ScalarExpr::Subquery(_)
        | ScalarExpr::Exists { .. }
        | ScalarExpr::InSubquery { .. }
        | ScalarExpr::QuantifiedCmp {
            op: _,
            quant: Quant::Any | Quant::All,
            ..
        } => Err(Error::internal(
            "subquery in scalar expression after normalization",
        )),
    }
}

/// Lane-wise 3-valued AND/OR fold over the parts. Unlike the row path
/// this does not short-circuit — 3-valued AND/OR are commutative on
/// *values*, and error divergence is covered by the row fallback.
fn bool_fold(parts: &[ScalarExpr], cx: &VecEval<'_>, is_and: bool) -> Result<VCol> {
    // Identity: TRUE for AND, FALSE for OR. A lane is *decided* once it
    // reaches the absorbing value (FALSE for AND, TRUE for OR) — the
    // combine loop then skips it, including its `as_bool3` conversion,
    // which mirrors the row path's short-circuit on non-boolean lanes.
    let mut acc = vec![Some(is_and); cx.len];
    let mut decided = 0usize;
    for p in parts {
        if decided == cx.len {
            break;
        }
        let v = eval_v(p, cx)?;
        for (i, a) in acc.iter_mut().enumerate() {
            if *a == Some(!is_and) {
                continue;
            }
            let b = bool3_at(&v, i)?;
            let next = if is_and {
                orthopt_common::value::and3(*a, b)
            } else {
                orthopt_common::value::or3(*a, b)
            };
            if next == Some(!is_and) {
                decided += 1;
            }
            *a = next;
        }
    }
    Ok(VCol::Col(bool3_column(&acc)))
}

/// Reads lane `i` of a boolean operand under `as_bool3` semantics.
fn bool3_at(v: &VCol, i: usize) -> Result<Option<bool>> {
    match v {
        VCol::Const(c) => c.as_bool3(),
        VCol::Col(c) => {
            let (data, validity, off) = c.parts();
            match data {
                ColData::Bool(d) => Ok(if validity.get(off + i) {
                    Some(d[off + i])
                } else {
                    None
                }),
                _ => c.value(i).as_bool3(),
            }
        }
    }
}

/// Packs 3-valued booleans into a Bool column with validity.
fn bool3_column(flags: &[Option<bool>]) -> Column {
    let validity = Bitmap::from_flags(flags.iter().map(Option::is_some));
    let data = ColData::Bool(flags.iter().map(|f| f.unwrap_or(false)).collect());
    Column::from_data(ColumnData { data, validity })
}

fn ord_test(op: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => o == Equal,
        CmpOp::Ne => o != Equal,
        CmpOp::Lt => o == Less,
        CmpOp::Le => o != Greater,
        CmpOp::Gt => o == Greater,
        CmpOp::Ge => o != Less,
    }
}

/// Comparison kernel. Typed column/column and column/constant fast
/// paths avoid `Value` materialization entirely; everything else goes
/// through the generic lane loop over [`Value::sql_cmp`].
fn cmp_kernel(op: CmpOp, l: &VCol, r: &VCol, len: usize) -> Result<VCol> {
    // Macro for typed same-representation comparisons: lane loop over
    // the raw vectors, NULL lanes yield NULL.
    macro_rules! typed_cmp {
        ($la:expr, $lv:expr, $lo:expr, $ra:expr, $rv:expr, $ro:expr, $cmp:expr) => {{
            let mut flags = Vec::with_capacity(len);
            for i in 0..len {
                flags.push(if $la.get($lo + i) && $ra.get($ro + i) {
                    Some(ord_test(op, $cmp(&$lv[$lo + i], &$rv[$ro + i])))
                } else {
                    None
                });
            }
            return Ok(VCol::Col(bool3_column(&flags)));
        }};
    }
    macro_rules! typed_cmp_const {
        ($la:expr, $lv:expr, $lo:expr, $k:expr, $cmp:expr) => {{
            let mut flags = Vec::with_capacity(len);
            for i in 0..len {
                flags.push(if $la.get($lo + i) {
                    Some(ord_test(op, $cmp(&$lv[$lo + i], $k)))
                } else {
                    None
                });
            }
            return Ok(VCol::Col(bool3_column(&flags)));
        }};
    }
    match (l, r) {
        (VCol::Col(a), VCol::Col(b)) => {
            let (da, va, oa) = a.parts();
            let (db, vb, ob) = b.parts();
            match (da, db) {
                (ColData::Int(x), ColData::Int(y)) => {
                    typed_cmp!(va, x, oa, vb, y, ob, |p: &i64, q: &i64| p.cmp(q))
                }
                (ColData::Float(x), ColData::Float(y)) => {
                    typed_cmp!(va, x, oa, vb, y, ob, |p: &f64, q: &f64| p.total_cmp(q))
                }
                (ColData::Date(x), ColData::Date(y)) => {
                    typed_cmp!(va, x, oa, vb, y, ob, |p: &i32, q: &i32| p.cmp(q))
                }
                (ColData::Str(x), ColData::Str(y)) => {
                    typed_cmp!(
                        va,
                        x,
                        oa,
                        vb,
                        y,
                        ob,
                        |p: &std::sync::Arc<str>, q: &std::sync::Arc<str>| {
                            p.as_ref().cmp(q.as_ref())
                        }
                    )
                }
                _ => {}
            }
        }
        (VCol::Col(a), VCol::Const(k)) if !k.is_null() => {
            let (da, va, oa) = a.parts();
            match (da, k) {
                (ColData::Int(x), Value::Int(q)) => {
                    typed_cmp_const!(va, x, oa, q, |p: &i64, q: &i64| p.cmp(q))
                }
                (ColData::Float(x), Value::Float(q)) => {
                    typed_cmp_const!(va, x, oa, q, |p: &f64, q: &f64| p.total_cmp(q))
                }
                (ColData::Date(x), Value::Date(q)) => {
                    typed_cmp_const!(va, x, oa, q, |p: &i32, q: &i32| p.cmp(q))
                }
                (ColData::Str(x), Value::Str(q)) => {
                    typed_cmp_const!(
                        va,
                        x,
                        oa,
                        q,
                        |p: &std::sync::Arc<str>, q: &std::sync::Arc<str>| {
                            p.as_ref().cmp(q.as_ref())
                        }
                    )
                }
                _ => {}
            }
        }
        (VCol::Const(k), VCol::Col(a)) if !k.is_null() => {
            // Mirror: compare with flipped ordering.
            let flipped = cmp_kernel(
                flip(op),
                &VCol::Col(a.clone()),
                &VCol::Const(k.clone()),
                len,
            )?;
            return Ok(flipped);
        }
        (VCol::Const(a), VCol::Const(b)) => {
            return Ok(VCol::Const(crate::eval::cmp_values(op, a, b)));
        }
        _ => {}
    }
    // Generic lane loop — same primitive as the row path.
    let mut flags = Vec::with_capacity(len);
    for i in 0..len {
        flags.push(l.value(i).sql_cmp(&r.value(i)).map(|o| ord_test(op, o)));
    }
    Ok(VCol::Col(bool3_column(&flags)))
}

/// `a op b` with operands swapped: `a < b` ⇔ `b > a`.
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

/// Arithmetic kernel. Int/Int and Float/Float (including constants) run
/// typed; mixed or exotic operands use the generic loop over the value
/// primitives. Overflow / divide-by-zero surface as `Err` (→ row
/// fallback reproduces the row-ordered error).
fn arith_kernel(op: ArithOp, l: &VCol, r: &VCol, len: usize) -> Result<VCol> {
    if let (VCol::Const(a), VCol::Const(b)) = (l, r) {
        return Ok(VCol::Const(apply_arith(op, a, b)?));
    }
    if !matches!(op, ArithOp::Div) {
        if let Some(col) = arith_fast(op, l, r, len)? {
            return Ok(VCol::Col(col));
        }
    }
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        out.push(apply_arith(op, &l.value(i), &r.value(i))?);
    }
    Ok(VCol::Col(Column::from_values(out)))
}

fn apply_arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    match op {
        ArithOp::Add => a.add(b),
        ArithOp::Sub => a.sub(b),
        ArithOp::Mul => a.mul(b),
        ArithOp::Div => a.div(b),
    }
}

/// Typed fast paths for add/sub/mul. Returns `Ok(None)` when no typed
/// combination applies.
fn arith_fast(op: ArithOp, l: &VCol, r: &VCol, len: usize) -> Result<Option<Column>> {
    enum Lane<'a> {
        IntCol(&'a [i64], &'a Bitmap, usize),
        FloatCol(&'a [f64], &'a Bitmap, usize),
        IntConst(i64),
        FloatConst(f64),
    }
    fn lane_of(v: &VCol) -> Option<Lane<'_>> {
        match v {
            VCol::Col(c) => {
                let (d, val, off) = c.parts();
                match d {
                    ColData::Int(x) => Some(Lane::IntCol(x, val, off)),
                    ColData::Float(x) => Some(Lane::FloatCol(x, val, off)),
                    _ => None,
                }
            }
            VCol::Const(Value::Int(i)) => Some(Lane::IntConst(*i)),
            VCol::Const(Value::Float(f)) => Some(Lane::FloatConst(*f)),
            _ => None,
        }
    }
    let (Some(a), Some(b)) = (lane_of(l), lane_of(r)) else {
        return Ok(None);
    };
    let int_op: fn(i64, i64) -> Option<i64> = match op {
        ArithOp::Add => i64::checked_add,
        ArithOp::Sub => i64::checked_sub,
        ArithOp::Mul => i64::checked_mul,
        ArithOp::Div => return Ok(None),
    };
    let float_op: fn(f64, f64) -> f64 = match op {
        ArithOp::Add => |x, y| x + y,
        ArithOp::Sub => |x, y| x - y,
        ArithOp::Mul => |x, y| x * y,
        ArithOp::Div => return Ok(None),
    };
    let valid_at = |lane: &Lane<'_>, i: usize| match lane {
        Lane::IntCol(_, v, o) | Lane::FloatCol(_, v, o) => v.get(o + i),
        _ => true,
    };
    // Int ⊕ Int stays integer (checked); any float operand coerces the
    // result to float — mirroring `Value::arith` exactly.
    match (&a, &b) {
        (Lane::IntCol(..) | Lane::IntConst(_), Lane::IntCol(..) | Lane::IntConst(_)) => {
            let get = |lane: &Lane<'_>, i: usize| match lane {
                Lane::IntCol(x, _, o) => x[o + i],
                Lane::IntConst(k) => *k,
                _ => unreachable!(),
            };
            let mut out = Vec::with_capacity(len);
            let mut validity = Bitmap::from_flags(std::iter::empty());
            for i in 0..len {
                if valid_at(&a, i) && valid_at(&b, i) {
                    out.push(int_op(get(&a, i), get(&b, i)).ok_or(Error::NumericOverflow)?);
                    validity.push(true);
                } else {
                    out.push(0);
                    validity.push(false);
                }
            }
            Ok(Some(Column::from_data(ColumnData {
                data: ColData::Int(out),
                validity,
            })))
        }
        _ => {
            let get = |lane: &Lane<'_>, i: usize| match lane {
                Lane::IntCol(x, _, o) => x[o + i] as f64,
                Lane::FloatCol(x, _, o) => x[o + i],
                Lane::IntConst(k) => *k as f64,
                Lane::FloatConst(k) => *k,
            };
            let mut out = Vec::with_capacity(len);
            let mut validity = Bitmap::from_flags(std::iter::empty());
            for i in 0..len {
                if valid_at(&a, i) && valid_at(&b, i) {
                    out.push(float_op(get(&a, i), get(&b, i)));
                    validity.push(true);
                } else {
                    out.push(0.0);
                    validity.push(false);
                }
            }
            Ok(Some(Column::from_data(ColumnData {
                data: ColData::Float(out),
                validity,
            })))
        }
    }
}

/// Lanes where a predicate column is TRUE (valid and true). Errors with
/// the row path's `TypeMismatch` when the column is not boolean.
pub fn selected_true(col: &Column) -> Result<Vec<usize>> {
    let (data, validity, off) = col.parts();
    match data {
        ColData::Bool(d) => Ok((0..col.len())
            .filter(|&i| validity.get(off + i) && d[off + i])
            .collect()),
        _ => {
            let mut sel = Vec::new();
            for i in 0..col.len() {
                if col.value(i).as_bool3()? == Some(true) {
                    sel.push(i);
                }
            }
            Ok(sel)
        }
    }
}

/// Materializes one lane of a columnar batch as a row — used by the row
/// fallback and by bridged consumers.
pub fn lane_row(columns: &[Column], i: usize) -> Row {
    columns.iter().map(|c| c.value(i)).collect()
}

/// Hash of a key's values in order, matching [`hash_lanes`] so row-fed
/// and column-fed hash tables agree. Uses `Value`'s own `Hash` (which
/// already canonicalizes `Int`/`Float` so grouping-equal values hash
/// equal).
pub fn hash_values(key: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// Per-lane key hashes over the given key columns.
pub fn hash_lanes(key_cols: &[&Column], len: usize) -> Vec<u64> {
    (0..len)
        .map(|i| {
            let mut h = DefaultHasher::new();
            for c in key_cols {
                c.value(i).hash(&mut h);
            }
            h.finish()
        })
        .collect()
}

/// True when every key column is non-NULL at lane `i` (SQL join keys:
/// NULL never matches).
pub fn keys_valid(key_cols: &[&Column], i: usize) -> bool {
    key_cols.iter().all(|c| c.is_valid(i))
}

/// Columnar lane dedup over the given key columns: returns the distinct
/// key tuples in first-seen order plus, per lane, the index of its
/// tuple in that list. Hash-bucketed so each lane compares values only
/// against hash-colliding candidates. `Value`'s canonicalizing
/// `Hash`/`Eq` make `Int(3)` and `Float(3.0)` one group, and NULL keys
/// group with NULL keys (sound for binding dedup: the inner plan is
/// deterministic per binding tuple).
pub fn dedup_lanes(key_cols: &[&Column], len: usize) -> (Vec<Row>, Vec<usize>) {
    let hashes = hash_lanes(key_cols, len);
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut distinct: Vec<Row> = Vec::new();
    let mut group_of = Vec::with_capacity(len);
    for (i, &h) in hashes.iter().enumerate() {
        let candidates = buckets.entry(h).or_default();
        let key: Row = key_cols.iter().map(|c| c.value(i)).collect();
        match candidates.iter().find(|&&g| distinct[g] == key) {
            Some(&g) => group_of.push(g),
            None => {
                let g = distinct.len();
                distinct.push(key);
                candidates.push(g);
                group_of.push(g);
            }
        }
    }
    (distinct, group_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, EvalCtx};
    use orthopt_common::column::rows_to_columns;

    fn cx<'a>(
        cols: &'a [ColId],
        pos: &'a PosMap,
        columns: &'a [Column],
        len: usize,
        binds: &'a Bindings,
    ) -> VecEval<'a> {
        VecEval {
            cols,
            pos,
            columns,
            len,
            binds,
        }
    }

    /// The vectorized path must agree lane-for-lane with the row
    /// evaluator on every expression it claims to support.
    #[test]
    fn kernels_agree_with_row_eval() {
        let cols = [ColId(1), ColId(2), ColId(3)];
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(2.5), Value::str("a")],
            vec![Value::Int(-3), Value::Null, Value::str("bb")],
            vec![Value::Null, Value::Float(0.0), Value::str("a")],
            vec![Value::Int(7), Value::Float(-1.0), Value::Null],
        ];
        let columns = rows_to_columns(&rows, 3);
        let pm = PosMap::new(&cols);
        let binds = Bindings::new();
        let c = cx(&cols, &pm, &columns, rows.len(), &binds);
        let exprs = vec![
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(1)), ScalarExpr::lit(2i64)),
            ScalarExpr::eq(
                ScalarExpr::col(ColId(3)),
                ScalarExpr::Literal(Value::str("a")),
            ),
            ScalarExpr::Cmp {
                op: CmpOp::Ge,
                left: Box::new(ScalarExpr::col(ColId(2))),
                right: Box::new(ScalarExpr::col(ColId(1))),
            },
            ScalarExpr::Arith {
                op: ArithOp::Add,
                left: Box::new(ScalarExpr::col(ColId(1))),
                right: Box::new(ScalarExpr::lit(10i64)),
            },
            ScalarExpr::Arith {
                op: ArithOp::Mul,
                left: Box::new(ScalarExpr::col(ColId(2))),
                right: Box::new(ScalarExpr::col(ColId(1))),
            },
            ScalarExpr::And(vec![
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(1)), ScalarExpr::lit(5i64)),
                ScalarExpr::eq(
                    ScalarExpr::col(ColId(3)),
                    ScalarExpr::Literal(Value::str("a")),
                ),
            ]),
            ScalarExpr::Or(vec![
                ScalarExpr::IsNull {
                    expr: Box::new(ScalarExpr::col(ColId(2))),
                    negated: false,
                },
                ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::col(ColId(2)),
                    ScalarExpr::lit(Value::Float(1.0)),
                ),
            ]),
            ScalarExpr::Not(Box::new(ScalarExpr::eq(
                ScalarExpr::col(ColId(1)),
                ScalarExpr::lit(1i64),
            ))),
            ScalarExpr::Case {
                operand: None,
                whens: vec![(
                    ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(ColId(1)), ScalarExpr::lit(0i64)),
                    ScalarExpr::Literal(Value::str("neg")),
                )],
                else_: Some(Box::new(ScalarExpr::Literal(Value::str("other")))),
            },
            ScalarExpr::Neg(Box::new(ScalarExpr::col(ColId(1)))),
        ];
        for e in &exprs {
            let vec_out = eval_column(e, &c).unwrap();
            for (i, r) in rows.iter().enumerate() {
                let row_out = eval(e, &EvalCtx::plain(&cols, r, &binds)).unwrap();
                assert_eq!(vec_out.value(i), row_out, "lane {i} of {e:?}");
            }
        }
    }

    #[test]
    fn selection_picks_true_lanes_only() {
        let col = Column::from_values(vec![
            Value::Bool(true),
            Value::Bool(false),
            Value::Null,
            Value::Bool(true),
        ]);
        assert_eq!(selected_true(&col).unwrap(), vec![0, 3]);
        let bad = Column::from_values(vec![Value::Int(1)]);
        assert!(selected_true(&bad).is_err());
    }

    #[test]
    fn hash_lanes_agree_with_hash_values() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(3), Value::str("k")],
            vec![Value::Float(3.0), Value::Null],
        ];
        let cols = rows_to_columns(&rows, 2);
        let refs: Vec<&Column> = cols.iter().collect();
        let lanes = hash_lanes(&refs, rows.len());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(lanes[i], hash_values(r), "lane {i}");
        }
        // Int(3) and Float(3.0) are grouping-equal, so they must hash equal.
        assert_eq!(
            hash_values(&[Value::Int(3)]),
            hash_values(&[Value::Float(3.0)])
        );
    }

    #[test]
    fn overflow_surfaces_as_error_for_fallback() {
        let cols = [ColId(1)];
        let rows: Vec<Row> = vec![vec![Value::Int(i64::MAX)]];
        let columns = rows_to_columns(&rows, 1);
        let pm = PosMap::new(&cols);
        let binds = Bindings::new();
        let c = cx(&cols, &pm, &columns, 1, &binds);
        let e = ScalarExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::col(ColId(1))),
            right: Box::new(ScalarExpr::lit(1i64)),
        };
        assert!(matches!(eval_column(&e, &c), Err(Error::NumericOverflow)));
    }
}
