//! Per-operator runtime statistics for `EXPLAIN ANALYZE`.

use std::time::Duration;

/// Counters recorded by one pipeline operator over one execution.
///
/// Times are *inclusive*: an operator's `elapsed` covers the time spent
/// inside its whole subtree, because a pull-based parent blocks on its
/// children inside `next_batch`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of `open` calls (re-opens under `ApplyLoop`/`SegmentExec`
    /// count; a cached subtree stays at 1).
    pub opens: u64,
    /// Non-empty batches produced.
    pub batches: u64,
    /// Total rows produced.
    pub rows: u64,
    /// Inclusive wall-clock time spent in `open` + `next_batch`.
    pub elapsed: Duration,
}

impl OpStats {
    /// Renders the stats as a compact bracketed annotation.
    pub fn render(&self) -> String {
        format!(
            "rows={} batches={} opens={} time={:.3}ms",
            self.rows,
            self.batches,
            self.opens,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}
