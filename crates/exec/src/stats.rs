//! Per-operator runtime statistics for `EXPLAIN ANALYZE`.

use std::time::Duration;

/// Counters recorded by one pipeline operator over one execution.
///
/// Times are *inclusive*: an operator's `elapsed` covers the time spent
/// inside its whole subtree, because a pull-based parent blocks on its
/// children inside `next_batch`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of `open` calls (re-opens under `ApplyLoop`/`SegmentExec`
    /// count; a cached subtree stays at 1).
    pub opens: u64,
    /// Non-empty batches produced.
    pub batches: u64,
    /// Total rows produced.
    pub rows: u64,
    /// Inclusive wall-clock time spent in `open` + `next_batch`.
    pub elapsed: Duration,
    /// Number of workers that contributed to these counters (0 for
    /// purely serial execution; set by the exchange runtime when
    /// per-worker counters are merged).
    pub workers: u64,
    /// Largest per-worker row count folded into `rows` — exposes skew
    /// across morsel assignments.
    pub worker_rows_max: u64,
    /// Peak bytes held by this operator's memory reservation (0 for
    /// non-buffering operators). Recorded whether or not a budget is
    /// set, so `explain_analyze` always shows where memory concentrates.
    pub mem_peak: u64,
    /// Vectorized kernel invocations: how many columnar batches this
    /// operator processed natively (typed kernels, no row materialization).
    pub kernels: u64,
    /// Bridge conversions: how many columnar batches this operator had
    /// to transpose back to rows at its boundary because its algorithm
    /// is still row-at-a-time. Zero means the operator is kernel-native
    /// on this plan.
    pub bridged: u64,
    /// Distinct correlation bindings an apply-style operator actually
    /// executed its inner plan for — the dedup ratio vs. the outer row
    /// count is the win `BatchedApply`/`IndexLookupJoin` deliver.
    pub distinct_bindings: u64,
    /// Hash-index probes issued by `IndexLookupJoin` (one per distinct
    /// non-NULL binding).
    pub index_probes: u64,
    /// Spill partition files this operator wrote (grace-join partitions
    /// across all recursion levels, sort runs, aggregation partitions).
    /// Zero means the operator stayed in memory.
    pub spill_partitions: u64,
    /// Bytes this operator wrote to spill files.
    pub spilled_bytes: u64,
}

impl OpStats {
    /// Renders the stats as a compact bracketed annotation.
    pub fn render(&self) -> String {
        let mut s = format!(
            "rows={} batches={} opens={} time={:.3}ms",
            self.rows,
            self.batches,
            self.opens,
            self.elapsed.as_secs_f64() * 1e3,
        );
        if self.workers > 0 {
            s.push_str(&format!(
                " workers={} max/worker={}",
                self.workers, self.worker_rows_max
            ));
        }
        if self.mem_peak > 0 {
            s.push_str(&format!(" mem={}B", self.mem_peak));
        }
        if self.kernels > 0 {
            s.push_str(&format!(" kernels={}", self.kernels));
        }
        if self.bridged > 0 {
            s.push_str(&format!(" bridged={}", self.bridged));
        }
        if self.distinct_bindings > 0 {
            s.push_str(&format!(" distinct_bindings={}", self.distinct_bindings));
        }
        if self.index_probes > 0 {
            s.push_str(&format!(" index_probes={}", self.index_probes));
        }
        if self.spill_partitions > 0 {
            s.push_str(&format!(
                " spill_partitions={} spilled_bytes={}",
                self.spill_partitions, self.spilled_bytes
            ));
        }
        s
    }

    /// Folds one task's counters into a per-pool-worker accumulator.
    /// A query may submit several tasks that land on the *same* shared
    /// scheduler worker; those run sequentially there, so counts and
    /// elapsed add while the memory peak takes the max.
    pub fn add_task(&mut self, t: &OpStats) {
        self.opens += t.opens;
        self.batches += t.batches;
        self.rows += t.rows;
        self.elapsed += t.elapsed;
        self.mem_peak = self.mem_peak.max(t.mem_peak);
        self.kernels += t.kernels;
        self.bridged += t.bridged;
        self.distinct_bindings += t.distinct_bindings;
        self.index_probes += t.index_probes;
        self.spill_partitions += t.spill_partitions;
        self.spilled_bytes += t.spilled_bytes;
    }

    /// Folds one worker's counters into this (merged) entry: additive
    /// counts, max elapsed (workers run concurrently, so the slowest
    /// worker bounds the wall clock).
    pub fn absorb_worker(&mut self, w: &OpStats) {
        self.opens += w.opens;
        self.batches += w.batches;
        self.rows += w.rows;
        self.elapsed = self.elapsed.max(w.elapsed);
        self.workers += 1;
        self.worker_rows_max = self.worker_rows_max.max(w.rows);
        self.mem_peak += w.mem_peak;
        self.kernels += w.kernels;
        self.bridged += w.bridged;
        self.distinct_bindings += w.distinct_bindings;
        self.index_probes += w.index_probes;
        self.spill_partitions += w.spill_partitions;
        self.spilled_bytes += w.spilled_bytes;
    }
}
