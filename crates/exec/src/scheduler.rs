//! Shared morsel-worker scheduler.
//!
//! Before the multi-session refactor every `Exchange` node built and
//! tore down its own `std::thread::scope` pool, so N concurrent queries
//! spawned N×workers short-lived threads and competed blindly for the
//! CPU. The [`Scheduler`] replaces that with one long-lived, fixed-size
//! worker pool shared by every query in the process:
//!
//! * **Per-query task queues** — a query submits its worker closures as
//!   one *group*; the group's tasks enter a queue private to that query.
//! * **Fair round-robin dispatch** — pool workers take one task at a
//!   time from the next query in a rotating order, so a 64-morsel scan
//!   cannot starve a 2-morsel point query that arrived later.
//! * **Deterministic gather** — results are delivered indexed by task
//!   (submission) position, not completion order. Exchange strategies
//!   assign morsel ranges to task slots exactly as they used to assign
//!   them to dedicated workers, so parallel results remain byte-identical
//!   to the serial engine no matter how the pool interleaves queries.
//!
//! Tasks must be `'static`: they capture an `Arc<Catalog>` (and other
//! owned state) rather than borrowing the caller's stack. Callers that
//! only hold a borrowed catalog (direct [`Pipeline`](crate::Pipeline)
//! embedders, unit tests) keep the legacy scoped fallback in
//! [`parallel`](crate::parallel).
//!
//! Deadlock freedom: a pool worker never blocks on the scheduler. Worker
//! plans are produced by exchange plan surgery, whose shape grammar
//! excludes nested `Exchange` nodes, so a task never submits a group of
//! its own; only query threads wait for groups, and every task they wait
//! on is runnable by any free worker.

use orthopt_synccheck::sync::{thread, Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

/// Hard cap on the pool, mirroring
/// [`parallel::MAX_WORKERS`](crate::parallel::MAX_WORKERS).
const MAX_POOL: usize = 64;

/// A unit of work: runs on one pool worker, receives that worker's
/// stable index (0-based) for stats attribution.
type Task = Box<dyn FnOnce(usize) + Send + 'static>;

/// Outcome of one task: the value it returned, or the panic payload the
/// scheduler caught (pool workers survive task panics).
pub type TaskResult<T> = std::thread::Result<T>;

#[derive(Default)]
struct State {
    /// Pending tasks, one queue per active query group.
    queues: HashMap<u64, VecDeque<Task>>,
    /// Queries with at least one pending task, in dispatch rotation.
    rotation: VecDeque<u64>,
    next_group: u64,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled when tasks arrive or shutdown is requested.
    work: Condvar,
    workers: usize,
}

/// A fixed pool of long-lived worker threads executing tasks from
/// per-query queues under fair round-robin dispatch. See the module
/// docs for the design; most callers want [`Scheduler::global`].
pub struct Scheduler {
    inner: Arc<Inner>,
}

impl Scheduler {
    /// Builds a pool with `workers` threads (clamped to 1..=64). Worker
    /// threads exit when the `Scheduler` is dropped.
    pub fn new(workers: usize) -> Scheduler {
        let workers = workers.clamp(1, MAX_POOL);
        let inner = Arc::new(Inner {
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            workers,
        });
        for idx in 0..workers {
            let inner = Arc::clone(&inner);
            thread::spawn_named(&format!("orthopt-worker-{idx}"), move || {
                worker_loop(&inner, idx);
            });
        }
        Scheduler { inner }
    }

    /// The process-wide pool every governed/session query dispatches
    /// to. Sized once, on first use: `ORTHOPT_POOL_WORKERS` if set,
    /// otherwise the larger of `ORTHOPT_PARALLELISM` and the machine's
    /// available parallelism — so a configured per-query fan-out always
    /// has enough lanes even on small containers.
    pub fn global() -> &'static Scheduler {
        static GLOBAL: OnceLock<Scheduler> = OnceLock::new();
        GLOBAL.get_or_init(|| Scheduler::new(global_pool_size()))
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Runs a group of tasks to completion and returns their outcomes
    /// in submission order. The calling thread blocks until every task
    /// of the group has finished; tasks of concurrently submitted
    /// groups interleave with this one's under round-robin dispatch.
    ///
    /// Each closure receives the executing pool worker's index. A
    /// panicking task is reported as `Err(payload)` in its slot without
    /// harming the pool or the other tasks.
    pub fn run_group<T, F>(&self, tasks: Vec<F>) -> Vec<TaskResult<T>>
    where
        T: Send + 'static,
        F: FnOnce(usize) -> T + Send + 'static,
    {
        if tasks.is_empty() {
            return Vec::new();
        }
        struct Group<T> {
            done: Mutex<(Vec<Option<TaskResult<T>>>, usize)>,
            cv: Condvar,
        }
        let n = tasks.len();
        let group = Arc::new(Group {
            done: Mutex::new((std::iter::repeat_with(|| None).take(n).collect(), n)),
            cv: Condvar::new(),
        });
        {
            let mut st = self.inner.state.lock();
            let id = st.next_group;
            st.next_group += 1;
            let queue: VecDeque<Task> = tasks
                .into_iter()
                .enumerate()
                .map(|(slot, f)| {
                    let group = Arc::clone(&group);
                    let task: Task = Box::new(move |worker: usize| {
                        let out = catch_unwind(AssertUnwindSafe(|| f(worker)));
                        // The shim lock recovers from poisoning, so even a
                        // panicking sibling task cannot wedge the group.
                        let mut done = group.done.lock();
                        done.0[slot] = Some(out);
                        done.1 -= 1;
                        if done.1 == 0 {
                            group.cv.notify_all();
                        }
                    });
                    task
                })
                .collect();
            st.queues.insert(id, queue);
            st.rotation.push_back(id);
            drop(st);
            self.inner.work.notify_all();
        }
        let mut done = group.done.lock();
        while done.1 > 0 {
            done = group.cv.wait(done);
        }
        done.0
            .iter_mut()
            .map(|s| s.take().expect("task slot filled"))
            .collect()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.inner.state.lock().shutdown = true;
        self.inner.work.notify_all();
        // Workers drain remaining queues before exiting; nothing to join
        // explicitly — the threads hold their own Arc<Inner>.
    }
}

fn worker_loop(inner: &Inner, worker_idx: usize) {
    loop {
        let task = {
            let mut st = inner.state.lock();
            loop {
                if let Some(id) = st.rotation.pop_front() {
                    let queue = st.queues.get_mut(&id).expect("rotation entry has queue");
                    let task = queue.pop_front().expect("queued group is non-empty");
                    if queue.is_empty() {
                        st.queues.remove(&id);
                    } else {
                        // One task per turn: rotate the query to the back
                        // so other active queries get the next slot.
                        st.rotation.push_back(id);
                    }
                    break task;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work.wait(st);
            }
        };
        task(worker_idx);
    }
}

/// Pool size policy for [`Scheduler::global`].
fn global_pool_size() -> usize {
    if let Some(n) = std::env::var("ORTHOPT_POOL_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        return n.clamp(1, MAX_POOL);
    }
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let env = std::env::var("ORTHOPT_PARALLELISM")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(1);
    hw.max(env).clamp(1, MAX_POOL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_synccheck::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let s = Scheduler::new(4);
        let tasks: Vec<_> = (0..32)
            .map(|i| {
                move |_w: usize| {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    i * 10
                }
            })
            .collect();
        let out = s.run_group(tasks);
        let vals: Vec<i32> = out.into_iter().map(|r| r.expect("no panic")).collect();
        assert_eq!(vals, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_task_reported_without_killing_pool() {
        let s = Scheduler::new(2);
        let out = s.run_group(vec![
            Box::new(|_| 1) as Box<dyn FnOnce(usize) -> i32 + Send>,
            Box::new(|_| panic!("boom")),
            Box::new(|_| 3),
        ]);
        assert_eq!(*out[0].as_ref().expect("ok"), 1);
        assert!(out[1].is_err());
        assert_eq!(*out[2].as_ref().expect("ok"), 3);
        // Pool still serves new groups after the panic.
        let again = s.run_group(vec![|_w: usize| 7]);
        assert_eq!(*again[0].as_ref().expect("ok"), 7);
    }

    #[test]
    fn concurrent_groups_interleave_and_complete() {
        let s = Arc::new(Scheduler::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|q| {
                let s = Arc::clone(&s);
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                thread::spawn(move || {
                    let tasks: Vec<_> = (0..8)
                        .map(|i| {
                            let peak = Arc::clone(&peak);
                            let live = Arc::clone(&live);
                            move |_w: usize| {
                                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                                peak.fetch_max(now, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_micros(200));
                                live.fetch_sub(1, Ordering::SeqCst);
                                q * 100 + i
                            }
                        })
                        .collect();
                    let out = s.run_group(tasks);
                    out.into_iter()
                        .map(|r| r.expect("no panic"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (q, h) in handles.into_iter().enumerate() {
            let got = h.join().expect("query thread");
            assert_eq!(got, (0..8).map(|i| q * 100 + i).collect::<Vec<_>>());
        }
        // The fixed pool bounds concurrency at its worker count.
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn worker_indices_are_within_pool() {
        let s = Scheduler::new(3);
        let out = s.run_group((0..16).map(|_| |w: usize| w).collect::<Vec<_>>());
        for r in out {
            assert!(r.expect("ok") < 3);
        }
    }

    #[test]
    fn empty_group_returns_immediately() {
        let s = Scheduler::new(1);
        let out: Vec<TaskResult<()>> = s.run_group(Vec::<fn(usize)>::new());
        assert!(out.is_empty());
    }
}
