//! Compact physical-plan printer (EXPLAIN output).

use std::fmt::Write as _;

use crate::physical::PhysExpr;

/// Renders a physical plan as an indented outline.
pub fn explain_phys(plan: &PhysExpr) -> String {
    let mut out = String::new();
    fmt(plan, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn fmt(plan: &PhysExpr, depth: usize, out: &mut String) {
    indent(depth, out);
    match plan {
        PhysExpr::TableScan { table, cols, .. } => {
            let _ = writeln!(out, "TableScan {table} [{} cols]", cols.len());
        }
        PhysExpr::IndexSeek {
            table,
            index_cols,
            probes,
            ..
        } => {
            let ps: Vec<String> = probes.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(
                out,
                "IndexSeek {table} on {index_cols:?} probe ({})",
                ps.join(", ")
            );
        }
        PhysExpr::Filter { input, predicate } => {
            let _ = writeln!(out, "Filter {predicate}");
            fmt(input, depth + 1, out);
        }
        PhysExpr::Compute { input, defs } => {
            let ds: Vec<String> = defs.iter().map(|(c, e)| format!("{c}:={e}")).collect();
            let _ = writeln!(out, "Compute [{}]", ds.join(", "));
            fmt(input, depth + 1, out);
        }
        PhysExpr::ProjectCols { input, cols } => {
            let cs: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(out, "Project [{}]", cs.join(", "));
            fmt(input, depth + 1, out);
        }
        PhysExpr::HashJoin {
            kind,
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => {
            let keys: Vec<String> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(l, r)| format!("{l}={r}"))
                .collect();
            let res = if residual.is_true() {
                String::new()
            } else {
                format!(" residual {residual}")
            };
            let _ = writeln!(out, "Hash{kind:?} on {}{res}", keys.join(" AND "));
            fmt(left, depth + 1, out);
            fmt(right, depth + 1, out);
        }
        PhysExpr::NLJoin {
            kind,
            left,
            right,
            predicate,
        } => {
            let _ = writeln!(out, "NestedLoop{kind:?} {predicate}");
            fmt(left, depth + 1, out);
            fmt(right, depth + 1, out);
        }
        PhysExpr::ApplyLoop {
            kind,
            left,
            right,
            params,
        } => {
            let ps: Vec<String> = params.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(out, "ApplyLoop{kind:?} (bind: {})", ps.join(", "));
            fmt(left, depth + 1, out);
            fmt(right, depth + 1, out);
        }
        PhysExpr::SegmentExec {
            input,
            segment_cols,
            inner,
            ..
        } => {
            let cs: Vec<String> = segment_cols.iter().map(|c| c.to_string()).collect();
            let _ = writeln!(out, "SegmentExec [{}]", cs.join(", "));
            fmt(input, depth + 1, out);
            fmt(inner, depth + 1, out);
        }
        PhysExpr::SegmentScan { cols } => {
            let cs: Vec<String> = cols.iter().map(|(o, s)| format!("{o}←{s}")).collect();
            let _ = writeln!(out, "SegmentScan [{}]", cs.join(", "));
        }
        PhysExpr::HashAggregate {
            kind,
            input,
            group_cols,
            aggs,
        } => {
            let gs: Vec<String> = group_cols.iter().map(|c| c.to_string()).collect();
            let as_: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "HashAggregate({kind:?}) [{}] [{}]",
                gs.join(", "),
                as_.join(", ")
            );
            fmt(input, depth + 1, out);
        }
        PhysExpr::Concat { left, right, .. } => {
            let _ = writeln!(out, "Concat");
            fmt(left, depth + 1, out);
            fmt(right, depth + 1, out);
        }
        PhysExpr::ExceptExec { left, right, .. } => {
            let _ = writeln!(out, "Except");
            fmt(left, depth + 1, out);
            fmt(right, depth + 1, out);
        }
        PhysExpr::AssertMax1 { input } => {
            let _ = writeln!(out, "AssertMax1Row");
            fmt(input, depth + 1, out);
        }
        PhysExpr::RowNumber { input, col } => {
            let _ = writeln!(out, "RowNumber [{col}]");
            fmt(input, depth + 1, out);
        }
        PhysExpr::ConstScan { rows, .. } => {
            let _ = writeln!(out, "ConstScan ({} rows)", rows.len());
        }
        PhysExpr::Sort { input, by } => {
            let bs: Vec<String> = by
                .iter()
                .map(|(c, desc)| format!("{c}{}", if *desc { " desc" } else { "" }))
                .collect();
            let _ = writeln!(out, "Sort [{}]", bs.join(", "));
            fmt(input, depth + 1, out);
        }
        PhysExpr::Limit { input, n } => {
            let _ = writeln!(out, "Limit {n}");
            fmt(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_common::{ColId, TableId};
    use orthopt_ir::ScalarExpr;

    #[test]
    fn renders_indented_tree() {
        let plan = PhysExpr::Filter {
            input: Box::new(PhysExpr::TableScan {
                table: TableId(0),
                positions: vec![0],
                cols: vec![ColId(1)],
            }),
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(1)), ScalarExpr::lit(3i64)),
        };
        let s = explain_phys(&plan);
        assert!(s.contains("Filter"));
        assert!(s.contains("  TableScan"));
    }

    #[test]
    fn shows_hash_join_keys() {
        let scan = |t: u32, c: u32| PhysExpr::TableScan {
            table: TableId(t),
            positions: vec![0],
            cols: vec![ColId(c)],
        };
        let plan = PhysExpr::HashJoin {
            kind: orthopt_ir::JoinKind::Inner,
            left: Box::new(scan(0, 1)),
            right: Box::new(scan(1, 2)),
            left_keys: vec![ColId(1)],
            right_keys: vec![ColId(2)],
            residual: ScalarExpr::true_(),
        };
        let s = explain_phys(&plan);
        assert!(s.contains("c1=c2"), "{s}");
    }
}
