//! Compact physical-plan printer (EXPLAIN / EXPLAIN ANALYZE output).
//!
//! Nodes are numbered and walked in pre-order — parent, then left
//! input, then right/inner input — exactly the order
//! [`Pipeline::compile`](crate::pipeline::Pipeline::compile) assigns
//! operator ids, so [`OpStats`] from a pipeline run can be zipped onto
//! the rendered tree by position.

use std::fmt::Write as _;

use crate::physical::PhysExpr;
use crate::stats::OpStats;

/// Renders a physical plan as an indented outline.
pub fn explain_phys(plan: &PhysExpr) -> String {
    let mut out = String::new();
    let mut walker = Walker {
        stats: None,
        cached: &[],
        next_id: 0,
    };
    walker.fmt(plan, 0, &mut out);
    out
}

/// Renders a physical plan with per-operator runtime statistics, as
/// collected by a [`Pipeline`](crate::pipeline::Pipeline) run. `stats`
/// is indexed by pre-order node id; `cached` lists ids of subtrees the
/// compiler put behind a one-time materialization cache.
pub fn explain_phys_analyze(plan: &PhysExpr, stats: &[OpStats], cached: &[usize]) -> String {
    let mut out = String::new();
    let mut walker = Walker {
        stats: Some(stats),
        cached,
        next_id: 0,
    };
    walker.fmt(plan, 0, &mut out);
    out
}

/// One-line operator labels in pre-order (the pipeline's node-id
/// order), with the depth of each node — for tools that pair plan
/// shape with [`OpStats`] outside the text renderer (e.g. the JSON
/// benchmark emitter).
pub fn phys_node_labels(plan: &PhysExpr) -> Vec<(usize, String)> {
    fn walk(plan: &PhysExpr, depth: usize, out: &mut Vec<(usize, String)>) {
        out.push((depth, label(plan)));
        for child in children(plan) {
            walk(child, depth + 1, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, 0, &mut out);
    out
}

struct Walker<'a> {
    stats: Option<&'a [OpStats]>,
    cached: &'a [usize],
    next_id: usize,
}

impl Walker<'_> {
    fn fmt(&mut self, plan: &PhysExpr, depth: usize, out: &mut String) {
        let id = self.next_id;
        self.next_id += 1;
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&label(plan));
        if let Some(stats) = self.stats {
            if let Some(s) = stats.get(id) {
                let _ = write!(out, "  [{}", s.render());
                if self.cached.contains(&id) {
                    out.push_str(" cached");
                }
                out.push(']');
            }
        }
        out.push('\n');
        for child in children(plan) {
            self.fmt(child, depth + 1, out);
        }
    }
}

/// Child subtrees in execution-id order (left/input before right/inner).
fn children(plan: &PhysExpr) -> Vec<&PhysExpr> {
    match plan {
        PhysExpr::Filter { input, .. }
        | PhysExpr::Compute { input, .. }
        | PhysExpr::ProjectCols { input, .. }
        | PhysExpr::HashAggregate { input, .. }
        | PhysExpr::AssertMax1 { input }
        | PhysExpr::RowNumber { input, .. }
        | PhysExpr::Sort { input, .. }
        | PhysExpr::Limit { input, .. }
        | PhysExpr::Exchange { input } => vec![input],
        PhysExpr::HashJoin { left, right, .. }
        | PhysExpr::NLJoin { left, right, .. }
        | PhysExpr::ApplyLoop { left, right, .. }
        | PhysExpr::BatchedApply { left, right, .. }
        | PhysExpr::Concat { left, right, .. }
        | PhysExpr::ExceptExec { left, right, .. } => vec![left, right],
        PhysExpr::IndexLookupJoin { left, .. } => vec![left],
        PhysExpr::SegmentExec { input, inner, .. } => vec![input, inner],
        PhysExpr::TableScan { .. }
        | PhysExpr::IndexSeek { .. }
        | PhysExpr::SegmentScan { .. }
        | PhysExpr::ConstScan { .. }
        | PhysExpr::MorselScan { .. } => vec![],
    }
}

/// One-line description of a node (no children, no newline).
fn label(plan: &PhysExpr) -> String {
    match plan {
        PhysExpr::TableScan { table, cols, .. } => {
            format!("TableScan {table} [{} cols]", cols.len())
        }
        PhysExpr::IndexSeek {
            table,
            index_cols,
            probes,
            ..
        } => {
            let ps: Vec<String> = probes.iter().map(ToString::to_string).collect();
            format!(
                "IndexSeek {table} on {index_cols:?} probe ({})",
                ps.join(", ")
            )
        }
        PhysExpr::Filter { predicate, .. } => format!("Filter {predicate}"),
        PhysExpr::Compute { defs, .. } => {
            let ds: Vec<String> = defs.iter().map(|(c, e)| format!("{c}:={e}")).collect();
            format!("Compute [{}]", ds.join(", "))
        }
        PhysExpr::ProjectCols { cols, .. } => {
            let cs: Vec<String> = cols.iter().map(ToString::to_string).collect();
            format!("Project [{}]", cs.join(", "))
        }
        PhysExpr::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
            ..
        } => {
            let keys: Vec<String> = left_keys
                .iter()
                .zip(right_keys)
                .map(|(l, r)| format!("{l}={r}"))
                .collect();
            let res = if residual.is_true() {
                String::new()
            } else {
                format!(" residual {residual}")
            };
            format!("Hash{kind:?} on {}{res}", keys.join(" AND "))
        }
        PhysExpr::NLJoin {
            kind, predicate, ..
        } => format!("NestedLoop{kind:?} {predicate}"),
        PhysExpr::ApplyLoop { kind, params, .. } => {
            let ps: Vec<String> = params.iter().map(ToString::to_string).collect();
            format!("ApplyLoop{kind:?} (bind: {})", ps.join(", "))
        }
        PhysExpr::BatchedApply { kind, params, .. } => {
            let ps: Vec<String> = params.iter().map(ToString::to_string).collect();
            format!("BatchedApply{kind:?} (bind: {})", ps.join(", "))
        }
        PhysExpr::IndexLookupJoin {
            kind,
            table,
            index_cols,
            probes,
            residual,
            params,
            ..
        } => {
            let ps: Vec<String> = params.iter().map(ToString::to_string).collect();
            let pr: Vec<String> = probes.iter().map(ToString::to_string).collect();
            let res = if residual.is_true() {
                String::new()
            } else {
                format!(" residual {residual}")
            };
            format!(
                "IndexLookupJoin{kind:?} {table} on {index_cols:?} probe ({}) (bind: {}){res}",
                pr.join(", "),
                ps.join(", ")
            )
        }
        PhysExpr::SegmentExec { segment_cols, .. } => {
            let cs: Vec<String> = segment_cols.iter().map(ToString::to_string).collect();
            format!("SegmentExec [{}]", cs.join(", "))
        }
        PhysExpr::SegmentScan { cols } => {
            let cs: Vec<String> = cols.iter().map(|(o, s)| format!("{o}←{s}")).collect();
            format!("SegmentScan [{}]", cs.join(", "))
        }
        PhysExpr::HashAggregate {
            kind,
            group_cols,
            aggs,
            ..
        } => {
            let gs: Vec<String> = group_cols.iter().map(ToString::to_string).collect();
            let as_: Vec<String> = aggs.iter().map(ToString::to_string).collect();
            format!(
                "HashAggregate({kind:?}) [{}] [{}]",
                gs.join(", "),
                as_.join(", ")
            )
        }
        PhysExpr::Concat { .. } => "Concat".to_string(),
        PhysExpr::ExceptExec { .. } => "Except".to_string(),
        PhysExpr::AssertMax1 { .. } => "AssertMax1Row".to_string(),
        PhysExpr::RowNumber { col, .. } => format!("RowNumber [{col}]"),
        PhysExpr::ConstScan { rows, .. } => format!("ConstScan ({} rows)", rows.len()),
        PhysExpr::Sort { by, .. } => {
            let bs: Vec<String> = by
                .iter()
                .map(|(c, desc)| format!("{c}{}", if *desc { " desc" } else { "" }))
                .collect();
            format!("Sort [{}]", bs.join(", "))
        }
        PhysExpr::Limit { n, .. } => format!("Limit {n}"),
        PhysExpr::Exchange { .. } => "Exchange".to_string(),
        PhysExpr::MorselScan { table, ranges, .. } => {
            format!("MorselScan {table} [{} ranges]", ranges.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_common::{ColId, TableId};
    use orthopt_ir::ScalarExpr;

    #[test]
    fn renders_indented_tree() {
        let plan = PhysExpr::Filter {
            input: Box::new(PhysExpr::TableScan {
                table: TableId(0),
                positions: vec![0],
                cols: vec![ColId(1)],
            }),
            predicate: ScalarExpr::eq(ScalarExpr::col(ColId(1)), ScalarExpr::lit(3i64)),
        };
        let s = explain_phys(&plan);
        assert!(s.contains("Filter"));
        assert!(s.contains("  TableScan"));
    }

    #[test]
    fn shows_hash_join_keys() {
        let scan = |t: u32, c: u32| PhysExpr::TableScan {
            table: TableId(t),
            positions: vec![0],
            cols: vec![ColId(c)],
        };
        let plan = PhysExpr::HashJoin {
            kind: orthopt_ir::JoinKind::Inner,
            left: Box::new(scan(0, 1)),
            right: Box::new(scan(1, 2)),
            left_keys: vec![ColId(1)],
            right_keys: vec![ColId(2)],
            residual: ScalarExpr::true_(),
        };
        let s = explain_phys(&plan);
        assert!(s.contains("c1=c2"), "{s}");
    }

    #[test]
    fn analyze_zips_stats_by_preorder_id() {
        let plan = PhysExpr::Filter {
            input: Box::new(PhysExpr::TableScan {
                table: TableId(0),
                positions: vec![0],
                cols: vec![ColId(1)],
            }),
            predicate: ScalarExpr::true_(),
        };
        let stats = vec![
            OpStats {
                rows: 1,
                batches: 1,
                opens: 1,
                ..Default::default()
            },
            OpStats {
                rows: 7,
                batches: 2,
                opens: 1,
                ..Default::default()
            },
        ];
        let s = explain_phys_analyze(&plan, &stats, &[1]);
        let lines: Vec<&str> = s.lines().collect();
        assert!(
            lines[0].starts_with("Filter") && lines[0].contains("rows=1"),
            "{s}"
        );
        assert!(
            lines[1].contains("rows=7") && lines[1].contains("cached"),
            "{s}"
        );
    }
}
