//! Scalar expression evaluation under SQL three-valued logic.
//!
//! Evaluation happens against a row (with its layout) plus parameter
//! [`Bindings`]. Subquery markers are only legal when a
//! [`SubqueryEval`] hook is supplied — the reference interpreter passes
//! itself (mutual recursion, §2.1); the physical engine passes `None`
//! because normalization guarantees their absence.

use std::cmp::Ordering;

use orthopt_common::value::{and3, not3, or3};
use orthopt_common::{ColId, Error, Result, Value};
use orthopt_ir::{CmpOp, Quant, RelExpr, ScalarExpr};

use crate::bindings::Bindings;
use crate::chunk::Chunk;

/// Callback used by the reference interpreter to evaluate relational
/// subqueries nested in scalar expressions.
pub trait SubqueryEval {
    /// Evaluates `rel` under the given bindings, returning all rows.
    fn eval_rel(&self, rel: &RelExpr, binds: &Bindings) -> Result<Chunk>;
}

/// Column-id → position map resolved once per layout, replacing the
/// per-row linear `position` scan inside [`EvalCtx::lookup`]. Operators
/// build one at construction time (their layouts are static); the
/// reference interpreter builds one per chunk before its row loop.
#[derive(Debug, Clone, Default)]
pub struct PosMap {
    map: std::collections::HashMap<ColId, usize>,
}

impl PosMap {
    /// Builds the map for a layout. First occurrence wins, matching the
    /// linear scan's behavior on (illegal but defensive) duplicate ids.
    pub fn new(cols: &[ColId]) -> PosMap {
        let mut map = std::collections::HashMap::with_capacity(cols.len());
        for (i, c) in cols.iter().enumerate() {
            map.entry(*c).or_insert(i);
        }
        PosMap { map }
    }

    /// Position of `id` in the mapped layout, if present.
    #[inline]
    pub fn get(&self, id: ColId) -> Option<usize> {
        self.map.get(&id).copied()
    }
}

/// Evaluation context: one row plus parameters plus the optional
/// subquery hook.
pub struct EvalCtx<'a> {
    /// Layout of `row`.
    pub cols: &'a [ColId],
    /// Current row.
    pub row: &'a [Value],
    /// Outer parameters.
    pub binds: &'a Bindings,
    /// Subquery hook (reference interpreter only).
    pub subq: Option<&'a dyn SubqueryEval>,
    /// Precomputed position map for `cols`; when present, column lookup
    /// is a hash probe instead of a linear scan.
    pub pos: Option<&'a PosMap>,
}

impl<'a> EvalCtx<'a> {
    /// Context with no subquery support.
    pub fn plain(cols: &'a [ColId], row: &'a [Value], binds: &'a Bindings) -> Self {
        EvalCtx {
            cols,
            row,
            binds,
            subq: None,
            pos: None,
        }
    }

    /// Context with a precomputed position map for the layout.
    pub fn mapped(
        cols: &'a [ColId],
        pos: &'a PosMap,
        row: &'a [Value],
        binds: &'a Bindings,
    ) -> Self {
        EvalCtx {
            cols,
            row,
            binds,
            subq: None,
            pos: Some(pos),
        }
    }

    fn lookup(&self, id: ColId) -> Result<Value> {
        let found = match self.pos {
            Some(pm) => pm.get(id),
            None => self.cols.iter().position(|c| *c == id),
        };
        if let Some(pos) = found {
            return Ok(self.row[pos].clone());
        }
        self.binds
            .get(id)
            .cloned()
            .ok_or_else(|| Error::UnknownColumn(id.to_string()))
    }

    fn subquery_rows(&self, rel: &RelExpr) -> Result<Chunk> {
        let hook = self
            .subq
            .ok_or_else(|| Error::internal("subquery in scalar expression after normalization"))?;
        // The subquery sees the current row's columns as parameters.
        let inner_binds = self.binds.extended(self.cols, self.row, self.cols);
        hook.eval_rel(rel, &inner_binds)
    }
}

/// Evaluates a scalar expression to a [`Value`].
pub fn eval(expr: &ScalarExpr, ctx: &EvalCtx<'_>) -> Result<Value> {
    match expr {
        ScalarExpr::Column(id) => ctx.lookup(*id),
        ScalarExpr::Literal(v) => Ok(v.clone()),
        ScalarExpr::Cmp { op, left, right } => {
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            Ok(cmp_values(*op, &l, &r))
        }
        ScalarExpr::Arith { op, left, right } => {
            let l = eval(left, ctx)?;
            let r = eval(right, ctx)?;
            match op {
                orthopt_ir::ArithOp::Add => l.add(&r),
                orthopt_ir::ArithOp::Sub => l.sub(&r),
                orthopt_ir::ArithOp::Mul => l.mul(&r),
                orthopt_ir::ArithOp::Div => l.div(&r),
            }
        }
        ScalarExpr::Neg(e) => eval(e, ctx)?.neg(),
        ScalarExpr::And(parts) => {
            let mut acc = Some(true);
            for p in parts {
                let v = eval(p, ctx)?.as_bool3()?;
                acc = and3(acc, v);
                if acc == Some(false) {
                    break;
                }
            }
            Ok(bool3_value(acc))
        }
        ScalarExpr::Or(parts) => {
            let mut acc = Some(false);
            for p in parts {
                let v = eval(p, ctx)?.as_bool3()?;
                acc = or3(acc, v);
                if acc == Some(true) {
                    break;
                }
            }
            Ok(bool3_value(acc))
        }
        ScalarExpr::Not(e) => {
            let v = eval(e, ctx)?.as_bool3()?;
            Ok(bool3_value(not3(v)))
        }
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        ScalarExpr::Case {
            operand,
            whens,
            else_,
        } => {
            let comparand = operand.as_ref().map(|o| eval(o, ctx)).transpose()?;
            for (w, t) in whens {
                let fire = match &comparand {
                    Some(c) => {
                        let wv = eval(w, ctx)?;
                        c.sql_eq(&wv) == Some(true)
                    }
                    None => eval(w, ctx)?.as_bool3()? == Some(true),
                };
                if fire {
                    return eval(t, ctx);
                }
            }
            match else_ {
                Some(e) => eval(e, ctx),
                None => Ok(Value::Null),
            }
        }
        ScalarExpr::Subquery(rel) => {
            let result = ctx.subquery_rows(rel)?;
            match result.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(result.rows[0][0].clone()),
                _ => Err(Error::SubqueryReturnedMoreThanOneRow),
            }
        }
        ScalarExpr::Exists { rel, negated } => {
            let result = ctx.subquery_rows(rel)?;
            Ok(Value::Bool(result.is_empty() == *negated))
        }
        ScalarExpr::InSubquery { expr, rel, negated } => {
            let needle = eval(expr, ctx)?;
            let result = ctx.subquery_rows(rel)?;
            let mut found = Some(false);
            for row in &result.rows {
                found = or3(found, needle.sql_eq(&row[0]));
                if found == Some(true) {
                    break;
                }
            }
            Ok(bool3_value(if *negated { not3(found) } else { found }))
        }
        ScalarExpr::QuantifiedCmp {
            op,
            quant,
            expr,
            rel,
        } => {
            let lhs = eval(expr, ctx)?;
            let result = ctx.subquery_rows(rel)?;
            let acc = match quant {
                Quant::Any => {
                    let mut acc = Some(false);
                    for row in &result.rows {
                        acc = or3(acc, cmp3(*op, &lhs, &row[0]));
                        if acc == Some(true) {
                            break;
                        }
                    }
                    acc
                }
                Quant::All => {
                    let mut acc = Some(true);
                    for row in &result.rows {
                        acc = and3(acc, cmp3(*op, &lhs, &row[0]));
                        if acc == Some(false) {
                            break;
                        }
                    }
                    acc
                }
            };
            Ok(bool3_value(acc))
        }
    }
}

/// Evaluates a predicate; NULL and FALSE both reject.
pub fn eval_predicate(expr: &ScalarExpr, ctx: &EvalCtx<'_>) -> Result<bool> {
    Ok(eval(expr, ctx)?.as_bool3()? == Some(true))
}

fn bool3_value(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn cmp3(op: CmpOp, l: &Value, r: &Value) -> Option<bool> {
    l.sql_cmp(r).map(|o| match op {
        CmpOp::Eq => o == Ordering::Equal,
        CmpOp::Ne => o != Ordering::Equal,
        CmpOp::Lt => o == Ordering::Less,
        CmpOp::Le => o != Ordering::Greater,
        CmpOp::Gt => o == Ordering::Greater,
        CmpOp::Ge => o != Ordering::Less,
    })
}

/// Three-valued comparison packaged as a [`Value`].
pub fn cmp_values(op: CmpOp, l: &Value, r: &Value) -> Value {
    bool3_value(cmp3(op, l, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_ir::ArithOp;

    fn ctx<'a>(cols: &'a [ColId], row: &'a [Value], binds: &'a Bindings) -> EvalCtx<'a> {
        EvalCtx::plain(cols, row, binds)
    }

    #[test]
    fn column_lookup_prefers_row_then_binds() {
        let cols = [ColId(1)];
        let row = [Value::Int(5)];
        let mut binds = Bindings::new();
        binds.set(ColId(2), Value::Int(7));
        let c = ctx(&cols, &row, &binds);
        assert_eq!(eval(&ScalarExpr::col(ColId(1)), &c).unwrap(), Value::Int(5));
        assert_eq!(eval(&ScalarExpr::col(ColId(2)), &c).unwrap(), Value::Int(7));
        assert!(eval(&ScalarExpr::col(ColId(3)), &c).is_err());
    }

    #[test]
    fn null_comparison_is_null() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        let e = ScalarExpr::eq(ScalarExpr::lit(Value::Null), ScalarExpr::lit(1i64));
        assert!(eval(&e, &c).unwrap().is_null());
        assert!(!eval_predicate(&e, &c).unwrap());
    }

    #[test]
    fn and_short_circuits_on_false() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        // FALSE AND NULL = FALSE
        let e = ScalarExpr::And(vec![
            ScalarExpr::lit(false),
            ScalarExpr::eq(ScalarExpr::lit(Value::Null), ScalarExpr::lit(1i64)),
        ]);
        assert_eq!(eval(&e, &c).unwrap(), Value::Bool(false));
        // TRUE AND NULL = NULL
        let e2 = ScalarExpr::And(vec![
            ScalarExpr::lit(true),
            ScalarExpr::eq(ScalarExpr::lit(Value::Null), ScalarExpr::lit(1i64)),
        ]);
        assert!(eval(&e2, &c).unwrap().is_null());
    }

    #[test]
    fn or_with_null_and_true_is_true() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        let e = ScalarExpr::Or(vec![
            ScalarExpr::eq(ScalarExpr::lit(Value::Null), ScalarExpr::lit(1i64)),
            ScalarExpr::lit(true),
        ]);
        assert_eq!(eval(&e, &c).unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null_is_two_valued() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        let e = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::lit(Value::Null)),
            negated: false,
        };
        assert_eq!(eval(&e, &c).unwrap(), Value::Bool(true));
        let e2 = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::lit(1i64)),
            negated: true,
        };
        assert_eq!(eval(&e2, &c).unwrap(), Value::Bool(true));
    }

    #[test]
    fn case_searched_and_simple() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        let searched = ScalarExpr::Case {
            operand: None,
            whens: vec![(ScalarExpr::lit(false), ScalarExpr::lit(1i64))],
            else_: Some(Box::new(ScalarExpr::lit(2i64))),
        };
        assert_eq!(eval(&searched, &c).unwrap(), Value::Int(2));
        let simple = ScalarExpr::Case {
            operand: Some(Box::new(ScalarExpr::lit(5i64))),
            whens: vec![(
                ScalarExpr::lit(5i64),
                ScalarExpr::Literal(Value::str("hit")),
            )],
            else_: None,
        };
        assert_eq!(eval(&simple, &c).unwrap(), Value::str("hit"));
    }

    #[test]
    fn case_without_else_defaults_to_null() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        let e = ScalarExpr::Case {
            operand: None,
            whens: vec![(ScalarExpr::lit(false), ScalarExpr::lit(1i64))],
            else_: None,
        };
        assert!(eval(&e, &c).unwrap().is_null());
    }

    #[test]
    fn arithmetic_division() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        let e = ScalarExpr::Arith {
            op: ArithOp::Div,
            left: Box::new(ScalarExpr::lit(7i64)),
            right: Box::new(ScalarExpr::lit(2i64)),
        };
        assert_eq!(eval(&e, &c).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn subquery_without_hook_is_internal_error() {
        let binds = Bindings::new();
        let c = ctx(&[], &[], &binds);
        let e = ScalarExpr::Exists {
            rel: Box::new(RelExpr::ConstRel {
                cols: vec![],
                rows: vec![],
            }),
            negated: false,
        };
        assert!(matches!(eval(&e, &c), Err(Error::Internal(_))));
    }
}
