#![warn(missing_docs)]
//! Execution engine for `orthopt`.
//!
//! Two executors share one scalar evaluator and one aggregation core:
//!
//! * [`mod@reference`] — a *reference interpreter* that executes **logical**
//!   plans directly, including the algebrizer's mutually recursive form
//!   (scalar subqueries evaluated per row, §2.1) and literal per-row
//!   `Apply` loops (§1.3). It is deliberately naive: it serves as the
//!   semantics oracle for every rewrite and as the paper's "correlated
//!   execution" baseline.
//! * [`physical`] + [`pipeline`] — the real engine: physical plans are
//!   compiled into a streaming pull-based [`Pipeline`] of batched
//!   operators (hash joins, hash aggregation, index seeks,
//!   rebind-and-rewind re-execution for `Apply`, segmented execution
//!   for `SegmentApply`), with per-operator [`OpStats`] for
//!   `EXPLAIN ANALYZE`.

pub mod aggregate;
pub mod bindings;
pub mod chunk;
pub mod eval;
pub mod explain_phys;
pub mod faults;
pub mod parallel;
pub mod physical;
pub mod pipeline;
pub mod reference;
pub mod scheduler;
pub mod spill;
pub mod stats;
pub mod vector;

pub use bindings::Bindings;
pub use chunk::Chunk;
pub use explain_phys::{explain_phys, explain_phys_analyze, phys_node_labels};
pub use parallel::{exchange_eligible, place_exchanges, wrap_exchange};
pub use physical::{PhysExpr, PhysPlan};
pub use pipeline::{
    current_op, Batch, ExecCtx, Operator, Pipeline, PipelineOptions, Repr, DEFAULT_BATCH_SIZE,
};
pub use reference::Reference;
pub use scheduler::Scheduler;
pub use stats::OpStats;

use orthopt_synccheck::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static COLUMNAR: OnceLock<AtomicBool> = OnceLock::new();

fn columnar_flag() -> &'static AtomicBool {
    COLUMNAR.get_or_init(|| {
        let on = match std::env::var("ORTHOPT_COLUMNAR") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether pipelines run the columnar path (the default). Seeded from
/// `ORTHOPT_COLUMNAR` (`0`/`false`/`off` disable) on first use. The
/// toggle gates only the *sources* — scans emit columnar or row batches
/// — and every downstream operator dispatches on the batch
/// representation it receives, so turning it off reproduces the
/// row-at-a-time engine exactly.
pub fn columnar_enabled() -> bool {
    // relaxed-ok: an isolated process-global toggle; readers act on the
    // flag alone and no other memory is published through it.
    columnar_flag().load(Ordering::Relaxed)
}

/// Overrides the columnar toggle at runtime (conformance suites sweep
/// both settings in one process).
pub fn set_columnar(on: bool) {
    // relaxed-ok: see columnar_enabled().
    columnar_flag().store(on, Ordering::Relaxed);
}
