#![warn(missing_docs)]
//! Execution engine for `orthopt`.
//!
//! Two executors share one scalar evaluator and one aggregation core:
//!
//! * [`mod@reference`] — a *reference interpreter* that executes **logical**
//!   plans directly, including the algebrizer's mutually recursive form
//!   (scalar subqueries evaluated per row, §2.1) and literal per-row
//!   `Apply` loops (§1.3). It is deliberately naive: it serves as the
//!   semantics oracle for every rewrite and as the paper's "correlated
//!   execution" baseline.
//! * [`physical`] — the real engine: hash joins, hash aggregation, index
//!   seeks, parameterized re-execution for `Apply`, and segmented
//!   execution for `SegmentApply`.

pub mod aggregate;
pub mod bindings;
pub mod chunk;
pub mod eval;
pub mod explain_phys;
pub mod physical;
pub mod reference;

pub use bindings::Bindings;
pub use chunk::Chunk;
pub use physical::{PhysExpr, PhysPlan};
pub use reference::Reference;
