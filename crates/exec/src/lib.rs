#![warn(missing_docs)]
//! Execution engine for `orthopt`.
//!
//! Two executors share one scalar evaluator and one aggregation core:
//!
//! * [`mod@reference`] — a *reference interpreter* that executes **logical**
//!   plans directly, including the algebrizer's mutually recursive form
//!   (scalar subqueries evaluated per row, §2.1) and literal per-row
//!   `Apply` loops (§1.3). It is deliberately naive: it serves as the
//!   semantics oracle for every rewrite and as the paper's "correlated
//!   execution" baseline.
//! * [`physical`] + [`pipeline`] — the real engine: physical plans are
//!   compiled into a streaming pull-based [`Pipeline`] of batched
//!   operators (hash joins, hash aggregation, index seeks,
//!   rebind-and-rewind re-execution for `Apply`, segmented execution
//!   for `SegmentApply`), with per-operator [`OpStats`] for
//!   `EXPLAIN ANALYZE`.

pub mod aggregate;
pub mod bindings;
pub mod chunk;
pub mod eval;
pub mod explain_phys;
pub mod faults;
pub mod parallel;
pub mod physical;
pub mod pipeline;
pub mod reference;
pub mod stats;

pub use bindings::Bindings;
pub use chunk::Chunk;
pub use explain_phys::{explain_phys, explain_phys_analyze, phys_node_labels};
pub use parallel::{exchange_eligible, place_exchanges, wrap_exchange};
pub use physical::{PhysExpr, PhysPlan};
pub use pipeline::{current_op, Batch, ExecCtx, Operator, Pipeline, DEFAULT_BATCH_SIZE};
pub use reference::Reference;
pub use stats::OpStats;
