//! Reference interpreter for logical plans — the semantics oracle.
//!
//! Executes a [`RelExpr`] exactly as written: scalar subqueries run per
//! row through mutual recursion with the scalar evaluator (§2.1),
//! `Apply` is a literal per-row loop (§1.3), joins are nested loops, and
//! `SegmentApply` partitions and re-executes. Nothing is rewritten or
//! optimized — which is precisely what makes it a trustworthy oracle for
//! the rewrite and optimizer crates, and a faithful model of the
//! "correlated execution" baseline strategy of §1.1.

use std::collections::HashMap;
use std::rc::Rc;

use orthopt_common::{Error, Result, Row, Value};
use orthopt_ir::{ApplyKind, JoinKind, RelExpr};
use orthopt_storage::Catalog;

use crate::aggregate::hash_aggregate;
use crate::bindings::Bindings;
use crate::chunk::Chunk;
use crate::eval::{eval, eval_predicate, EvalCtx, PosMap, SubqueryEval};

/// The reference interpreter.
pub struct Reference<'a> {
    catalog: &'a Catalog,
}

impl SubqueryEval for Reference<'_> {
    fn eval_rel(&self, rel: &RelExpr, binds: &Bindings) -> Result<Chunk> {
        self.eval(rel, binds)
    }
}

impl<'a> Reference<'a> {
    /// Creates an interpreter over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Reference { catalog }
    }

    /// Evaluates a plan with no outer parameters.
    pub fn run(&self, rel: &RelExpr) -> Result<Chunk> {
        self.eval(rel, &Bindings::new())
    }

    /// Context with the position map hoisted out of the per-row loop —
    /// column lookups are hash probes instead of linear scans.
    fn ctx<'b>(
        &'b self,
        cols: &'b [orthopt_common::ColId],
        pos: &'b PosMap,
        row: &'b [Value],
        binds: &'b Bindings,
    ) -> EvalCtx<'b> {
        EvalCtx {
            cols,
            row,
            binds,
            subq: Some(self),
            pos: Some(pos),
        }
    }

    /// Evaluates a plan under parameter bindings.
    pub fn eval(&self, rel: &RelExpr, binds: &Bindings) -> Result<Chunk> {
        let out_cols = rel.output_col_ids();
        match rel {
            RelExpr::Get(g) => {
                let table = self.catalog.table(g.table);
                let rows = table
                    .rows()
                    .iter()
                    .map(|r| g.positions.iter().map(|&p| r[p].clone()).collect())
                    .collect();
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::ConstRel { rows, .. } => Ok(Chunk {
                cols: out_cols,
                rows: rows.clone(),
            }),
            RelExpr::Select { input, predicate } => {
                let inp = self.eval(input, binds)?;
                let pm = PosMap::new(&inp.cols);
                let mut rows = Vec::new();
                for r in inp.rows {
                    if eval_predicate(predicate, &self.ctx(&inp.cols, &pm, &r, binds))? {
                        rows.push(r);
                    }
                }
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::Map { input, defs } => {
                let inp = self.eval(input, binds)?;
                let pm = PosMap::new(&inp.cols);
                let mut rows = Vec::with_capacity(inp.len());
                for r in inp.rows {
                    let mut out = r.clone();
                    for d in defs {
                        out.push(eval(&d.expr, &self.ctx(&inp.cols, &pm, &r, binds))?);
                    }
                    rows.push(out);
                }
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::Project { input, cols } => {
                let inp = self.eval(input, binds)?;
                inp.project(cols)
            }
            RelExpr::Join {
                kind,
                left,
                right,
                predicate,
            } => {
                let l = self.eval(left, binds)?;
                let r = self.eval(right, binds)?;
                self.join_loop(*kind, &l, &r, |row, cols, pm| {
                    eval_predicate(predicate, &self.ctx(cols, pm, row, binds))
                })
            }
            RelExpr::Apply { kind, left, right } => {
                let l = self.eval(left, binds)?;
                let right_cols = right.output_col_ids();
                let mut rows = Vec::new();
                for lr in &l.rows {
                    // Bind every outer column — the parameterized
                    // expression picks up whichever it references.
                    let inner_binds = l.cols.iter().fold(binds.clone(), |mut b, c| {
                        let pos = l.col_pos(*c).expect("own layout");
                        b.set(*c, lr[pos].clone());
                        b
                    });
                    let inner = self.eval(right, &inner_binds)?;
                    match kind {
                        ApplyKind::Cross => {
                            for ir in inner.rows {
                                let mut row = lr.clone();
                                row.extend(ir);
                                rows.push(row);
                            }
                        }
                        ApplyKind::LeftOuter => {
                            if inner.is_empty() {
                                let mut row = lr.clone();
                                row.extend(std::iter::repeat_n(Value::Null, right_cols.len()));
                                rows.push(row);
                            } else {
                                for ir in inner.rows {
                                    let mut row = lr.clone();
                                    row.extend(ir);
                                    rows.push(row);
                                }
                            }
                        }
                        ApplyKind::Semi => {
                            if !inner.is_empty() {
                                rows.push(lr.clone());
                            }
                        }
                        ApplyKind::Anti => {
                            if inner.is_empty() {
                                rows.push(lr.clone());
                            }
                        }
                    }
                }
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::SegmentApply {
                input,
                segment_cols,
                inner,
            } => {
                let inp = self.eval(input, binds)?;
                // Partition preserving first-occurrence order.
                let mut order: Vec<Vec<Value>> = Vec::new();
                let mut segments: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
                for r in &inp.rows {
                    let key = inp.key_of(r, segment_cols)?;
                    segments
                        .entry(key.clone())
                        .or_insert_with(|| {
                            order.push(key);
                            Vec::new()
                        })
                        .push(r.clone());
                }
                let inner_cols = inner.output_col_ids();
                let mut rows = Vec::new();
                for key in order {
                    let seg_rows = segments.remove(&key).expect("segment present");
                    let segment = Rc::new(Chunk {
                        cols: inp.cols.clone(),
                        rows: seg_rows,
                    });
                    let seg_binds = binds.with_segment(segment);
                    let result = self.eval(inner, &seg_binds)?;
                    for ir in result.rows {
                        // Output = segment key values ++ inner columns not
                        // already among the segmenting columns.
                        let mut row: Row = Vec::with_capacity(out_cols.len());
                        for oc in &out_cols {
                            if let Some(i) = segment_cols.iter().position(|c| c == oc) {
                                row.push(key[i].clone());
                            } else {
                                let pos = inner_cols
                                    .iter()
                                    .position(|c| c == oc)
                                    .ok_or_else(|| Error::internal("segment output column"))?;
                                row.push(ir[pos].clone());
                            }
                        }
                        rows.push(row);
                    }
                }
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::SegmentRef { cols } => {
                let segment = binds
                    .current_segment()
                    .ok_or_else(|| Error::internal("SegmentRef outside SegmentApply"))?
                    .clone();
                let rows = cols
                    .iter()
                    .map(|(_, src)| segment.require_pos(*src))
                    .collect::<Result<Vec<_>>>()
                    .map(|positions| {
                        segment
                            .rows
                            .iter()
                            .map(|r| positions.iter().map(|&p| r[p].clone()).collect())
                            .collect::<Vec<Row>>()
                    })?;
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::GroupBy {
                kind,
                input,
                group_cols,
                aggs,
            } => {
                let inp = self.eval(input, binds)?;
                let pm = PosMap::new(&inp.cols);
                let mut feed = Vec::with_capacity(inp.len());
                for r in &inp.rows {
                    let key = inp.key_of(r, group_cols)?;
                    let args = aggs
                        .iter()
                        .map(|a| {
                            a.arg
                                .as_ref()
                                .map(|e| eval(e, &self.ctx(&inp.cols, &pm, r, binds)))
                                .transpose()
                        })
                        .collect::<Result<Vec<_>>>()?;
                    feed.push((key, args));
                }
                let rows = hash_aggregate(*kind, aggs, feed)?;
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::UnionAll {
                left,
                right,
                left_map,
                right_map,
                ..
            } => {
                let l = self.eval(left, binds)?;
                let r = self.eval(right, binds)?;
                let mut rows = Vec::with_capacity(l.len() + r.len());
                let lpos: Vec<usize> = left_map
                    .iter()
                    .map(|c| l.require_pos(*c))
                    .collect::<Result<_>>()?;
                let rpos: Vec<usize> = right_map
                    .iter()
                    .map(|c| r.require_pos(*c))
                    .collect::<Result<_>>()?;
                for row in &l.rows {
                    rows.push(lpos.iter().map(|&p| row[p].clone()).collect());
                }
                for row in &r.rows {
                    rows.push(rpos.iter().map(|&p| row[p].clone()).collect());
                }
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::Except {
                left,
                right,
                right_map,
            } => {
                let l = self.eval(left, binds)?;
                let r = self.eval(right, binds)?;
                let rpos: Vec<usize> = right_map
                    .iter()
                    .map(|c| r.require_pos(*c))
                    .collect::<Result<_>>()?;
                let mut counts: HashMap<Row, usize> = HashMap::new();
                for row in &r.rows {
                    let key: Row = rpos.iter().map(|&p| row[p].clone()).collect();
                    *counts.entry(key).or_insert(0) += 1;
                }
                let mut rows = Vec::new();
                for row in l.rows {
                    match counts.get_mut(&row) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ => rows.push(row),
                    }
                }
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
            RelExpr::Max1Row { input } => {
                let inp = self.eval(input, binds)?;
                if inp.len() > 1 {
                    return Err(Error::SubqueryReturnedMoreThanOneRow);
                }
                Ok(inp)
            }
            RelExpr::Enumerate { input, .. } => {
                let inp = self.eval(input, binds)?;
                let rows = inp
                    .rows
                    .into_iter()
                    .enumerate()
                    .map(|(i, mut r)| {
                        r.push(Value::Int(i as i64));
                        r
                    })
                    .collect();
                Ok(Chunk {
                    cols: out_cols,
                    rows,
                })
            }
        }
    }

    fn join_loop(
        &self,
        kind: JoinKind,
        l: &Chunk,
        r: &Chunk,
        mut pred: impl FnMut(&[Value], &[orthopt_common::ColId], &PosMap) -> Result<bool>,
    ) -> Result<Chunk> {
        let mut combined_cols = l.cols.clone();
        combined_cols.extend(r.cols.iter().copied());
        let pm = PosMap::new(&combined_cols);
        let mut rows = Vec::new();
        for lr in &l.rows {
            let mut matched = false;
            for rr in &r.rows {
                let mut row = lr.clone();
                row.extend(rr.iter().cloned());
                if pred(&row, &combined_cols, &pm)? {
                    matched = true;
                    match kind {
                        JoinKind::Inner | JoinKind::LeftOuter => rows.push(row),
                        JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                    }
                }
            }
            match kind {
                JoinKind::LeftOuter if !matched => {
                    let mut row = lr.clone();
                    row.extend(std::iter::repeat_n(Value::Null, r.cols.len()));
                    rows.push(row);
                }
                JoinKind::LeftSemi if matched => rows.push(lr.clone()),
                JoinKind::LeftAnti if !matched => rows.push(lr.clone()),
                _ => {}
            }
        }
        let cols = match kind {
            JoinKind::Inner | JoinKind::LeftOuter => combined_cols,
            JoinKind::LeftSemi | JoinKind::LeftAnti => l.cols.clone(),
        };
        Ok(Chunk { cols, rows })
    }
}
