//! Physical operators and their executor.
//!
//! These are the execution-time counterparts the cost-based optimizer
//! chooses among: hash-based joins and aggregation for set-oriented
//! plans, `ApplyLoop` + `IndexSeek` for (re-)introduced correlated
//! execution (§4: "the simplest and most common being index-lookup
//! join"), and `SegmentExec` for segmented execution (§3.4).
//!
//! Execution is streaming: [`Executor::exec`] compiles the operator
//! tree into a pull-based [`Pipeline`](crate::pipeline::Pipeline) of
//! batched operators and drains it. Parameterized operators
//! (`ApplyLoop`, `SegmentExec`) rebind parameters and rewind their
//! inner pipeline per outer row / per segment; see [`crate::pipeline`].

use orthopt_common::{ColId, Result, Row, TableId};
use orthopt_ir::{AggDef, ApplyKind, ColumnMeta, GroupKind, JoinKind, ScalarExpr};
use orthopt_storage::Catalog;

use crate::bindings::Bindings;
use crate::chunk::Chunk;
use crate::pipeline::Pipeline;

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    /// Full scan of a base table.
    TableScan {
        /// Table id.
        table: TableId,
        /// Base-column positions to read.
        positions: Vec<usize>,
        /// Output column ids (parallel to `positions`).
        cols: Vec<ColId>,
    },
    /// Equality probe into a hash index; probe values come from outer
    /// parameters and literals, enabling index-lookup joins.
    IndexSeek {
        /// Table id.
        table: TableId,
        /// Base-column positions to read.
        positions: Vec<usize>,
        /// Output column ids (parallel to `positions`).
        cols: Vec<ColId>,
        /// Indexed base-column positions.
        index_cols: Vec<usize>,
        /// One probe expression per indexed column (parameters/literals
        /// only).
        probes: Vec<ScalarExpr>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<PhysExpr>,
        /// Predicate.
        predicate: ScalarExpr,
    },
    /// Computes additional columns.
    Compute {
        /// Input.
        input: Box<PhysExpr>,
        /// `(output column, expression)` pairs.
        defs: Vec<(ColId, ScalarExpr)>,
    },
    /// Column pruning/reordering.
    ProjectCols {
        /// Input.
        input: Box<PhysExpr>,
        /// Retained columns in output order.
        cols: Vec<ColId>,
    },
    /// Hash join: builds on the right input, probes with the left.
    HashJoin {
        /// Join variant.
        kind: JoinKind,
        /// Probe side.
        left: Box<PhysExpr>,
        /// Build side.
        right: Box<PhysExpr>,
        /// Probe-side key columns.
        left_keys: Vec<ColId>,
        /// Build-side key columns.
        right_keys: Vec<ColId>,
        /// Residual predicate evaluated on joined rows.
        residual: ScalarExpr,
    },
    /// Nested-loop join (arbitrary predicates).
    NLJoin {
        /// Join variant.
        kind: JoinKind,
        /// Outer input.
        left: Box<PhysExpr>,
        /// Inner input.
        right: Box<PhysExpr>,
        /// Join predicate.
        predicate: ScalarExpr,
    },
    /// Correlated execution: re-runs `right` once per `left` row with
    /// `params` bound from that row.
    ApplyLoop {
        /// Combination variant.
        kind: ApplyKind,
        /// Outer input.
        left: Box<PhysExpr>,
        /// Parameterized inner plan.
        right: Box<PhysExpr>,
        /// Outer columns the inner plan references.
        params: Vec<ColId>,
    },
    /// Batched correlated execution: accumulates outer rows, dedups the
    /// correlation-parameter tuples, runs `right` once per *distinct*
    /// binding, and joins the cached inner results back to outer rows
    /// positionally. Semantically identical to [`PhysExpr::ApplyLoop`];
    /// cheaper when outer rows repeat correlation keys.
    BatchedApply {
        /// Combination variant.
        kind: ApplyKind,
        /// Outer input.
        left: Box<PhysExpr>,
        /// Parameterized inner plan.
        right: Box<PhysExpr>,
        /// Outer columns the inner plan references.
        params: Vec<ColId>,
    },
    /// Correlated index-lookup join (§4: "the simplest and most common
    /// being index-lookup join"): a fused unary operator that, per
    /// distinct outer binding, probes a storage hash index directly,
    /// applies the residual predicate, and projects the inner layout —
    /// the seek-shaped inner plan collapsed into one operator.
    IndexLookupJoin {
        /// Combination variant.
        kind: ApplyKind,
        /// Outer input.
        left: Box<PhysExpr>,
        /// Probed table.
        table: TableId,
        /// Base-column positions fetched per matching row.
        positions: Vec<usize>,
        /// Layout of fetched rows (parallel to `positions`); the
        /// residual is evaluated over this layout.
        fetch_cols: Vec<ColId>,
        /// Indexed base-column positions, canonically sorted ascending.
        index_cols: Vec<usize>,
        /// One probe expression per indexed column (parameters/literals
        /// only).
        probes: Vec<ScalarExpr>,
        /// Residual predicate over fetched rows (`true` when absent).
        residual: ScalarExpr,
        /// Inner output projection (subset of `fetch_cols`).
        cols: Vec<ColId>,
        /// Outer columns the probes/residual reference.
        params: Vec<ColId>,
    },
    /// Segmented execution: hash-partitions the input on the segmenting
    /// columns and runs `inner` once per segment (§3.4).
    SegmentExec {
        /// Input.
        input: Box<PhysExpr>,
        /// Segmenting columns.
        segment_cols: Vec<ColId>,
        /// Per-segment plan (reads the segment via `SegmentScan`).
        inner: Box<PhysExpr>,
        /// Output layout (segment columns then inner extras).
        out_cols: Vec<ColId>,
    },
    /// Reads the current segment, re-exposing selected source columns.
    SegmentScan {
        /// `(output id, source id in the segment)` pairs.
        cols: Vec<(ColId, ColId)>,
    },
    /// Hash aggregation (vector, scalar, or local — identical at
    /// execution time, §3.3).
    HashAggregate {
        /// Grouping flavour.
        kind: GroupKind,
        /// Input.
        input: Box<PhysExpr>,
        /// Grouping columns.
        group_cols: Vec<ColId>,
        /// Aggregates.
        aggs: Vec<AggDef>,
    },
    /// Bag union with positional remapping.
    Concat {
        /// Left input.
        left: Box<PhysExpr>,
        /// Right input.
        right: Box<PhysExpr>,
        /// Output columns.
        cols: Vec<ColId>,
        /// Left source per output column.
        left_map: Vec<ColId>,
        /// Right source per output column.
        right_map: Vec<ColId>,
    },
    /// Bag difference.
    ExceptExec {
        /// Left input.
        left: Box<PhysExpr>,
        /// Right input.
        right: Box<PhysExpr>,
        /// Right column corresponding to each left output column.
        right_map: Vec<ColId>,
    },
    /// Run-time cardinality check (`Max1Row`).
    AssertMax1 {
        /// Input.
        input: Box<PhysExpr>,
    },
    /// Appends a unique integer column (manufactured key).
    RowNumber {
        /// Input.
        input: Box<PhysExpr>,
        /// Output column id.
        col: ColId,
    },
    /// Constant rows.
    ConstScan {
        /// Output columns.
        cols: Vec<ColId>,
        /// Rows.
        rows: Vec<Row>,
    },
    /// Presentation sort (total order, NULL first; `true` = descending).
    Sort {
        /// Input.
        input: Box<PhysExpr>,
        /// Sort columns with direction, major first.
        by: Vec<(ColId, bool)>,
    },
    /// Keeps the first `n` rows.
    Limit {
        /// Input.
        input: Box<PhysExpr>,
        /// Maximum rows to emit.
        n: usize,
    },
    /// Parallel-execution boundary: runs `input` across the worker pool
    /// (morsel-split scans, partitioned hash-join builds, thread-local
    /// partial aggregation — the paper's LocalGroupBy, §3.3, realized
    /// physically) and gathers worker output deterministically. Falls
    /// back to serial execution when the effective parallelism is 1 or
    /// the subtree shape is not recognized by the exchange runtime.
    Exchange {
        /// Subtree to parallelize.
        input: Box<PhysExpr>,
    },
    /// Worker-local table scan restricted to row ranges (morsels).
    /// Created only by the exchange runtime, never by the optimizer.
    MorselScan {
        /// Table id.
        table: TableId,
        /// Base-column positions to read.
        positions: Vec<usize>,
        /// Output column ids (parallel to `positions`).
        cols: Vec<ColId>,
        /// Half-open `[start, end)` row ranges this worker owns.
        ranges: Vec<(usize, usize)>,
    },
}

impl PhysExpr {
    /// Output column ids, in order.
    pub fn out_cols(&self) -> Vec<ColId> {
        match self {
            PhysExpr::TableScan { cols, .. } | PhysExpr::IndexSeek { cols, .. } => cols.clone(),
            PhysExpr::Filter { input, .. }
            | PhysExpr::AssertMax1 { input }
            | PhysExpr::Limit { input, .. }
            | PhysExpr::Sort { input, .. } => input.out_cols(),
            PhysExpr::Compute { input, defs } => {
                let mut cols = input.out_cols();
                cols.extend(defs.iter().map(|(c, _)| *c));
                cols
            }
            PhysExpr::ProjectCols { cols, .. } => cols.clone(),
            PhysExpr::HashJoin {
                kind, left, right, ..
            }
            | PhysExpr::NLJoin {
                kind, left, right, ..
            } => match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => left.out_cols(),
                _ => {
                    let mut cols = left.out_cols();
                    cols.extend(right.out_cols());
                    cols
                }
            },
            PhysExpr::ApplyLoop {
                kind, left, right, ..
            }
            | PhysExpr::BatchedApply {
                kind, left, right, ..
            } => match kind {
                ApplyKind::Semi | ApplyKind::Anti => left.out_cols(),
                _ => {
                    let mut cols = left.out_cols();
                    cols.extend(right.out_cols());
                    cols
                }
            },
            PhysExpr::IndexLookupJoin {
                kind, left, cols, ..
            } => match kind {
                ApplyKind::Semi | ApplyKind::Anti => left.out_cols(),
                _ => {
                    let mut out = left.out_cols();
                    out.extend(cols.iter().copied());
                    out
                }
            },
            PhysExpr::SegmentExec { out_cols, .. } => out_cols.clone(),
            PhysExpr::SegmentScan { cols } => cols.iter().map(|(o, _)| *o).collect(),
            PhysExpr::HashAggregate {
                group_cols, aggs, ..
            } => {
                let mut cols = group_cols.clone();
                cols.extend(aggs.iter().map(|a| a.out.id));
                cols
            }
            PhysExpr::Concat { cols, .. } => cols.clone(),
            PhysExpr::ExceptExec { left, .. } => left.out_cols(),
            PhysExpr::RowNumber { input, col } => {
                let mut cols = input.out_cols();
                cols.push(*col);
                cols
            }
            PhysExpr::ConstScan { cols, .. } => cols.clone(),
            PhysExpr::Exchange { input } => input.out_cols(),
            PhysExpr::MorselScan { cols, .. } => cols.clone(),
        }
    }

    /// Number of operators in the plan.
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysExpr::Filter { input, .. }
            | PhysExpr::Compute { input, .. }
            | PhysExpr::ProjectCols { input, .. }
            | PhysExpr::AssertMax1 { input }
            | PhysExpr::RowNumber { input, .. }
            | PhysExpr::Sort { input, .. }
            | PhysExpr::Limit { input, .. }
            | PhysExpr::Exchange { input }
            | PhysExpr::HashAggregate { input, .. } => input.node_count(),
            PhysExpr::HashJoin { left, right, .. }
            | PhysExpr::NLJoin { left, right, .. }
            | PhysExpr::ApplyLoop { left, right, .. }
            | PhysExpr::BatchedApply { left, right, .. }
            | PhysExpr::Concat { left, right, .. }
            | PhysExpr::ExceptExec { left, right, .. } => left.node_count() + right.node_count(),
            PhysExpr::IndexLookupJoin { left, .. } => left.node_count(),
            PhysExpr::SegmentExec { input, inner, .. } => input.node_count() + inner.node_count(),
            _ => 0,
        }
    }

    /// Mutable child subtrees in execution-id order (left/input before
    /// right/inner); used by plan rewriters and mutation harnesses.
    pub fn children_mut(&mut self) -> Vec<&mut PhysExpr> {
        match self {
            PhysExpr::Filter { input, .. }
            | PhysExpr::Compute { input, .. }
            | PhysExpr::ProjectCols { input, .. }
            | PhysExpr::AssertMax1 { input }
            | PhysExpr::RowNumber { input, .. }
            | PhysExpr::Sort { input, .. }
            | PhysExpr::Limit { input, .. }
            | PhysExpr::Exchange { input }
            | PhysExpr::HashAggregate { input, .. } => vec![input],
            PhysExpr::HashJoin { left, right, .. }
            | PhysExpr::NLJoin { left, right, .. }
            | PhysExpr::ApplyLoop { left, right, .. }
            | PhysExpr::BatchedApply { left, right, .. }
            | PhysExpr::Concat { left, right, .. }
            | PhysExpr::ExceptExec { left, right, .. } => vec![left, right],
            PhysExpr::IndexLookupJoin { left, .. } => vec![left],
            PhysExpr::SegmentExec { input, inner, .. } => vec![input, inner],
            PhysExpr::TableScan { .. }
            | PhysExpr::IndexSeek { .. }
            | PhysExpr::SegmentScan { .. }
            | PhysExpr::ConstScan { .. }
            | PhysExpr::MorselScan { .. } => vec![],
        }
    }
}

/// A complete physical plan: root operator plus result column metadata
/// (names for presentation).
#[derive(Debug, Clone)]
pub struct PhysPlan {
    /// Root operator.
    pub root: PhysExpr,
    /// Result column metadata, parallel to the root's output layout.
    pub output: Vec<ColumnMeta>,
}

impl PhysPlan {
    /// Executes against a catalog with no outer parameters.
    pub fn run(&self, catalog: &Catalog) -> Result<Chunk> {
        Executor { catalog }.exec(&self.root, &Bindings::new())
    }
}

/// Executes physical plans against a catalog.
pub struct Executor<'a> {
    /// The database.
    pub catalog: &'a Catalog,
}

impl Executor<'_> {
    /// Executes an operator under parameter bindings by compiling it
    /// into a streaming [`Pipeline`] and draining the result.
    ///
    /// Plans executed repeatedly (benchmarks, `EXPLAIN ANALYZE`) should
    /// compile a [`Pipeline`] once and re-`execute` it instead.
    pub fn exec(&self, p: &PhysExpr, binds: &Bindings) -> Result<Chunk> {
        Pipeline::compile(p)?.execute(self.catalog, binds)
    }
}
