//! Physical operators and their executor.
//!
//! These are the execution-time counterparts the cost-based optimizer
//! chooses among: hash-based joins and aggregation for set-oriented
//! plans, `ApplyLoop` + `IndexSeek` for (re-)introduced correlated
//! execution (§4: "the simplest and most common being index-lookup
//! join"), and `SegmentExec` for segmented execution (§3.4).
//!
//! Execution is batch-at-a-time: each operator materializes its result
//! [`Chunk`]. Parameterized operators (`ApplyLoop`, `SegmentExec`)
//! re-execute their inner plan per outer row / per segment under
//! extended [`Bindings`].

use std::collections::HashMap;
use std::rc::Rc;

use orthopt_common::{ColId, Error, Result, Row, TableId, Value};
use orthopt_ir::{AggDef, ApplyKind, ColumnMeta, GroupKind, JoinKind, ScalarExpr};
use orthopt_storage::Catalog;

use crate::aggregate::hash_aggregate;
use crate::bindings::Bindings;
use crate::chunk::Chunk;
use crate::eval::{eval, eval_predicate, EvalCtx};

/// A physical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    /// Full scan of a base table.
    TableScan {
        /// Table id.
        table: TableId,
        /// Base-column positions to read.
        positions: Vec<usize>,
        /// Output column ids (parallel to `positions`).
        cols: Vec<ColId>,
    },
    /// Equality probe into a hash index; probe values come from outer
    /// parameters and literals, enabling index-lookup joins.
    IndexSeek {
        /// Table id.
        table: TableId,
        /// Base-column positions to read.
        positions: Vec<usize>,
        /// Output column ids (parallel to `positions`).
        cols: Vec<ColId>,
        /// Indexed base-column positions.
        index_cols: Vec<usize>,
        /// One probe expression per indexed column (parameters/literals
        /// only).
        probes: Vec<ScalarExpr>,
    },
    /// Row filter.
    Filter {
        /// Input.
        input: Box<PhysExpr>,
        /// Predicate.
        predicate: ScalarExpr,
    },
    /// Computes additional columns.
    Compute {
        /// Input.
        input: Box<PhysExpr>,
        /// `(output column, expression)` pairs.
        defs: Vec<(ColId, ScalarExpr)>,
    },
    /// Column pruning/reordering.
    ProjectCols {
        /// Input.
        input: Box<PhysExpr>,
        /// Retained columns in output order.
        cols: Vec<ColId>,
    },
    /// Hash join: builds on the right input, probes with the left.
    HashJoin {
        /// Join variant.
        kind: JoinKind,
        /// Probe side.
        left: Box<PhysExpr>,
        /// Build side.
        right: Box<PhysExpr>,
        /// Probe-side key columns.
        left_keys: Vec<ColId>,
        /// Build-side key columns.
        right_keys: Vec<ColId>,
        /// Residual predicate evaluated on joined rows.
        residual: ScalarExpr,
    },
    /// Nested-loop join (arbitrary predicates).
    NLJoin {
        /// Join variant.
        kind: JoinKind,
        /// Outer input.
        left: Box<PhysExpr>,
        /// Inner input.
        right: Box<PhysExpr>,
        /// Join predicate.
        predicate: ScalarExpr,
    },
    /// Correlated execution: re-runs `right` once per `left` row with
    /// `params` bound from that row.
    ApplyLoop {
        /// Combination variant.
        kind: ApplyKind,
        /// Outer input.
        left: Box<PhysExpr>,
        /// Parameterized inner plan.
        right: Box<PhysExpr>,
        /// Outer columns the inner plan references.
        params: Vec<ColId>,
    },
    /// Segmented execution: hash-partitions the input on the segmenting
    /// columns and runs `inner` once per segment (§3.4).
    SegmentExec {
        /// Input.
        input: Box<PhysExpr>,
        /// Segmenting columns.
        segment_cols: Vec<ColId>,
        /// Per-segment plan (reads the segment via `SegmentScan`).
        inner: Box<PhysExpr>,
        /// Output layout (segment columns then inner extras).
        out_cols: Vec<ColId>,
    },
    /// Reads the current segment, re-exposing selected source columns.
    SegmentScan {
        /// `(output id, source id in the segment)` pairs.
        cols: Vec<(ColId, ColId)>,
    },
    /// Hash aggregation (vector, scalar, or local — identical at
    /// execution time, §3.3).
    HashAggregate {
        /// Grouping flavour.
        kind: GroupKind,
        /// Input.
        input: Box<PhysExpr>,
        /// Grouping columns.
        group_cols: Vec<ColId>,
        /// Aggregates.
        aggs: Vec<AggDef>,
    },
    /// Bag union with positional remapping.
    Concat {
        /// Left input.
        left: Box<PhysExpr>,
        /// Right input.
        right: Box<PhysExpr>,
        /// Output columns.
        cols: Vec<ColId>,
        /// Left source per output column.
        left_map: Vec<ColId>,
        /// Right source per output column.
        right_map: Vec<ColId>,
    },
    /// Bag difference.
    ExceptExec {
        /// Left input.
        left: Box<PhysExpr>,
        /// Right input.
        right: Box<PhysExpr>,
        /// Right column corresponding to each left output column.
        right_map: Vec<ColId>,
    },
    /// Run-time cardinality check (`Max1Row`).
    AssertMax1 {
        /// Input.
        input: Box<PhysExpr>,
    },
    /// Appends a unique integer column (manufactured key).
    RowNumber {
        /// Input.
        input: Box<PhysExpr>,
        /// Output column id.
        col: ColId,
    },
    /// Constant rows.
    ConstScan {
        /// Output columns.
        cols: Vec<ColId>,
        /// Rows.
        rows: Vec<Row>,
    },
    /// Presentation sort (total order, NULL first; `true` = descending).
    Sort {
        /// Input.
        input: Box<PhysExpr>,
        /// Sort columns with direction, major first.
        by: Vec<(ColId, bool)>,
    },
    /// Keeps the first `n` rows.
    Limit {
        /// Input.
        input: Box<PhysExpr>,
        /// Maximum rows to emit.
        n: usize,
    },
}

impl PhysExpr {
    /// Output column ids, in order.
    pub fn out_cols(&self) -> Vec<ColId> {
        match self {
            PhysExpr::TableScan { cols, .. } | PhysExpr::IndexSeek { cols, .. } => cols.clone(),
            PhysExpr::Filter { input, .. }
            | PhysExpr::AssertMax1 { input }
            | PhysExpr::Limit { input, .. }
            | PhysExpr::Sort { input, .. } => input.out_cols(),
            PhysExpr::Compute { input, defs } => {
                let mut cols = input.out_cols();
                cols.extend(defs.iter().map(|(c, _)| *c));
                cols
            }
            PhysExpr::ProjectCols { cols, .. } => cols.clone(),
            PhysExpr::HashJoin {
                kind, left, right, ..
            }
            | PhysExpr::NLJoin {
                kind, left, right, ..
            } => match kind {
                JoinKind::LeftSemi | JoinKind::LeftAnti => left.out_cols(),
                _ => {
                    let mut cols = left.out_cols();
                    cols.extend(right.out_cols());
                    cols
                }
            },
            PhysExpr::ApplyLoop {
                kind, left, right, ..
            } => match kind {
                ApplyKind::Semi | ApplyKind::Anti => left.out_cols(),
                _ => {
                    let mut cols = left.out_cols();
                    cols.extend(right.out_cols());
                    cols
                }
            },
            PhysExpr::SegmentExec { out_cols, .. } => out_cols.clone(),
            PhysExpr::SegmentScan { cols } => cols.iter().map(|(o, _)| *o).collect(),
            PhysExpr::HashAggregate {
                group_cols, aggs, ..
            } => {
                let mut cols = group_cols.clone();
                cols.extend(aggs.iter().map(|a| a.out.id));
                cols
            }
            PhysExpr::Concat { cols, .. } => cols.clone(),
            PhysExpr::ExceptExec { left, .. } => left.out_cols(),
            PhysExpr::RowNumber { input, col } => {
                let mut cols = input.out_cols();
                cols.push(*col);
                cols
            }
            PhysExpr::ConstScan { cols, .. } => cols.clone(),
        }
    }

    /// Number of operators in the plan.
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysExpr::Filter { input, .. }
            | PhysExpr::Compute { input, .. }
            | PhysExpr::ProjectCols { input, .. }
            | PhysExpr::AssertMax1 { input }
            | PhysExpr::RowNumber { input, .. }
            | PhysExpr::Sort { input, .. }
            | PhysExpr::Limit { input, .. }
            | PhysExpr::HashAggregate { input, .. } => input.node_count(),
            PhysExpr::HashJoin { left, right, .. }
            | PhysExpr::NLJoin { left, right, .. }
            | PhysExpr::ApplyLoop { left, right, .. }
            | PhysExpr::Concat { left, right, .. }
            | PhysExpr::ExceptExec { left, right, .. } => {
                left.node_count() + right.node_count()
            }
            PhysExpr::SegmentExec { input, inner, .. } => {
                input.node_count() + inner.node_count()
            }
            _ => 0,
        }
    }
}

/// A complete physical plan: root operator plus result column metadata
/// (names for presentation).
#[derive(Debug, Clone)]
pub struct PhysPlan {
    /// Root operator.
    pub root: PhysExpr,
    /// Result column metadata, parallel to the root's output layout.
    pub output: Vec<ColumnMeta>,
}

impl PhysPlan {
    /// Executes against a catalog with no outer parameters.
    pub fn run(&self, catalog: &Catalog) -> Result<Chunk> {
        Executor { catalog }.exec(&self.root, &Bindings::new())
    }
}

/// Executes physical plans against a catalog.
pub struct Executor<'a> {
    /// The database.
    pub catalog: &'a Catalog,
}

impl Executor<'_> {
    /// Executes an operator under parameter bindings.
    pub fn exec(&self, p: &PhysExpr, binds: &Bindings) -> Result<Chunk> {
        match p {
            PhysExpr::TableScan {
                table,
                positions,
                cols,
            } => {
                let t = self.catalog.table(*table);
                let rows = t
                    .rows()
                    .iter()
                    .map(|r| positions.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                Ok(Chunk {
                    cols: cols.clone(),
                    rows,
                })
            }
            PhysExpr::IndexSeek {
                table,
                positions,
                cols,
                index_cols,
                probes,
            } => {
                let t = self.catalog.table(*table);
                let empty_ctx = EvalCtx::plain(&[], &[], binds);
                let mut key = Vec::with_capacity(probes.len());
                for probe in probes {
                    let v = eval(probe, &empty_ctx)?;
                    if v.is_null() {
                        return Ok(Chunk::empty(cols.clone()));
                    }
                    key.push(v);
                }
                let hits = t.index_lookup(index_cols, &key).ok_or_else(|| {
                    Error::internal(format!(
                        "missing index on {:?} of {}",
                        index_cols,
                        t.def.name
                    ))
                })?;
                let rows = hits
                    .iter()
                    .map(|&rid| {
                        let r = &t.rows()[rid];
                        positions.iter().map(|&i| r[i].clone()).collect()
                    })
                    .collect();
                Ok(Chunk {
                    cols: cols.clone(),
                    rows,
                })
            }
            PhysExpr::Filter { input, predicate } => {
                let inp = self.exec(input, binds)?;
                let mut rows = Vec::new();
                for r in inp.rows {
                    if eval_predicate(predicate, &EvalCtx::plain(&inp.cols, &r, binds))? {
                        rows.push(r);
                    }
                }
                Ok(Chunk {
                    cols: inp.cols,
                    rows,
                })
            }
            PhysExpr::Compute { input, defs } => {
                let inp = self.exec(input, binds)?;
                let mut cols = inp.cols.clone();
                cols.extend(defs.iter().map(|(c, _)| *c));
                let mut rows = Vec::with_capacity(inp.len());
                for r in inp.rows {
                    let mut out = r.clone();
                    for (_, e) in defs {
                        out.push(eval(e, &EvalCtx::plain(&inp.cols, &r, binds))?);
                    }
                    rows.push(out);
                }
                Ok(Chunk { cols, rows })
            }
            PhysExpr::ProjectCols { input, cols } => {
                let inp = self.exec(input, binds)?;
                inp.project(cols)
            }
            PhysExpr::HashJoin {
                kind,
                left,
                right,
                left_keys,
                right_keys,
                residual,
            } => {
                let l = self.exec(left, binds)?;
                let r = self.exec(right, binds)?;
                self.hash_join(*kind, &l, &r, left_keys, right_keys, residual, binds)
            }
            PhysExpr::NLJoin {
                kind,
                left,
                right,
                predicate,
            } => {
                let l = self.exec(left, binds)?;
                let r = self.exec(right, binds)?;
                nl_join(*kind, &l, &r, |row, cols| {
                    eval_predicate(predicate, &EvalCtx::plain(cols, row, binds))
                })
            }
            PhysExpr::ApplyLoop {
                kind,
                left,
                right,
                params,
            } => {
                let l = self.exec(left, binds)?;
                let right_width = right.out_cols().len();
                let mut rows = Vec::new();
                // One bindings clone for the whole loop: every iteration
                // overwrites the same parameter keys.
                let mut inner_binds = binds.clone();
                let param_positions: Vec<(ColId, usize)> = params
                    .iter()
                    .filter_map(|p| l.col_pos(*p).map(|i| (*p, i)))
                    .collect();
                for lr in &l.rows {
                    for (p, i) in &param_positions {
                        inner_binds.set(*p, lr[*i].clone());
                    }
                    let inner = self.exec(right, &inner_binds)?;
                    match kind {
                        ApplyKind::Cross | ApplyKind::LeftOuter => {
                            if inner.is_empty() && *kind == ApplyKind::LeftOuter {
                                let mut row = lr.clone();
                                row.extend(std::iter::repeat_n(Value::Null, right_width));
                                rows.push(row);
                            } else {
                                for ir in inner.rows {
                                    let mut row = lr.clone();
                                    row.extend(ir);
                                    rows.push(row);
                                }
                            }
                        }
                        ApplyKind::Semi => {
                            if !inner.is_empty() {
                                rows.push(lr.clone());
                            }
                        }
                        ApplyKind::Anti => {
                            if inner.is_empty() {
                                rows.push(lr.clone());
                            }
                        }
                    }
                }
                Ok(Chunk {
                    cols: p.out_cols(),
                    rows,
                })
            }
            PhysExpr::SegmentExec {
                input,
                segment_cols,
                inner,
                out_cols,
            } => {
                let inp = self.exec(input, binds)?;
                let mut order: Vec<Vec<Value>> = Vec::new();
                let mut segments: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
                for r in &inp.rows {
                    let key = inp.key_of(r, segment_cols)?;
                    segments
                        .entry(key.clone())
                        .or_insert_with(|| {
                            order.push(key);
                            Vec::new()
                        })
                        .push(r.clone());
                }
                let inner_cols = inner.out_cols();
                let mut rows = Vec::new();
                for key in order {
                    let seg_rows = segments.remove(&key).expect("segment present");
                    let segment = Rc::new(Chunk {
                        cols: inp.cols.clone(),
                        rows: seg_rows,
                    });
                    let seg_binds = binds.with_segment(segment);
                    let result = self.exec(inner, &seg_binds)?;
                    for ir in result.rows {
                        let mut row: Row = Vec::with_capacity(out_cols.len());
                        for oc in out_cols {
                            if let Some(i) = segment_cols.iter().position(|c| c == oc) {
                                row.push(key[i].clone());
                            } else {
                                let pos = inner_cols
                                    .iter()
                                    .position(|c| c == oc)
                                    .ok_or_else(|| Error::internal("segment output column"))?;
                                row.push(ir[pos].clone());
                            }
                        }
                        rows.push(row);
                    }
                }
                Ok(Chunk {
                    cols: out_cols.clone(),
                    rows,
                })
            }
            PhysExpr::SegmentScan { cols } => {
                let segment = binds
                    .current_segment()
                    .ok_or_else(|| Error::internal("SegmentScan outside SegmentExec"))?
                    .clone();
                let positions: Vec<usize> = cols
                    .iter()
                    .map(|(_, src)| segment.require_pos(*src))
                    .collect::<Result<_>>()?;
                let rows = segment
                    .rows
                    .iter()
                    .map(|r| positions.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                Ok(Chunk {
                    cols: cols.iter().map(|(o, _)| *o).collect(),
                    rows,
                })
            }
            PhysExpr::HashAggregate {
                kind,
                input,
                group_cols,
                aggs,
            } => {
                let inp = self.exec(input, binds)?;
                let mut feed = Vec::with_capacity(inp.len());
                for r in &inp.rows {
                    let key = inp.key_of(r, group_cols)?;
                    let args = aggs
                        .iter()
                        .map(|a| {
                            a.arg
                                .as_ref()
                                .map(|e| eval(e, &EvalCtx::plain(&inp.cols, r, binds)))
                                .transpose()
                        })
                        .collect::<Result<Vec<_>>>()?;
                    feed.push((key, args));
                }
                let rows = hash_aggregate(*kind, aggs, feed)?;
                Ok(Chunk {
                    cols: p.out_cols(),
                    rows,
                })
            }
            PhysExpr::Concat {
                left,
                right,
                cols,
                left_map,
                right_map,
            } => {
                let l = self.exec(left, binds)?;
                let r = self.exec(right, binds)?;
                let lpos: Vec<usize> = left_map
                    .iter()
                    .map(|c| l.require_pos(*c))
                    .collect::<Result<_>>()?;
                let rpos: Vec<usize> = right_map
                    .iter()
                    .map(|c| r.require_pos(*c))
                    .collect::<Result<_>>()?;
                let mut rows = Vec::with_capacity(l.len() + r.len());
                for row in &l.rows {
                    rows.push(lpos.iter().map(|&i| row[i].clone()).collect());
                }
                for row in &r.rows {
                    rows.push(rpos.iter().map(|&i| row[i].clone()).collect());
                }
                Ok(Chunk {
                    cols: cols.clone(),
                    rows,
                })
            }
            PhysExpr::ExceptExec {
                left,
                right,
                right_map,
            } => {
                let l = self.exec(left, binds)?;
                let r = self.exec(right, binds)?;
                let rpos: Vec<usize> = right_map
                    .iter()
                    .map(|c| r.require_pos(*c))
                    .collect::<Result<_>>()?;
                let mut counts: HashMap<Row, usize> = HashMap::new();
                for row in &r.rows {
                    let key: Row = rpos.iter().map(|&i| row[i].clone()).collect();
                    *counts.entry(key).or_insert(0) += 1;
                }
                let mut rows = Vec::new();
                for row in l.rows {
                    match counts.get_mut(&row) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ => rows.push(row),
                    }
                }
                Ok(Chunk { cols: l.cols, rows })
            }
            PhysExpr::AssertMax1 { input } => {
                let inp = self.exec(input, binds)?;
                if inp.len() > 1 {
                    return Err(Error::SubqueryReturnedMoreThanOneRow);
                }
                Ok(inp)
            }
            PhysExpr::RowNumber { input, .. } => {
                let inp = self.exec(input, binds)?;
                let rows = inp
                    .rows
                    .into_iter()
                    .enumerate()
                    .map(|(i, mut r)| {
                        r.push(Value::Int(i as i64));
                        r
                    })
                    .collect();
                Ok(Chunk {
                    cols: p.out_cols(),
                    rows,
                })
            }
            PhysExpr::ConstScan { cols, rows } => Ok(Chunk {
                cols: cols.clone(),
                rows: rows.clone(),
            }),
            PhysExpr::Sort { input, by } => {
                let mut inp = self.exec(input, binds)?;
                let positions: Vec<(usize, bool)> = by
                    .iter()
                    .map(|(c, desc)| Ok((inp.require_pos(*c)?, *desc)))
                    .collect::<Result<_>>()?;
                inp.rows.sort_by(|a, b| {
                    for &(i, desc) in &positions {
                        let mut o = a[i].total_cmp(&b[i]);
                        if desc {
                            o = o.reverse();
                        }
                        if o != std::cmp::Ordering::Equal {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(inp)
            }
            PhysExpr::Limit { input, n } => {
                let mut inp = self.exec(input, binds)?;
                inp.rows.truncate(*n);
                Ok(inp)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn hash_join(
        &self,
        kind: JoinKind,
        l: &Chunk,
        r: &Chunk,
        left_keys: &[ColId],
        right_keys: &[ColId],
        residual: &ScalarExpr,
        binds: &Bindings,
    ) -> Result<Chunk> {
        let mut combined_cols = l.cols.clone();
        combined_cols.extend(r.cols.iter().copied());
        // Build on the right side; SQL equality never matches NULL keys.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        'build: for (i, rr) in r.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(right_keys.len());
            for c in right_keys {
                let v = &rr[r.require_pos(*c)?];
                if v.is_null() {
                    continue 'build;
                }
                key.push(v.clone());
            }
            table.entry(key).or_default().push(i);
        }
        let mut rows = Vec::new();
        for lr in &l.rows {
            let mut key = Some(Vec::with_capacity(left_keys.len()));
            for c in left_keys {
                let v = &lr[l.require_pos(*c)?];
                if v.is_null() {
                    key = None;
                    break;
                }
                if let Some(k) = &mut key {
                    k.push(v.clone());
                }
            }
            let matches = key.as_ref().and_then(|k| table.get(k));
            let mut matched = false;
            if let Some(idxs) = matches {
                for &i in idxs {
                    let mut row = lr.clone();
                    row.extend(r.rows[i].iter().cloned());
                    if eval_predicate(residual, &EvalCtx::plain(&combined_cols, &row, binds))? {
                        matched = true;
                        match kind {
                            JoinKind::Inner | JoinKind::LeftOuter => rows.push(row),
                            JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                        }
                    }
                }
            }
            match kind {
                JoinKind::LeftOuter if !matched => {
                    let mut row = lr.clone();
                    row.extend(std::iter::repeat_n(Value::Null, r.cols.len()));
                    rows.push(row);
                }
                JoinKind::LeftSemi if matched => rows.push(lr.clone()),
                JoinKind::LeftAnti if !matched => rows.push(lr.clone()),
                _ => {}
            }
        }
        let cols = match kind {
            JoinKind::Inner | JoinKind::LeftOuter => combined_cols,
            JoinKind::LeftSemi | JoinKind::LeftAnti => l.cols.clone(),
        };
        Ok(Chunk { cols, rows })
    }
}

/// Nested-loop join shared with tests.
pub fn nl_join(
    kind: JoinKind,
    l: &Chunk,
    r: &Chunk,
    mut pred: impl FnMut(&[Value], &[ColId]) -> Result<bool>,
) -> Result<Chunk> {
    let mut combined_cols = l.cols.clone();
    combined_cols.extend(r.cols.iter().copied());
    let mut rows = Vec::new();
    for lr in &l.rows {
        let mut matched = false;
        for rr in &r.rows {
            let mut row = lr.clone();
            row.extend(rr.iter().cloned());
            if pred(&row, &combined_cols)? {
                matched = true;
                match kind {
                    JoinKind::Inner | JoinKind::LeftOuter => rows.push(row),
                    JoinKind::LeftSemi | JoinKind::LeftAnti => break,
                }
            }
        }
        match kind {
            JoinKind::LeftOuter if !matched => {
                let mut row = lr.clone();
                row.extend(std::iter::repeat_n(Value::Null, r.cols.len()));
                rows.push(row);
            }
            JoinKind::LeftSemi if matched => rows.push(lr.clone()),
            JoinKind::LeftAnti if !matched => rows.push(lr.clone()),
            _ => {}
        }
    }
    let cols = match kind {
        JoinKind::Inner | JoinKind::LeftOuter => combined_cols,
        JoinKind::LeftSemi | JoinKind::LeftAnti => l.cols.clone(),
    };
    Ok(Chunk { cols, rows })
}
