//! Spill-to-disk subsystem: graceful degradation under the governor.
//!
//! When a governed buffering operator's [`MemoryReservation`] is refused,
//! the operator no longer has to fail the query: it can hand the
//! overflowing state to a [`SpillManager`] and keep running in bounded
//! memory. Three `pipeline.rs` consumers degrade this way — the grace
//! hash join (partition both sides, join partition pairs), the external
//! merge sort (sorted runs, k-way merge), and spillable hash aggregation
//! (partitioned group state merged per partition). This module provides
//! the shared substrate:
//!
//! * [`SpillManager`] — a per-execution temp-dir scope. Created fresh by
//!   `Pipeline::execute_each` for every execution and dropped when the
//!   execution ends, so partition files cannot outlive the query — on
//!   the success path, the error path, cooperative cancellation, and
//!   worker panics alike (unwinding drops the `ExecCtx`, which drops the
//!   manager, which removes the directory). [`SpillFile`] removes its
//!   own file on drop as a second layer, so a partition is reclaimed the
//!   moment its consumer finishes with it.
//! * [`SpillFile`] / [`SpillReader`] — an append-then-scan block file
//!   using a compact column serialization of `common/column.rs` batches:
//!   per block a row count and width, then per column a type tag, a
//!   validity bitmap, and the payload of *valid* lanes only. Values
//!   round-trip exactly (floats via raw bits), so a spilled execution
//!   returns the same bags as the in-memory one.
//! * [`SpillPartitions`] — fan-out helper: route rows to one of
//!   [`FANOUT`] partition files by a key hash, with small buffered
//!   blocks so partition files receive batched writes.
//!
//! Fault injection: file creation, block writes, and block reads cross
//! the `spill.open` / `spill.write` / `spill.read` failpoints, and every
//! I/O error surfaces as a structured [`Error::Exec`] naming the path —
//! never a panic.
//!
//! Determinism: partition routing uses the workspace's fixed-key
//! [`hash_values`](crate::vector::hash_values) hash and a fixed fan-out,
//! so which rows land in which partition — and therefore the engine's
//! behaviour under a given budget — is identical across runs.
//!
//! The kill switch: `ORTHOPT_SPILL=0` (or `SET spill = off`) disables
//! degradation, restoring the pre-spill contract where a refused
//! reservation fails the query with a hinted
//! [`Error::ResourceExhausted`].

use orthopt_common::column::{
    columns_to_rows, rows_to_columns, Bitmap, ColData, Column, ColumnData,
};
use orthopt_common::row::Row;
use orthopt_common::{Error, Result, Value};
use orthopt_synccheck::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use orthopt_synccheck::sync::Mutex;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Partition fan-out per spill level. Eight partitions per level keeps
/// the file count small while shrinking each partition ~8× per
/// recursion step.
pub const FANOUT: usize = 8;

/// Maximum grace-join repartition depth. With [`FANOUT`] = 8 this gives
/// 8³ = 512-way effective partitioning before the join falls back to a
/// clean hinted [`Error::ResourceExhausted`].
pub const MAX_SPILL_DEPTH: usize = 3;

/// Buffered bytes per partition before [`SpillPartitions`] flushes a
/// block to the partition file. Bounds transient memory at
/// `FANOUT * SPILL_BLOCK_BYTES` per partition set.
pub const SPILL_BLOCK_BYTES: u64 = 64 * 1024;

static SPILL: OnceLock<AtomicBool> = OnceLock::new();

fn spill_flag() -> &'static AtomicBool {
    SPILL.get_or_init(|| {
        let on = match std::env::var("ORTHOPT_SPILL") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether refused reservations degrade by spilling (the default).
/// Seeded from `ORTHOPT_SPILL` (`0`/`false`/`off` disable) on first use;
/// per-pipeline [`PipelineOptions::spill`](crate::PipelineOptions) and
/// the session's `SET spill` override this process default.
pub fn spill_enabled() -> bool {
    // relaxed-ok: an isolated process-global toggle; readers act on the
    // flag alone and no other memory is published through it.
    spill_flag().load(Ordering::Relaxed)
}

/// Overrides the spill toggle at runtime (conformance suites sweep both
/// settings in one process).
pub fn set_spill(on: bool) {
    // relaxed-ok: see spill_enabled().
    spill_flag().store(on, Ordering::Relaxed);
}

// Process-wide telemetry. Hygiene tests assert `live_dirs() == 0` after
// executions end (including cancelled/panicked ones); the byte totals
// let tests prove data actually crossed the disk.
static LIVE_DIRS: AtomicU64 = AtomicU64::new(0);
static TOTAL_SPILLED: AtomicU64 = AtomicU64::new(0);
static TOTAL_RESTORED: AtomicU64 = AtomicU64::new(0);
static NEXT_SCOPE: AtomicU64 = AtomicU64::new(0);

/// Number of spill scope directories currently on disk, process-wide.
/// Zero whenever no query is mid-spill — the temp-file hygiene
/// invariant.
pub fn live_dirs() -> u64 {
    // relaxed-ok: monitoring read of a counter.
    LIVE_DIRS.load(Ordering::Relaxed)
}

/// Total bytes ever written to spill files by this process.
pub fn total_spilled_bytes() -> u64 {
    // relaxed-ok: monitoring read of a counter.
    TOTAL_SPILLED.load(Ordering::Relaxed)
}

/// Total bytes ever read back from spill files by this process.
pub fn total_restored_bytes() -> u64 {
    // relaxed-ok: monitoring read of a counter.
    TOTAL_RESTORED.load(Ordering::Relaxed)
}

/// The partition a key hash routes to at a given recursion level.
///
/// Each level consumes three fresh bits of the 64-bit fixed-key hash,
/// so repartitioning a partition at `level + 1` actually subdivides it
/// (same top bits, different next bits) instead of reproducing it.
pub fn partition_of(hash: u64, level: usize) -> usize {
    ((hash >> (level * 3)) & (FANOUT as u64 - 1)) as usize
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> Error {
    Error::Exec(format!("spill {what} {}: {e}", path.display()))
}

/// Shared byte counters between a [`SpillManager`] and the
/// [`SpillFile`]s it created (files may outlive the manager's lock
/// scope, so the counters are a separate shared cell).
#[derive(Debug)]
struct Counters {
    spilled: AtomicU64,
    restored: AtomicU64,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            spilled: AtomicU64::new(0),
            restored: AtomicU64::new(0),
        }
    }
}

#[derive(Debug, Default)]
struct ManagerState {
    /// Scope directory, created lazily on the first spill file.
    dir: Option<PathBuf>,
    /// Monotonic file id within the scope.
    next_file: u64,
    /// Partition files ever created in this scope.
    files_created: u64,
}

/// A per-execution spill scope: owns one temp directory, hands out
/// numbered [`SpillFile`]s inside it, and removes the whole directory on
/// drop. `Pipeline::execute_each` creates one per execution and shares
/// it with every operator through `ExecCtx`, so the directory's lifetime
/// is exactly the execution's — error, cancellation, and panic paths
/// included.
#[derive(Debug)]
pub struct SpillManager {
    base: PathBuf,
    state: Mutex<ManagerState>,
    counters: Arc<Counters>,
}

impl Default for SpillManager {
    fn default() -> Self {
        SpillManager::new()
    }
}

impl SpillManager {
    /// A new scope rooted at `ORTHOPT_SPILL_DIR` (falling back to the
    /// system temp dir). No directory is created until the first spill
    /// file is requested, so unspilled executions never touch the
    /// filesystem.
    pub fn new() -> SpillManager {
        let base = match std::env::var("ORTHOPT_SPILL_DIR") {
            Ok(d) if !d.trim().is_empty() => PathBuf::from(d),
            _ => std::env::temp_dir(),
        };
        SpillManager {
            base,
            state: Mutex::new(ManagerState::default()),
            counters: Arc::new(Counters::default()),
        }
    }

    /// Creates a fresh spill file in this scope (crossing the
    /// `spill.open` failpoint), lazily creating the scope directory.
    pub fn create(&self, label: &str) -> Result<SpillFile> {
        crate::faults::hit("spill.open")?;
        let path = {
            let mut st = self.state.lock();
            if st.dir.is_none() {
                // relaxed-ok: a unique-id counter; nothing is published
                // through it.
                let scope = NEXT_SCOPE.fetch_add(1, Ordering::Relaxed);
                let dir = self
                    .base
                    .join(format!("orthopt-spill-{}-{scope}", std::process::id()));
                fs::create_dir_all(&dir).map_err(|e| io_err("mkdir", &dir, &e))?;
                // relaxed-ok: hygiene telemetry counter.
                LIVE_DIRS.fetch_add(1, Ordering::Relaxed);
                st.dir = Some(dir);
            }
            let id = st.next_file;
            st.next_file += 1;
            st.files_created += 1;
            st.dir
                .as_ref()
                .expect("scope dir just ensured")
                .join(format!("{label}-{id}.spill"))
        };
        let file = File::create(&path).map_err(|e| io_err("create", &path, &e))?;
        Ok(SpillFile {
            path,
            writer: Some(BufWriter::new(file)),
            rows: 0,
            bytes: 0,
            counters: Arc::clone(&self.counters),
        })
    }

    /// Bytes written to spill files in this scope.
    pub fn spilled_bytes(&self) -> u64 {
        // relaxed-ok: monitoring read of a counter.
        self.counters.spilled.load(Ordering::Relaxed)
    }

    /// Bytes read back from spill files in this scope.
    pub fn restored_bytes(&self) -> u64 {
        // relaxed-ok: monitoring read of a counter.
        self.counters.restored.load(Ordering::Relaxed)
    }

    /// Partition files created in this scope so far.
    pub fn files_created(&self) -> u64 {
        self.state.lock().files_created
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        let dir = self.state.get_mut().dir.take();
        if let Some(dir) = dir {
            // Best effort: files inside may already have been removed by
            // their own SpillFile drops; a vanished dir is not an error.
            let _ = fs::remove_dir_all(&dir);
            // relaxed-ok: hygiene telemetry counter.
            LIVE_DIRS.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// One append-then-scan spill file (a partition or a sort run). Blocks
/// of rows are appended while the operator drains its input, then read
/// back in order through [`SpillFile::reader`]. The file is removed
/// when the handle drops.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    rows: u64,
    bytes: u64,
    counters: Arc<Counters>,
}

impl SpillFile {
    /// Appends one block of `width`-column rows (crossing the
    /// `spill.write` failpoint). Returns the encoded block size in
    /// bytes. Empty blocks are skipped.
    pub fn append(&mut self, rows: &[Row], width: usize) -> Result<u64> {
        if rows.is_empty() {
            return Ok(0);
        }
        crate::faults::hit("spill.write")?;
        let mut buf = Vec::new();
        encode_block(rows, width, &mut buf);
        let w = self
            .writer
            .as_mut()
            .ok_or_else(|| Error::internal("spill append after reader opened"))?;
        w.write_all(&buf)
            .map_err(|e| io_err("write", &self.path, &e))?;
        self.rows += rows.len() as u64;
        self.bytes += buf.len() as u64;
        self.counters
            .spilled
            // relaxed-ok: byte-total telemetry counters.
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        // relaxed-ok: see above.
        TOTAL_SPILLED.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf.len() as u64)
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Encoded bytes appended so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// True when nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Opens a scan over the file from the start (crossing the
    /// `spill.open` failpoint), flushing any pending writes first. The
    /// same file can be scanned multiple times — the grace join re-reads
    /// a partition when it has to repartition it at the next level.
    pub fn reader(&mut self) -> Result<SpillReader> {
        crate::faults::hit("spill.open")?;
        if let Some(mut w) = self.writer.take() {
            w.flush().map_err(|e| io_err("flush", &self.path, &e))?;
        }
        let f = File::open(&self.path).map_err(|e| io_err("open", &self.path, &e))?;
        Ok(SpillReader {
            path: self.path.clone(),
            inner: BufReader::new(f),
            counters: Arc::clone(&self.counters),
        })
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        self.writer.take();
        // Best effort: the manager's directory removal is the backstop.
        let _ = fs::remove_file(&self.path);
    }
}

/// A sequential scan over a [`SpillFile`]'s blocks.
#[derive(Debug)]
pub struct SpillReader {
    path: PathBuf,
    inner: BufReader<File>,
    counters: Arc<Counters>,
}

impl SpillReader {
    /// The next block of rows, or `None` at end of file (crossing the
    /// `spill.read` failpoint). Truncated files surface as
    /// [`Error::Exec`], never a panic.
    pub fn next_block(&mut self) -> Result<Option<Vec<Row>>> {
        crate::faults::hit("spill.read")?;
        let mut head = [0u8; 4];
        match read_exact_or_eof(&mut self.inner, &mut head) {
            Ok(false) => return Ok(None),
            Ok(true) => {}
            Err(e) => return Err(io_err("read", &self.path, &e)),
        }
        let nrows = u32::from_le_bytes(head) as usize;
        let mut dec = Decoder {
            r: &mut self.inner,
            path: &self.path,
            bytes: head.len() as u64,
        };
        let rows = dec.block_body(nrows)?;
        self.counters
            .restored
            // relaxed-ok: byte-total telemetry counters.
            .fetch_add(dec.bytes, Ordering::Relaxed);
        // relaxed-ok: see above.
        TOTAL_RESTORED.fetch_add(dec.bytes, Ordering::Relaxed);
        Ok(Some(rows))
    }
}

/// Routes rows into [`FANOUT`] spill files by a precomputed partition
/// index, buffering ~[`SPILL_BLOCK_BYTES`] per partition between
/// writes so partition files receive batched blocks. The caller checks
/// cancellation between pushes/flushes — every flush is an independent
/// partition write.
#[derive(Debug)]
pub struct SpillPartitions {
    files: Vec<SpillFile>,
    bufs: Vec<Vec<Row>>,
    buf_bytes: Vec<u64>,
    width: usize,
}

impl SpillPartitions {
    /// Creates the [`FANOUT`] partition files up front (so `spill.open`
    /// faults fire before any data moves).
    pub fn create(mgr: &SpillManager, label: &str, width: usize) -> Result<SpillPartitions> {
        let mut files = Vec::with_capacity(FANOUT);
        for _ in 0..FANOUT {
            files.push(mgr.create(label)?);
        }
        Ok(SpillPartitions {
            files,
            bufs: vec![Vec::new(); FANOUT],
            buf_bytes: vec![0; FANOUT],
            width,
        })
    }

    /// Buffers `row` for partition `part`, flushing the partition's
    /// block when it crosses the buffering threshold. Returns the bytes
    /// written to disk by this call (usually 0).
    pub fn push(&mut self, part: usize, row: Row) -> Result<u64> {
        self.buf_bytes[part] += orthopt_common::row::rows_bytes(std::slice::from_ref(&row));
        self.bufs[part].push(row);
        if self.buf_bytes[part] >= SPILL_BLOCK_BYTES {
            self.flush_part(part)
        } else {
            Ok(0)
        }
    }

    fn flush_part(&mut self, part: usize) -> Result<u64> {
        if self.bufs[part].is_empty() {
            return Ok(0);
        }
        let rows = std::mem::take(&mut self.bufs[part]);
        self.buf_bytes[part] = 0;
        self.files[part].append(&rows, self.width)
    }

    /// Flushes every partition's pending block and returns the files,
    /// in partition order. Total disk bytes written by the set are on
    /// the files' own counters.
    pub fn finish(mut self) -> Result<Vec<SpillFile>> {
        for p in 0..FANOUT {
            self.flush_part(p)?;
        }
        Ok(self.files)
    }
}

// ---------------------------------------------------------------------
// Block format.
//
//   u32  row count (n)
//   u16  width (column count)
//   per column:
//     u8   type tag: 0=Int 1=Float 2=Bool 3=Str 4=Date 5=Val
//     ceil(n/8) bytes  validity bitmap, LSB-first
//     payload of the *valid* lanes only:
//       Int   i64 LE        Float f64 bits LE    Bool u8
//       Date  i32 LE        Str   u32 len + UTF-8 bytes
//       Val   u8 value tag (0=Null 1=Bool 2=Int 3=Float 4=Str 5=Date)
//             + that value's payload
//
// Encoding goes through `rows_to_columns`, so the typed representation
// (and the Val fallback for mixed columns) is decided by exactly the
// same code that builds columnar batches; decoding rebuilds `Column`s
// and transposes back with `columns_to_rows`, so values round-trip
// bit-exactly (floats via to_bits/from_bits).
// ---------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(3);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            buf.push(5);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn encode_block(rows: &[Row], width: usize, buf: &mut Vec<u8>) {
    let n = rows.len();
    put_u32(buf, n as u32);
    put_u16(buf, width as u16);
    let cols = rows_to_columns(rows, width);
    for col in &cols {
        let (data, validity, off) = col.parts();
        debug_assert_eq!(off, 0, "fresh columns start at offset 0");
        let tag: u8 = match data {
            ColData::Int(_) => 0,
            ColData::Float(_) => 1,
            ColData::Bool(_) => 2,
            ColData::Str(_) => 3,
            ColData::Date(_) => 4,
            ColData::Val(_) => 5,
        };
        buf.push(tag);
        let mut flags = vec![0u8; n.div_ceil(8)];
        for i in 0..n {
            if validity.get(i) {
                flags[i / 8] |= 1 << (i % 8);
            }
        }
        buf.extend_from_slice(&flags);
        let valid = |i: usize| validity.get(i);
        match data {
            ColData::Int(v) => {
                for (i, x) in v.iter().enumerate().take(n) {
                    if valid(i) {
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
            ColData::Float(v) => {
                for (i, x) in v.iter().enumerate().take(n) {
                    if valid(i) {
                        buf.extend_from_slice(&x.to_bits().to_le_bytes());
                    }
                }
            }
            ColData::Bool(v) => {
                for (i, x) in v.iter().enumerate().take(n) {
                    if valid(i) {
                        buf.push(u8::from(*x));
                    }
                }
            }
            ColData::Str(v) => {
                for (i, s) in v.iter().enumerate().take(n) {
                    if valid(i) {
                        put_u32(buf, s.len() as u32);
                        buf.extend_from_slice(s.as_bytes());
                    }
                }
            }
            ColData::Date(v) => {
                for (i, d) in v.iter().enumerate().take(n) {
                    if valid(i) {
                        buf.extend_from_slice(&d.to_le_bytes());
                    }
                }
            }
            ColData::Val(v) => {
                for (i, x) in v.iter().enumerate().take(n) {
                    if valid(i) {
                        encode_value(buf, x);
                    }
                }
            }
        }
    }
}

/// Reads exactly `buf.len()` bytes; `Ok(false)` on clean EOF before the
/// first byte, `Err` on a truncated read.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "truncated spill block",
            ));
        }
        filled += n;
    }
    Ok(true)
}

struct Decoder<'a, R: Read> {
    r: &'a mut R,
    path: &'a Path,
    bytes: u64,
}

impl<R: Read> Decoder<'_, R> {
    fn fill(&mut self, buf: &mut [u8]) -> Result<()> {
        self.r
            .read_exact(buf)
            .map_err(|e| io_err("read", self.path, &e))?;
        self.bytes += buf.len() as u64;
        Ok(())
    }

    fn u8(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.fill(&mut b)?;
        Ok(b[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let mut b = [0u8; 2];
        self.fill(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.fill(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn i32(&mut self) -> Result<i32> {
        let mut b = [0u8; 4];
        self.fill(&mut b)?;
        Ok(i32::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64> {
        let mut b = [0u8; 8];
        self.fill(&mut b)?;
        Ok(i64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64> {
        let mut b = [0u8; 8];
        self.fill(&mut b)?;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    fn str(&mut self) -> Result<Arc<str>> {
        let len = self.u32()? as usize;
        let mut b = vec![0u8; len];
        self.fill(&mut b)?;
        String::from_utf8(b)
            .map(Arc::from)
            .map_err(|e| Error::Exec(format!("spill read {}: {e}", self.path.display())))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(self.f64()?),
            4 => Value::Str(self.str()?),
            5 => Value::Date(self.i32()?),
            t => {
                return Err(Error::Exec(format!(
                    "spill read {}: bad value tag {t}",
                    self.path.display()
                )))
            }
        })
    }

    fn block_body(&mut self, nrows: usize) -> Result<Vec<Row>> {
        let width = self.u16()? as usize;
        let mut cols = Vec::with_capacity(width);
        for _ in 0..width {
            let tag = self.u8()?;
            let mut flags = vec![0u8; nrows.div_ceil(8)];
            self.fill(&mut flags)?;
            let valid: Vec<bool> = (0..nrows)
                .map(|i| flags[i / 8] & (1 << (i % 8)) != 0)
                .collect();
            let data = match tag {
                0 => {
                    let mut v = Vec::with_capacity(nrows);
                    for &ok in &valid {
                        v.push(if ok { self.i64()? } else { 0 });
                    }
                    ColData::Int(v)
                }
                1 => {
                    let mut v = Vec::with_capacity(nrows);
                    for &ok in &valid {
                        v.push(if ok { self.f64()? } else { 0.0 });
                    }
                    ColData::Float(v)
                }
                2 => {
                    let mut v = Vec::with_capacity(nrows);
                    for &ok in &valid {
                        v.push(if ok { self.u8()? != 0 } else { false });
                    }
                    ColData::Bool(v)
                }
                3 => {
                    let mut v = Vec::with_capacity(nrows);
                    for &ok in &valid {
                        v.push(if ok { self.str()? } else { Arc::from("") });
                    }
                    ColData::Str(v)
                }
                4 => {
                    let mut v = Vec::with_capacity(nrows);
                    for &ok in &valid {
                        v.push(if ok { self.i32()? } else { 0 });
                    }
                    ColData::Date(v)
                }
                5 => {
                    let mut v = Vec::with_capacity(nrows);
                    for &ok in &valid {
                        v.push(if ok { self.value()? } else { Value::Null });
                    }
                    ColData::Val(v)
                }
                t => {
                    return Err(Error::Exec(format!(
                        "spill read {}: bad column tag {t}",
                        self.path.display()
                    )))
                }
            };
            cols.push(Column::from_data(ColumnData {
                data,
                validity: Bitmap::from_flags(valid),
            }));
        }
        Ok(columns_to_rows(&cols, nrows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_rows() -> Vec<Row> {
        vec![
            vec![
                Value::Int(1),
                Value::Float(f64::NAN),
                Value::str("alpha"),
                Value::Bool(true),
                Value::Date(19_000),
                Value::Int(7),
            ],
            vec![
                Value::Null,
                Value::Float(-0.0),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::str("mixed"),
            ],
            vec![
                Value::Int(-5),
                Value::Float(2.5),
                Value::str(""),
                Value::Bool(false),
                Value::Date(-1),
                Value::Null,
            ],
        ]
    }

    fn assert_rows_eq(a: &[Row], b: &[Row]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.len(), y.len());
            for (u, v) in x.iter().zip(y) {
                match (u, v) {
                    // NaN != NaN under PartialEq; compare bits.
                    (Value::Float(p), Value::Float(q)) => {
                        assert_eq!(p.to_bits(), q.to_bits());
                    }
                    _ => assert_eq!(u, v),
                }
            }
        }
    }

    #[test]
    fn blocks_round_trip_bit_exactly() {
        let mgr = SpillManager::new();
        let rows = mixed_rows();
        let mut f = mgr.create("t").expect("create");
        f.append(&rows[..2], 6).expect("append");
        f.append(&rows[2..], 6).expect("append");
        assert_eq!(f.rows(), 3);
        assert!(f.bytes() > 0);
        let mut r = f.reader().expect("reader");
        let b1 = r.next_block().expect("read").expect("block 1");
        let b2 = r.next_block().expect("read").expect("block 2");
        assert!(r.next_block().expect("read").is_none());
        assert_rows_eq(&b1, &rows[..2]);
        assert_rows_eq(&b2, &rows[2..]);
        assert_eq!(mgr.spilled_bytes(), f.bytes());
        assert_eq!(mgr.restored_bytes(), f.bytes());
    }

    #[test]
    fn reader_can_rescan_from_start() {
        let mgr = SpillManager::new();
        let rows = mixed_rows();
        let mut f = mgr.create("t").expect("create");
        f.append(&rows, 6).expect("append");
        let one = f
            .reader()
            .expect("r1")
            .next_block()
            .expect("read")
            .expect("rows");
        let two = f
            .reader()
            .expect("r2")
            .next_block()
            .expect("read")
            .expect("rows");
        assert_rows_eq(&one, &two);
    }

    #[test]
    fn empty_and_zero_width_blocks() {
        let mgr = SpillManager::new();
        let mut f = mgr.create("t").expect("create");
        assert_eq!(f.append(&[], 4).expect("empty append is a no-op"), 0);
        // Zero-width rows (legal in the engine for constant sources).
        f.append(&[vec![], vec![]], 0).expect("append");
        let mut r = f.reader().expect("reader");
        let b = r.next_block().expect("read").expect("block");
        assert_eq!(b, vec![Vec::<Value>::new(), Vec::<Value>::new()]);
        assert!(r.next_block().expect("read").is_none());
    }

    #[test]
    fn drop_removes_files_and_scope_dir() {
        let before = live_dirs();
        let mgr = SpillManager::new();
        let mut f = mgr.create("t").expect("create");
        f.append(&mixed_rows(), 6).expect("append");
        let dir = mgr.state.lock().dir.clone().expect("dir created");
        assert!(dir.exists());
        assert_eq!(live_dirs(), before + 1);
        drop(f);
        drop(mgr);
        assert!(!dir.exists(), "scope dir removed on drop");
        assert_eq!(live_dirs(), before);
    }

    #[test]
    fn partitions_route_by_level_shifted_hash() {
        let h = 0b101_011_110u64;
        assert_eq!(partition_of(h, 0), 0b110);
        assert_eq!(partition_of(h, 1), 0b011);
        assert_eq!(partition_of(h, 2), 0b101);
        assert_eq!(partition_of(h, MAX_SPILL_DEPTH), 0);
    }

    #[test]
    fn partition_set_routes_and_flushes() {
        let mgr = SpillManager::new();
        let mut parts = SpillPartitions::create(&mgr, "p", 1).expect("create");
        let rows: Vec<Row> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        for (i, row) in rows.iter().cloned().enumerate() {
            parts.push(i % FANOUT, row).expect("push");
        }
        let mut files = parts.finish().expect("finish");
        assert_eq!(files.len(), FANOUT);
        let mut seen = 0u64;
        for (p, f) in files.iter_mut().enumerate() {
            let mut r = f.reader().expect("reader");
            while let Some(block) = r.next_block().expect("read") {
                for row in block {
                    let Value::Int(i) = row[0] else {
                        panic!("expected Int, got {row:?}")
                    };
                    assert_eq!(i as usize % FANOUT, p, "row {i} routed to partition {p}");
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 100, "every routed row restored exactly once");
        let on_disk: u64 = files.iter().map(SpillFile::bytes).sum();
        assert!(on_disk > 0, "blocks hit disk");
        assert_eq!(
            mgr.spilled_bytes(),
            on_disk,
            "manager counter tracks file bytes"
        );
        assert_eq!(
            mgr.restored_bytes(),
            on_disk,
            "every written byte was read back"
        );
    }

    #[test]
    fn kill_switch_flag_toggles() {
        let was = spill_enabled();
        set_spill(false);
        assert!(!spill_enabled());
        set_spill(true);
        assert!(spill_enabled());
        set_spill(was);
    }
}
