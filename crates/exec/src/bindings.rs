//! Parameter bindings for correlated (parameterized) execution.
//!
//! `Apply` evaluates its inner expression once per outer row with the
//! outer row's columns available as *parameters* (§1.3); `SegmentApply`
//! additionally exposes the current *segment* as a table-valued
//! parameter (§3.4). Both live here.

use std::collections::HashMap;
use std::rc::Rc;

use orthopt_common::{ColId, Value};

use crate::chunk::Chunk;

/// Scalar parameters plus a stack of table-valued segment parameters.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    params: HashMap<ColId, Value>,
    segments: Vec<Rc<Chunk>>,
}

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Looks up a scalar parameter.
    pub fn get(&self, id: ColId) -> Option<&Value> {
        self.params.get(&id)
    }

    /// Sets a scalar parameter.
    pub fn set(&mut self, id: ColId, v: Value) {
        self.params.insert(id, v);
    }

    /// Returns a copy extended with the values of `ids` taken from `row`
    /// under `layout` — the per-outer-row step of `Apply`.
    pub fn extended(&self, layout: &[ColId], row: &[Value], ids: &[ColId]) -> Bindings {
        let mut out = self.clone();
        for id in ids {
            if let Some(pos) = layout.iter().position(|c| c == id) {
                out.params.insert(*id, row[pos].clone());
            }
        }
        out
    }

    /// Returns a copy with `segment` pushed as the innermost table-valued
    /// parameter.
    pub fn with_segment(&self, segment: Rc<Chunk>) -> Bindings {
        let mut out = self.clone();
        out.segments.push(segment);
        out
    }

    /// Pushes `segment` as the innermost table-valued parameter in
    /// place — the streaming engine's counterpart of [`with_segment`]
    /// (no bindings clone per segment).
    ///
    /// [`with_segment`]: Bindings::with_segment
    pub fn push_segment(&mut self, segment: Rc<Chunk>) {
        self.segments.push(segment);
    }

    /// Pops the innermost table-valued parameter.
    pub fn pop_segment(&mut self) -> Option<Rc<Chunk>> {
        self.segments.pop()
    }

    /// The innermost segment, if executing under a `SegmentApply`.
    pub fn current_segment(&self) -> Option<&Rc<Chunk>> {
        self.segments.last()
    }

    /// Number of scalar parameters (diagnostics).
    pub fn param_count(&self) -> usize {
        self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_binds_selected_columns() {
        let b = Bindings::new();
        let layout = [ColId(1), ColId(2)];
        let row = [Value::Int(10), Value::Int(20)];
        let e = b.extended(&layout, &row, &[ColId(2)]);
        assert_eq!(e.get(ColId(2)), Some(&Value::Int(20)));
        assert_eq!(e.get(ColId(1)), None);
        // Original untouched.
        assert_eq!(b.get(ColId(2)), None);
    }

    #[test]
    fn segments_nest() {
        let b = Bindings::new();
        let s1 = Rc::new(Chunk::empty(vec![ColId(1)]));
        let s2 = Rc::new(Chunk::empty(vec![ColId(2)]));
        let b1 = b.with_segment(s1);
        let b2 = b1.with_segment(s2);
        assert_eq!(b2.current_segment().unwrap().cols, vec![ColId(2)]);
        assert_eq!(b1.current_segment().unwrap().cols, vec![ColId(1)]);
        assert!(b.current_segment().is_none());
    }
}
