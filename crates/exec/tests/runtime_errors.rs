//! Run-time error propagation through physical plans: SQL's data-
//! dependent errors (division by zero, integer overflow, Max1Row) must
//! surface as `Err`, not panics or wrong answers — and must not fire
//! for rows that filters have already rejected.

mod fixtures;

use fixtures::*;
use orthopt_common::{ColId, Error, TableId};
use orthopt_exec::physical::Executor;
use orthopt_exec::{Bindings, PhysExpr};
use orthopt_ir::{ArithOp, CmpOp, ScalarExpr};

fn scan_orders() -> PhysExpr {
    PhysExpr::TableScan {
        table: TableId(1),
        positions: vec![0, 1, 2],
        cols: vec![O_ORDERKEY, O_CUSTKEY, O_TOTALPRICE],
    }
}

#[test]
fn division_by_zero_in_compute_propagates() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let plan = PhysExpr::Compute {
        input: Box::new(scan_orders()),
        defs: vec![(
            ColId(90),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::col(O_TOTALPRICE)),
                right: Box::new(ScalarExpr::lit(0i64)),
            },
        )],
    };
    assert_eq!(
        ex.exec(&plan, &Bindings::new()).unwrap_err(),
        Error::DivideByZero
    );
}

#[test]
fn filter_prevents_error_on_rejected_rows() {
    // 100 / (o_orderkey - 10) divides by zero only for orderkey 10; a
    // filter removing that row first must suppress the error.
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let risky = |input: PhysExpr| PhysExpr::Compute {
        input: Box::new(input),
        defs: vec![(
            ColId(91),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::lit(100i64)),
                right: Box::new(ScalarExpr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(ScalarExpr::col(O_ORDERKEY)),
                    right: Box::new(ScalarExpr::lit(10i64)),
                }),
            },
        )],
    };
    // Unguarded: errors.
    assert!(ex.exec(&risky(scan_orders()), &Bindings::new()).is_err());
    // Guarded: fine.
    let guarded = risky(PhysExpr::Filter {
        input: Box::new(scan_orders()),
        predicate: ScalarExpr::cmp(
            CmpOp::Ne,
            ScalarExpr::col(O_ORDERKEY),
            ScalarExpr::lit(10i64),
        ),
    });
    let out = ex.exec(&guarded, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 3);
}

#[test]
fn overflow_in_aggregate_propagates() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    // SUM of (i64::MAX interpreted per row) overflows after row two.
    let big = PhysExpr::Compute {
        input: Box::new(scan_orders()),
        defs: vec![(ColId(92), ScalarExpr::lit(i64::MAX))],
    };
    let agg = PhysExpr::HashAggregate {
        kind: orthopt_ir::GroupKind::Scalar,
        input: Box::new(big),
        group_cols: vec![],
        aggs: vec![orthopt_ir::AggDef::new(
            orthopt_ir::ColumnMeta::new(ColId(93), "s", orthopt_common::DataType::Int, true),
            orthopt_ir::AggFunc::Sum,
            Some(ScalarExpr::col(ColId(92))),
        )],
    };
    assert_eq!(
        ex.exec(&agg, &Bindings::new()).unwrap_err(),
        Error::NumericOverflow
    );
}

#[test]
fn error_inside_apply_inner_surfaces_once() {
    // The inner plan errors on some invocation: the whole query errors.
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let inner = PhysExpr::Compute {
        input: Box::new(PhysExpr::IndexSeek {
            table: TableId(1),
            positions: vec![0],
            cols: vec![ColId(94)],
            index_cols: vec![1],
            probes: vec![ScalarExpr::col(C_CUSTKEY)],
        }),
        defs: vec![(
            ColId(95),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::lit(1i64)),
                right: Box::new(ScalarExpr::lit(0i64)),
            },
        )],
    };
    let apply = PhysExpr::ApplyLoop {
        kind: orthopt_ir::ApplyKind::LeftOuter,
        left: Box::new(PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![C_CUSTKEY],
        }),
        right: Box::new(inner),
        params: vec![C_CUSTKEY],
    };
    assert_eq!(
        ex.exec(&apply, &Bindings::new()).unwrap_err(),
        Error::DivideByZero
    );
}

#[test]
fn conditional_execution_suppresses_inner_errors() {
    // Carol (custkey 3) has no orders: the index seek returns nothing,
    // so the Compute above it never runs for her; but for customers
    // *with* orders it errors. Restricting the outer side to carol must
    // succeed — the execution-side half of §2.4's conditional execution.
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let inner = PhysExpr::Compute {
        input: Box::new(PhysExpr::IndexSeek {
            table: TableId(1),
            positions: vec![0],
            cols: vec![ColId(96)],
            index_cols: vec![1],
            probes: vec![ScalarExpr::col(C_CUSTKEY)],
        }),
        defs: vec![(
            ColId(97),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::lit(1i64)),
                right: Box::new(ScalarExpr::lit(0i64)),
            },
        )],
    };
    let only_carol = PhysExpr::Filter {
        input: Box::new(PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![C_CUSTKEY],
        }),
        predicate: ScalarExpr::eq(ScalarExpr::col(C_CUSTKEY), ScalarExpr::lit(3i64)),
    };
    let apply = PhysExpr::ApplyLoop {
        kind: orthopt_ir::ApplyKind::LeftOuter,
        left: Box::new(only_carol),
        right: Box::new(inner),
        params: vec![C_CUSTKEY],
    };
    let out = ex.exec(&apply, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 1);
    assert!(out.rows[0][1].is_null());
}

#[test]
fn assert_max1_errors_with_sql_error_kind() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let plan = PhysExpr::AssertMax1 {
        input: Box::new(scan_orders()),
    };
    assert_eq!(
        ex.exec(&plan, &Bindings::new()).unwrap_err(),
        Error::SubqueryReturnedMoreThanOneRow
    );
}

// ---------------------------------------------------------------------
// Resource governor: memory budgets, cancellation, reuse after failure.
// ---------------------------------------------------------------------

mod governor {
    use super::*;
    use orthopt_common::{QueryContext, Result};
    use orthopt_exec::{Chunk, Pipeline};
    use orthopt_ir::JoinKind;
    use orthopt_storage::Catalog;
    use std::time::Duration;

    fn scan_customer() -> PhysExpr {
        PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0, 1],
            cols: vec![C_CUSTKEY, C_NAME],
        }
    }

    fn join_plan() -> PhysExpr {
        PhysExpr::HashJoin {
            kind: JoinKind::Inner,
            left: Box::new(scan_customer()),
            right: Box::new(scan_orders()),
            left_keys: vec![C_CUSTKEY],
            right_keys: vec![O_CUSTKEY],
            residual: ScalarExpr::lit(true),
        }
    }

    fn run_governed(plan: &PhysExpr, catalog: &Catalog, gov: QueryContext) -> Result<Chunk> {
        let mut pipe = Pipeline::compile(plan)?;
        pipe.set_governor(gov);
        pipe.execute(catalog, &Bindings::new())
    }

    /// Budget-trip tests assert the *refusal* contract, so they pin
    /// spilling off per-pipeline (the global toggle would race with
    /// parallel tests).
    fn run_governed_no_spill(
        plan: &PhysExpr,
        catalog: &Catalog,
        gov: QueryContext,
    ) -> Result<Chunk> {
        let opts = orthopt_exec::PipelineOptions {
            spill: Some(false),
            ..Default::default()
        };
        let mut pipe = Pipeline::with_options(plan, opts)?;
        pipe.set_governor(gov);
        pipe.execute(catalog, &Bindings::new())
    }

    /// Degradation tests pin spilling *on* per-pipeline for the same
    /// reason (and so the ORTHOPT_SPILL=0 CI leg still runs them: the
    /// per-pipeline override outranks the process kill switch).
    fn run_governed_spill(plan: &PhysExpr, catalog: &Catalog, gov: QueryContext) -> Result<Chunk> {
        let opts = orthopt_exec::PipelineOptions {
            spill: Some(true),
            ..Default::default()
        };
        let mut pipe = Pipeline::with_options(plan, opts)?;
        pipe.set_governor(gov);
        pipe.execute(catalog, &Bindings::new())
    }

    fn expect_exhausted(r: Result<Chunk>, operator: &str) {
        match r {
            Err(Error::ResourceExhausted {
                operator: op,
                limit,
                ..
            }) => {
                assert_eq!(op, operator, "blame names the buffering operator");
                assert!(limit > 0, "limit carried through");
            }
            other => panic!("expected ResourceExhausted at {operator}, got {other:?}"),
        }
    }

    #[test]
    fn budget_trips_hash_join_build_with_blame() {
        let catalog = customers_orders();
        let gov = QueryContext::new().with_memory_limit(16);
        expect_exhausted(
            run_governed_no_spill(&join_plan(), &catalog, gov),
            "HashJoin",
        );
    }

    fn sort_plan() -> PhysExpr {
        PhysExpr::Sort {
            input: Box::new(scan_orders()),
            by: vec![(O_TOTALPRICE, false)],
        }
    }

    fn agg_plan() -> PhysExpr {
        PhysExpr::HashAggregate {
            kind: orthopt_ir::GroupKind::Vector,
            input: Box::new(scan_orders()),
            group_cols: vec![O_CUSTKEY],
            aggs: vec![orthopt_ir::AggDef::new(
                orthopt_ir::ColumnMeta::new(ColId(80), "n", orthopt_common::DataType::Int, false),
                orthopt_ir::AggFunc::CountStar,
                None,
            )],
        }
    }

    #[test]
    fn budget_trips_sort_buffer() {
        let catalog = customers_orders();
        let gov = QueryContext::new().with_memory_limit(16);
        expect_exhausted(run_governed_no_spill(&sort_plan(), &catalog, gov), "Sort");
    }

    #[test]
    fn budget_trips_aggregate_state() {
        let catalog = customers_orders();
        let gov = QueryContext::new().with_memory_limit(16);
        expect_exhausted(
            run_governed_no_spill(&agg_plan(), &catalog, gov),
            "HashAggregate",
        );
    }

    /// With spilling left on (the default), a starvation budget makes
    /// the sort degrade to disk runs instead of tripping — and the
    /// merged output is byte-identical to the unconstrained run.
    #[test]
    fn tiny_budget_with_spill_degrades_instead_of_tripping() {
        let catalog = customers_orders();
        let free = run_governed(&sort_plan(), &catalog, QueryContext::new()).unwrap();
        let gov = QueryContext::new().with_memory_limit(16);
        let spilled = run_governed_spill(&sort_plan(), &catalog, gov).unwrap();
        assert_eq!(free.rows, spilled.rows, "external sort preserves order");
    }

    /// A wider aggregation (many groups) under a budget that holds a
    /// fraction of the state spills partitions, then replays each one
    /// within budget; the result matches the unconstrained run.
    #[test]
    fn aggregation_spills_partitions_and_stays_exact() {
        use orthopt_common::{DataType, Value};
        use orthopt_storage::{ColumnDef, TableDef};

        let mut catalog = orthopt_storage::Catalog::new();
        let t = catalog
            .create_table(TableDef::new(
                "wide",
                vec![
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                vec![],
            ))
            .unwrap();
        catalog
            .table_mut(t)
            .insert_all((0..960).map(|i| vec![Value::Int(i % 160), Value::Int(i)]))
            .unwrap();
        let plan = PhysExpr::HashAggregate {
            kind: orthopt_ir::GroupKind::Vector,
            input: Box::new(PhysExpr::TableScan {
                table: t,
                positions: vec![0, 1],
                cols: vec![ColId(200), ColId(201)],
            }),
            group_cols: vec![ColId(200)],
            aggs: vec![orthopt_ir::AggDef::new(
                orthopt_ir::ColumnMeta::new(ColId(202), "n", orthopt_common::DataType::Int, false),
                orthopt_ir::AggFunc::CountStar,
                None,
            )],
        };
        let free = run_governed(&plan, &catalog, QueryContext::new()).unwrap();
        assert_eq!(free.rows.len(), 160);

        // Budget sized to hold well under 160 groups but comfortably
        // more than one partition's (~160/8 groups) replay state.
        let opts = orthopt_exec::PipelineOptions {
            spill: Some(true),
            ..Default::default()
        };
        let mut pipe = Pipeline::with_options(&plan, opts).unwrap();
        pipe.set_governor(QueryContext::new().with_memory_limit(16 << 10));
        let mut spilled = pipe.execute(&catalog, &Bindings::new()).unwrap();
        let key = |r: &Vec<Value>| match r[0] {
            Value::Int(i) => i,
            _ => unreachable!(),
        };
        let mut want = free.rows.clone();
        spilled.rows.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(want, spilled.rows, "partitioned aggregation is exact");
        let stats = pipe.stats();
        assert!(
            stats
                .iter()
                .any(|s| s.spill_partitions > 0 && s.spilled_bytes > 0),
            "aggregate actually spilled: {stats:?}"
        );
    }

    /// Every hard-fail buffering site (no spill path, no cache to shed)
    /// reports its refusal with a hint naming the memory knob, and
    /// blames the right operator.
    #[test]
    fn hard_fail_sites_hint_the_memory_knob() {
        let catalog = customers_orders();
        let cases: Vec<(PhysExpr, &str)> = vec![
            (
                PhysExpr::NLJoin {
                    kind: JoinKind::Inner,
                    left: Box::new(scan_customer()),
                    right: Box::new(scan_orders()),
                    predicate: orthopt_ir::ScalarExpr::lit(true),
                },
                "NLJoin",
            ),
            (
                PhysExpr::Limit {
                    input: Box::new(scan_orders()),
                    n: 2,
                },
                "Limit",
            ),
            (
                PhysExpr::AssertMax1 {
                    input: Box::new(PhysExpr::Filter {
                        input: Box::new(scan_orders()),
                        predicate: orthopt_ir::ScalarExpr::eq(
                            orthopt_ir::ScalarExpr::col(O_ORDERKEY),
                            orthopt_ir::ScalarExpr::lit(10i64),
                        ),
                    }),
                },
                "Max1Row",
            ),
            (
                PhysExpr::ExceptExec {
                    left: Box::new(PhysExpr::TableScan {
                        table: TableId(0),
                        positions: vec![0],
                        cols: vec![C_CUSTKEY],
                    }),
                    right: Box::new(PhysExpr::TableScan {
                        table: TableId(1),
                        positions: vec![1],
                        cols: vec![O_CUSTKEY],
                    }),
                    right_map: vec![O_CUSTKEY],
                },
                "Except",
            ),
            (
                PhysExpr::SegmentExec {
                    input: Box::new(scan_orders()),
                    segment_cols: vec![O_CUSTKEY],
                    inner: Box::new(PhysExpr::SegmentScan {
                        cols: vec![(ColId(300), O_TOTALPRICE)],
                    }),
                    out_cols: vec![O_CUSTKEY, ColId(300)],
                },
                "SegmentExec",
            ),
        ];
        for (plan, op) in cases {
            let gov = QueryContext::new().with_memory_limit(1);
            match run_governed(&plan, &catalog, gov) {
                Err(e) => match e.root_cause() {
                    Error::ResourceExhausted { operator, hint, .. } => {
                        assert_eq!(operator.as_str(), op, "blame names the buffering operator");
                        let Some(h) = hint else {
                            panic!("{op}: refusal carried no hint")
                        };
                        assert!(h.contains("ORTHOPT_MEM_LIMIT"), "{op}: {h}");
                    }
                    other => panic!("{op}: expected ResourceExhausted, got {other:?}"),
                },
                Ok(_) => panic!("{op}: one-byte budget did not trip"),
            }
        }

        // The exchange gather buffer is the same contract, one layer up:
        // workers stream an uncharged scan, the gather charge trips.
        let plan = PhysExpr::Exchange {
            input: Box::new(scan_orders()),
        };
        let mut pipe = Pipeline::compile(&plan).unwrap();
        pipe.set_parallelism(2);
        pipe.set_governor(QueryContext::new().with_memory_limit(1));
        match pipe.execute(&catalog, &Bindings::new()) {
            Err(e) => match e.root_cause() {
                Error::ResourceExhausted { operator, hint, .. } => {
                    assert_eq!(operator.as_str(), "Exchange");
                    let Some(h) = hint else {
                        panic!("Exchange: refusal carried no hint")
                    };
                    assert!(h.contains("ORTHOPT_MEM_LIMIT"), "{h}");
                }
                other => panic!("Exchange: expected ResourceExhausted, got {other:?}"),
            },
            Ok(_) => panic!("Exchange: one-byte budget did not trip"),
        }
    }

    /// Refusals at spillable operators carry a hint naming both escape
    /// hatches; spilling was pinned off, so the message must say how to
    /// turn it back on.
    #[test]
    fn refusal_hint_names_the_knobs() {
        let catalog = customers_orders();
        let gov = QueryContext::new().with_memory_limit(16);
        match run_governed_no_spill(&sort_plan(), &catalog, gov) {
            Err(Error::ResourceExhausted { hint: Some(h), .. }) => {
                assert!(h.contains("ORTHOPT_MEM_LIMIT"), "{h}");
                assert!(h.contains("spill"), "{h}");
            }
            other => panic!("expected hinted refusal, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_passes_and_records_peaks() {
        let catalog = customers_orders();
        let mut pipe = Pipeline::compile(&join_plan()).unwrap();
        let gov = QueryContext::new().with_memory_limit(1 << 20);
        pipe.set_governor(gov);
        let chunk = pipe.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(chunk.rows.len(), 4);
        let peak = pipe.governor().mem_peak().unwrap();
        assert!(peak > 0, "pool saw the build bytes");
        let stats = pipe.stats();
        assert!(
            stats.iter().any(|s| s.mem_peak > 0),
            "some operator reported a memory peak: {stats:?}"
        );
    }

    #[test]
    fn apply_cache_sheds_and_falls_back_to_reexecution() {
        // The inner side is parameter-invariant (no params), so the
        // compiler wraps it in a cache. Under a budget too small for the
        // cached rows the cache must shed and re-execute per outer row
        // instead of failing the query.
        let catalog = customers_orders();
        let inner = PhysExpr::Filter {
            input: Box::new(scan_orders()),
            predicate: ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(O_ORDERKEY),
                ScalarExpr::lit(0i64),
            ),
        };
        let plan = PhysExpr::ApplyLoop {
            kind: orthopt_ir::ApplyKind::Cross,
            left: Box::new(scan_customer()),
            right: Box::new(inner),
            params: vec![],
        };
        let ungoverned = run_governed(&plan, &catalog, QueryContext::new()).unwrap();
        assert_eq!(ungoverned.rows.len(), 12);
        // 16 bytes cannot hold even one cached row.
        let gov = QueryContext::new().with_memory_limit(16);
        let governed = run_governed(&plan, &catalog, gov).expect("cache sheds, query survives");
        assert!(orthopt_common::row::bag_eq(
            &ungoverned.rows,
            &governed.rows
        ));
    }

    #[test]
    fn pre_cancelled_token_fails_fast() {
        let catalog = customers_orders();
        let gov = QueryContext::new().with_cancellation();
        gov.cancel_token().cancel();
        match run_governed(&join_plan(), &catalog, gov) {
            Err(Error::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn zero_deadline_cancels_at_first_boundary() {
        let catalog = customers_orders();
        let gov = QueryContext::new().with_timeout(Duration::ZERO);
        match run_governed(&join_plan(), &catalog, gov) {
            Err(Error::Cancelled { ref operator, .. }) => {
                assert!(!operator.is_empty(), "cancellation blames an operator");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn pipeline_reusable_after_governor_failure() {
        let catalog = customers_orders();
        let mut pipe = Pipeline::compile(&join_plan()).unwrap();
        pipe.set_governor(QueryContext::new().with_memory_limit(16));
        assert!(pipe.execute(&catalog, &Bindings::new()).is_err());
        // Same compiled pipeline, governor lifted: clean answer.
        pipe.set_governor(QueryContext::new());
        let chunk = pipe.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(chunk.rows.len(), 4);
    }

    #[test]
    fn parallel_exchange_respects_budget_and_cancellation() {
        let catalog = customers_orders();
        let plan = PhysExpr::Exchange {
            input: Box::new(scan_orders()),
        };
        let mut pipe = Pipeline::compile(&plan).unwrap();
        pipe.set_parallelism(4);
        pipe.set_governor(QueryContext::new().with_memory_limit(16));
        match pipe.execute(&catalog, &Bindings::new()) {
            Err(Error::ResourceExhausted { .. }) => {}
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        let gov = QueryContext::new().with_cancellation();
        gov.cancel_token().cancel();
        pipe.set_governor(gov);
        match pipe.execute(&catalog, &Bindings::new()) {
            Err(Error::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // And clean afterwards.
        pipe.set_governor(QueryContext::new());
        assert_eq!(pipe.execute(&catalog, &Bindings::new()).unwrap().len(), 4);
    }
}
