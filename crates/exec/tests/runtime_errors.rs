//! Run-time error propagation through physical plans: SQL's data-
//! dependent errors (division by zero, integer overflow, Max1Row) must
//! surface as `Err`, not panics or wrong answers — and must not fire
//! for rows that filters have already rejected.

mod fixtures;

use fixtures::*;
use orthopt_common::{ColId, Error, TableId};
use orthopt_exec::physical::Executor;
use orthopt_exec::{Bindings, PhysExpr};
use orthopt_ir::{ArithOp, CmpOp, ScalarExpr};

fn scan_orders() -> PhysExpr {
    PhysExpr::TableScan {
        table: TableId(1),
        positions: vec![0, 1, 2],
        cols: vec![O_ORDERKEY, O_CUSTKEY, O_TOTALPRICE],
    }
}

#[test]
fn division_by_zero_in_compute_propagates() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let plan = PhysExpr::Compute {
        input: Box::new(scan_orders()),
        defs: vec![(
            ColId(90),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::col(O_TOTALPRICE)),
                right: Box::new(ScalarExpr::lit(0i64)),
            },
        )],
    };
    assert_eq!(
        ex.exec(&plan, &Bindings::new()).unwrap_err(),
        Error::DivideByZero
    );
}

#[test]
fn filter_prevents_error_on_rejected_rows() {
    // 100 / (o_orderkey - 10) divides by zero only for orderkey 10; a
    // filter removing that row first must suppress the error.
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let risky = |input: PhysExpr| PhysExpr::Compute {
        input: Box::new(input),
        defs: vec![(
            ColId(91),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::lit(100i64)),
                right: Box::new(ScalarExpr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(ScalarExpr::col(O_ORDERKEY)),
                    right: Box::new(ScalarExpr::lit(10i64)),
                }),
            },
        )],
    };
    // Unguarded: errors.
    assert!(ex.exec(&risky(scan_orders()), &Bindings::new()).is_err());
    // Guarded: fine.
    let guarded = risky(PhysExpr::Filter {
        input: Box::new(scan_orders()),
        predicate: ScalarExpr::cmp(
            CmpOp::Ne,
            ScalarExpr::col(O_ORDERKEY),
            ScalarExpr::lit(10i64),
        ),
    });
    let out = ex.exec(&guarded, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 3);
}

#[test]
fn overflow_in_aggregate_propagates() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    // SUM of (i64::MAX interpreted per row) overflows after row two.
    let big = PhysExpr::Compute {
        input: Box::new(scan_orders()),
        defs: vec![(ColId(92), ScalarExpr::lit(i64::MAX))],
    };
    let agg = PhysExpr::HashAggregate {
        kind: orthopt_ir::GroupKind::Scalar,
        input: Box::new(big),
        group_cols: vec![],
        aggs: vec![orthopt_ir::AggDef::new(
            orthopt_ir::ColumnMeta::new(ColId(93), "s", orthopt_common::DataType::Int, true),
            orthopt_ir::AggFunc::Sum,
            Some(ScalarExpr::col(ColId(92))),
        )],
    };
    assert_eq!(
        ex.exec(&agg, &Bindings::new()).unwrap_err(),
        Error::NumericOverflow
    );
}

#[test]
fn error_inside_apply_inner_surfaces_once() {
    // The inner plan errors on some invocation: the whole query errors.
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let inner = PhysExpr::Compute {
        input: Box::new(PhysExpr::IndexSeek {
            table: TableId(1),
            positions: vec![0],
            cols: vec![ColId(94)],
            index_cols: vec![1],
            probes: vec![ScalarExpr::col(C_CUSTKEY)],
        }),
        defs: vec![(
            ColId(95),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::lit(1i64)),
                right: Box::new(ScalarExpr::lit(0i64)),
            },
        )],
    };
    let apply = PhysExpr::ApplyLoop {
        kind: orthopt_ir::ApplyKind::LeftOuter,
        left: Box::new(PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![C_CUSTKEY],
        }),
        right: Box::new(inner),
        params: vec![C_CUSTKEY],
    };
    assert_eq!(
        ex.exec(&apply, &Bindings::new()).unwrap_err(),
        Error::DivideByZero
    );
}

#[test]
fn conditional_execution_suppresses_inner_errors() {
    // Carol (custkey 3) has no orders: the index seek returns nothing,
    // so the Compute above it never runs for her; but for customers
    // *with* orders it errors. Restricting the outer side to carol must
    // succeed — the execution-side half of §2.4's conditional execution.
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let inner = PhysExpr::Compute {
        input: Box::new(PhysExpr::IndexSeek {
            table: TableId(1),
            positions: vec![0],
            cols: vec![ColId(96)],
            index_cols: vec![1],
            probes: vec![ScalarExpr::col(C_CUSTKEY)],
        }),
        defs: vec![(
            ColId(97),
            ScalarExpr::Arith {
                op: ArithOp::Div,
                left: Box::new(ScalarExpr::lit(1i64)),
                right: Box::new(ScalarExpr::lit(0i64)),
            },
        )],
    };
    let only_carol = PhysExpr::Filter {
        input: Box::new(PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![C_CUSTKEY],
        }),
        predicate: ScalarExpr::eq(ScalarExpr::col(C_CUSTKEY), ScalarExpr::lit(3i64)),
    };
    let apply = PhysExpr::ApplyLoop {
        kind: orthopt_ir::ApplyKind::LeftOuter,
        left: Box::new(only_carol),
        right: Box::new(inner),
        params: vec![C_CUSTKEY],
    };
    let out = ex.exec(&apply, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 1);
    assert!(out.rows[0][1].is_null());
}

#[test]
fn assert_max1_errors_with_sql_error_kind() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let plan = PhysExpr::AssertMax1 {
        input: Box::new(scan_orders()),
    };
    assert_eq!(
        ex.exec(&plan, &Bindings::new()).unwrap_err(),
        Error::SubqueryReturnedMoreThanOneRow
    );
}
