//! Deterministic fault injection against the streaming pipeline.
//!
//! Compiled only with the `fault-injection` feature; lives in its own
//! test binary (its own process) so arming the process-global fault
//! registry cannot perturb the other suites. Tests within this binary
//! serialize on a local mutex for the same reason.
#![cfg(feature = "fault-injection")]

mod fixtures;

use fixtures::*;
use orthopt_common::{ColId, Error, QueryContext, Result, TableId};
use orthopt_exec::faults::{self, FaultAction};
use orthopt_exec::{Bindings, Chunk, PhysExpr, Pipeline};
use orthopt_ir::{JoinKind, ScalarExpr};
use orthopt_storage::Catalog;
use orthopt_synccheck::sync::{Mutex, MutexGuard};

/// Serializes tests that arm the process-global registry.
fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
}

fn scan_orders() -> PhysExpr {
    PhysExpr::TableScan {
        table: TableId(1),
        positions: vec![0, 1, 2],
        cols: vec![O_ORDERKEY, O_CUSTKEY, O_TOTALPRICE],
    }
}

fn join_plan() -> PhysExpr {
    PhysExpr::HashJoin {
        kind: JoinKind::Inner,
        left: Box::new(PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0, 1],
            cols: vec![C_CUSTKEY, C_NAME],
        }),
        right: Box::new(scan_orders()),
        left_keys: vec![C_CUSTKEY],
        right_keys: vec![O_CUSTKEY],
        residual: ScalarExpr::lit(true),
    }
}

fn run(plan: &PhysExpr, catalog: &Catalog, parallelism: usize) -> Result<Chunk> {
    let mut pipe = Pipeline::compile(plan)?;
    pipe.set_parallelism(parallelism);
    pipe.set_governor(QueryContext::new());
    pipe.execute(catalog, &Bindings::new())
}

#[test]
// The point of the assertion is exactly that the constant is true in
// this build configuration (and false without the feature).
#[allow(clippy::assertions_on_constants)]
fn feature_is_compiled_in() {
    assert!(faults::COMPILED);
}

#[test]
fn refused_allocation_surfaces_as_resource_exhausted() {
    let _g = registry_lock();
    let catalog = customers_orders();
    faults::install("hashjoin.build", FaultAction::RefuseAlloc, 0);
    // Spill pinned off per-pipeline: with it on (the default) a refused
    // build charge degrades to a grace hash join and the query succeeds
    // — that leg is covered by the fault matrix; this test asserts the
    // strict refusal contract.
    let opts = orthopt_exec::PipelineOptions {
        spill: Some(false),
        ..Default::default()
    };
    let mut pipe = Pipeline::with_options(&join_plan(), opts).unwrap();
    pipe.set_parallelism(1);
    pipe.set_governor(QueryContext::new());
    let err = pipe.execute(&catalog, &Bindings::new()).unwrap_err();
    faults::clear();
    match err {
        Error::ResourceExhausted { operator, .. } => {
            assert_eq!(operator, "fault:hashjoin.build");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
}

#[test]
fn error_fault_at_operator_boundary_names_the_site() {
    let _g = registry_lock();
    let catalog = customers_orders();
    faults::install("Sort", FaultAction::Error, 0);
    let plan = PhysExpr::Sort {
        input: Box::new(scan_orders()),
        by: vec![(O_TOTALPRICE, false)],
    };
    let err = run(&plan, &catalog, 1).unwrap_err();
    faults::clear();
    assert_eq!(err, Error::Exec("injected fault at Sort".into()));
}

#[test]
fn after_counter_delays_the_failure() {
    let _g = registry_lock();
    let catalog = customers_orders();
    // The orders build side feeds one batch; skipping one hit means the
    // site never fires on this table.
    faults::install("hashjoin.build", FaultAction::Error, 1);
    let chunk = run(&join_plan(), &catalog, 1).unwrap();
    assert_eq!(chunk.rows.len(), 4);
    assert_eq!(faults::fired("hashjoin.build"), 0);
    faults::clear();
}

#[test]
fn engine_survives_and_recovers_after_injected_failure() {
    let _g = registry_lock();
    let catalog = customers_orders();
    faults::install("hashjoin.build", FaultAction::Error, 0);
    assert!(run(&join_plan(), &catalog, 1).is_err());
    faults::clear();
    let chunk = run(&join_plan(), &catalog, 1).unwrap();
    assert_eq!(chunk.rows.len(), 4);
}

#[test]
fn worker_panic_is_isolated_and_attributed() {
    let _g = registry_lock();
    let catalog = customers_orders();
    let plan = PhysExpr::Exchange {
        input: Box::new(scan_orders()),
    };
    // Panic inside the morsel workers' scan boundary: scatter converts
    // it to an error instead of unwinding through the scheduler.
    faults::install("MorselScan", FaultAction::Panic, 0);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence expected backtraces
    let err = run(&plan, &catalog, 4).unwrap_err();
    std::panic::set_hook(hook);
    faults::clear();
    match err {
        Error::Exec(msg) => {
            assert!(msg.contains("worker panicked"), "{msg}");
            assert!(msg.contains("injected panic at MorselScan"), "{msg}");
        }
        other => panic!("expected Exec, got {other:?}"),
    }
    // Same process, same catalog: clean run afterwards.
    let chunk = run(&plan, &catalog, 4).unwrap();
    assert_eq!(chunk.rows.len(), 4);
}

#[test]
fn seeded_schedules_fail_identically() {
    let _g = registry_lock();
    let catalog = customers_orders();
    let sites = ["hashjoin.build", "HashJoin", "TableScan"];
    let mut outcomes = Vec::new();
    for _ in 0..2 {
        let schedule = faults::install_seeded(0x5eed, &sites);
        let outcome = match run(&join_plan(), &catalog, 1) {
            Ok(chunk) => format!("ok:{}", chunk.rows.len()),
            Err(e) => format!("err:{e}"),
        };
        faults::clear();
        outcomes.push((schedule, outcome));
    }
    assert_eq!(outcomes[0], outcomes[1], "same seed, same failure");
}

#[test]
fn cache_shed_on_injected_refusal_degrades_not_fails() {
    let _g = registry_lock();
    let catalog = customers_orders();
    let inner = PhysExpr::Filter {
        input: Box::new(scan_orders()),
        predicate: ScalarExpr::cmp(
            orthopt_ir::CmpOp::Gt,
            ScalarExpr::col(O_ORDERKEY),
            ScalarExpr::lit(0i64),
        ),
    };
    let plan = PhysExpr::ApplyLoop {
        kind: orthopt_ir::ApplyKind::Cross,
        left: Box::new(PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![ColId(70)],
        }),
        right: Box::new(inner),
        params: vec![],
    };
    let clean = run(&plan, &catalog, 1).unwrap();
    faults::install("cache.fill", FaultAction::RefuseAlloc, 0);
    let shed = run(&plan, &catalog, 1).expect("cache sheds and re-executes");
    faults::clear();
    assert!(orthopt_common::row::bag_eq(&clean.rows, &shed.rows));
}
