//! Reference-interpreter semantics tests on the paper's running example.

mod fixtures;

use fixtures::*;
use orthopt_common::row::bag_eq;
use orthopt_common::{ColId, DataType, Error, Value};
use orthopt_exec::Reference;
use orthopt_ir::builder;
use orthopt_ir::{AggFunc, ApplyKind, CmpOp, ColumnMeta, JoinKind, RelExpr, ScalarExpr};

/// Figure 2 of the paper: σ_{1000000<X}(customer A× G¹_{X=sum(price)}
/// σ_{o_custkey=c_custkey} orders) — here with a 150.0 threshold so the
/// fixture data produces exactly customer 1.
fn q1_correlated(threshold: f64) -> RelExpr {
    let inner_filter = builder::select(
        get_orders(),
        ScalarExpr::eq(ScalarExpr::col(O_CUSTKEY), ScalarExpr::col(C_CUSTKEY)),
    );
    let x = ColId(40);
    let scalar_agg = builder::scalar_groupby(
        inner_filter,
        vec![orthopt_ir::AggDef::new(
            ColumnMeta::new(x, "x", DataType::Float, true),
            AggFunc::Sum,
            Some(ScalarExpr::col(O_TOTALPRICE)),
        )],
    );
    let apply = RelExpr::Apply {
        kind: ApplyKind::Cross,
        left: Box::new(get_customer()),
        right: Box::new(scalar_agg),
    };
    builder::select(
        apply,
        ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(threshold), ScalarExpr::col(x)),
    )
}

#[test]
fn correlated_scalar_agg_apply_matches_paper_semantics() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let out = interp.run(&q1_correlated(150.0)).unwrap();
    // Only alice (300 total) exceeds 150; bob has 50 (NULL skipped);
    // carol's empty subquery sums to NULL which the filter rejects.
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(1));
}

#[test]
fn correlated_apply_preserves_outer_cardinality_before_filter() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    // Strip the filter: scalar aggregation returns exactly one row per
    // customer (§1.1), so Apply preserves customer cardinality.
    let plan = match q1_correlated(0.0) {
        RelExpr::Select { input, .. } => *input,
        _ => unreachable!(),
    };
    let out = interp.run(&plan).unwrap();
    assert_eq!(out.len(), 3);
    // carol's aggregate over the empty set is NULL.
    let carol = out
        .rows
        .iter()
        .find(|r| r[0] == Value::Int(3))
        .expect("carol present");
    assert!(carol.last().unwrap().is_null());
}

#[test]
fn left_outer_join_pads_and_inner_join_drops() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let pred = ScalarExpr::eq(ScalarExpr::col(O_CUSTKEY), ScalarExpr::col(C_CUSTKEY));
    let loj = builder::join(
        JoinKind::LeftOuter,
        get_customer(),
        get_orders(),
        pred.clone(),
    );
    let out = interp.run(&loj).unwrap();
    // alice×2 + bob×2 + carol padded = 5
    assert_eq!(out.len(), 5);
    let inner = builder::join(JoinKind::Inner, get_customer(), get_orders(), pred);
    assert_eq!(interp.run(&inner).unwrap().len(), 4);
}

#[test]
fn semijoin_and_antijoin_partition_customers() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let pred = ScalarExpr::eq(ScalarExpr::col(O_CUSTKEY), ScalarExpr::col(C_CUSTKEY));
    let semi = builder::join(
        JoinKind::LeftSemi,
        get_customer(),
        get_orders(),
        pred.clone(),
    );
    let anti = builder::join(JoinKind::LeftAnti, get_customer(), get_orders(), pred);
    let semi_out = interp.run(&semi).unwrap();
    let anti_out = interp.run(&anti).unwrap();
    assert_eq!(semi_out.len(), 2); // alice, bob
    assert_eq!(anti_out.len(), 1); // carol
    assert_eq!(anti_out.rows[0][0], Value::Int(3));
}

#[test]
fn vector_groupby_drops_empty_and_scalar_keeps_one_row() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let empty = builder::select(get_orders(), ScalarExpr::lit(false));
    let vector = builder::groupby(
        empty.clone(),
        vec![O_CUSTKEY],
        vec![builder::agg(
            ColId(41),
            "s",
            AggFunc::Sum,
            Some(ScalarExpr::col(O_TOTALPRICE)),
        )],
    );
    assert!(interp.run(&vector).unwrap().is_empty());
    let scalar = builder::scalar_groupby(
        empty,
        vec![
            builder::agg(
                ColId(42),
                "s",
                AggFunc::Sum,
                Some(ScalarExpr::col(O_TOTALPRICE)),
            ),
            builder::agg(ColId(43), "n", AggFunc::CountStar, None),
        ],
    );
    let out = interp.run(&scalar).unwrap();
    assert_eq!(out.len(), 1);
    assert!(out.rows[0][0].is_null());
    assert_eq!(out.rows[0][1], Value::Int(0));
}

#[test]
fn scalar_subquery_in_select_list_runs_mutually_recursively() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    // select c_custkey, (select sum(o_totalprice) from orders where
    // o_custkey = c_custkey) from customer — the §2.1 form, subquery
    // inside a Map's scalar expression.
    let inner = builder::scalar_groupby(
        builder::select(
            get_orders(),
            ScalarExpr::eq(ScalarExpr::col(O_CUSTKEY), ScalarExpr::col(C_CUSTKEY)),
        ),
        vec![builder::agg(
            ColId(44),
            "x",
            AggFunc::Sum,
            Some(ScalarExpr::col(O_TOTALPRICE)),
        )],
    );
    let plan = builder::map1(
        get_customer(),
        ColumnMeta::new(ColId(45), "total", DataType::Float, true),
        ScalarExpr::Subquery(Box::new(inner)),
    );
    let out = interp.run(&plan).unwrap();
    assert_eq!(out.len(), 3);
    let total_pos = out.col_pos(ColId(45)).unwrap();
    let alice = out.rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
    assert_eq!(alice[total_pos], Value::Float(300.0));
    let carol = out.rows.iter().find(|r| r[0] == Value::Int(3)).unwrap();
    assert!(carol[total_pos].is_null());
}

#[test]
fn scalar_subquery_with_multiple_rows_errors_like_q2_of_the_paper() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    // select c_custkey, (select o_orderkey from orders where o_custkey =
    // c_custkey) from customer — paper §2.4 Q2: run-time error because
    // alice has two orders.
    let inner = builder::select(
        get_orders(),
        ScalarExpr::eq(ScalarExpr::col(O_CUSTKEY), ScalarExpr::col(C_CUSTKEY)),
    );
    let inner = RelExpr::Project {
        input: Box::new(inner),
        cols: vec![O_ORDERKEY],
    };
    let plan = builder::map1(
        get_customer(),
        ColumnMeta::new(ColId(46), "ok", DataType::Int, true),
        ScalarExpr::Subquery(Box::new(inner)),
    );
    assert_eq!(
        interp.run(&plan).unwrap_err(),
        Error::SubqueryReturnedMoreThanOneRow
    );
}

#[test]
fn max1row_passes_singletons_and_errors_on_more() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let one = RelExpr::Max1Row {
        input: Box::new(builder::select(
            get_orders(),
            ScalarExpr::eq(ScalarExpr::col(O_ORDERKEY), ScalarExpr::lit(10i64)),
        )),
    };
    assert_eq!(interp.run(&one).unwrap().len(), 1);
    let many = RelExpr::Max1Row {
        input: Box::new(get_orders()),
    };
    assert_eq!(
        interp.run(&many).unwrap_err(),
        Error::SubqueryReturnedMoreThanOneRow
    );
}

#[test]
fn exists_and_not_exists_via_scalar_markers() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let sub = builder::select(
        get_orders(),
        ScalarExpr::eq(ScalarExpr::col(O_CUSTKEY), ScalarExpr::col(C_CUSTKEY)),
    );
    let with_orders = builder::select(
        get_customer(),
        ScalarExpr::Exists {
            rel: Box::new(sub.clone()),
            negated: false,
        },
    );
    assert_eq!(interp.run(&with_orders).unwrap().len(), 2);
    let without = builder::select(
        get_customer(),
        ScalarExpr::Exists {
            rel: Box::new(sub),
            negated: true,
        },
    );
    let out = interp.run(&without).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(3));
}

#[test]
fn in_subquery_null_semantics() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    // prices include a NULL: `125 IN (select o_totalprice ...)` is
    // unknown (no match + NULL present) so the row is filtered; NOT IN
    // is also unknown.
    let prices = RelExpr::Project {
        input: Box::new(get_orders()),
        cols: vec![O_TOTALPRICE],
    };
    for negated in [false, true] {
        let q = builder::select(
            get_customer(),
            ScalarExpr::InSubquery {
                expr: Box::new(ScalarExpr::lit(125.0f64)),
                rel: Box::new(prices.clone()),
                negated,
            },
        );
        assert_eq!(interp.run(&q).unwrap().len(), 0, "negated={negated}");
    }
    // A price that does exist matches regardless of the NULL.
    let hit = builder::select(
        get_customer(),
        ScalarExpr::InSubquery {
            expr: Box::new(ScalarExpr::lit(50.0f64)),
            rel: Box::new(prices),
            negated: false,
        },
    );
    assert_eq!(interp.run(&hit).unwrap().len(), 3);
}

#[test]
fn quantified_comparisons() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let keys = RelExpr::Project {
        input: Box::new(get_orders()),
        cols: vec![O_ORDERKEY],
    };
    // 9 < ALL(order keys) — true (keys are 10..13, no NULLs).
    let all = builder::select(
        get_customer(),
        ScalarExpr::QuantifiedCmp {
            op: CmpOp::Lt,
            quant: orthopt_ir::Quant::All,
            expr: Box::new(ScalarExpr::lit(9i64)),
            rel: Box::new(keys.clone()),
        },
    );
    assert_eq!(interp.run(&all).unwrap().len(), 3);
    // 13 >= ANY(keys) — true.
    let any = builder::select(
        get_customer(),
        ScalarExpr::QuantifiedCmp {
            op: CmpOp::Ge,
            quant: orthopt_ir::Quant::Any,
            expr: Box::new(ScalarExpr::lit(13i64)),
            rel: Box::new(keys),
        },
    );
    assert_eq!(interp.run(&any).unwrap().len(), 3);
}

#[test]
fn union_all_and_except_are_bag_oriented() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let keys = || RelExpr::Project {
        input: Box::new(get_customer()),
        cols: vec![C_CUSTKEY],
    };
    let out_col = ColumnMeta::new(ColId(47), "k", DataType::Int, false);
    let union = RelExpr::UnionAll {
        left: Box::new(keys()),
        right: Box::new(keys()),
        cols: vec![out_col],
        left_map: vec![C_CUSTKEY],
        right_map: vec![C_CUSTKEY],
    };
    let out = interp.run(&union).unwrap();
    assert_eq!(out.len(), 6);
    // EXCEPT ALL: (1,2,3) minus (2) = {1,3}
    let just_two = builder::select(
        keys(),
        ScalarExpr::eq(ScalarExpr::col(C_CUSTKEY), ScalarExpr::lit(2i64)),
    );
    // Rename the right side so ids stay unique.
    let mut gen = orthopt_common::ColIdGen::starting_at(200);
    let (right, rmap) = just_two.clone_with_fresh_cols(&mut gen);
    let except = RelExpr::Except {
        left: Box::new(keys()),
        right: Box::new(right),
        right_map: vec![rmap[&C_CUSTKEY]],
    };
    let out = interp.run(&except).unwrap();
    assert!(bag_eq(
        &out.rows,
        &[vec![Value::Int(1)], vec![Value::Int(3)]]
    ));
}

#[test]
fn segment_apply_computes_per_segment_join() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    // Segment orders by o_custkey; per segment, keep rows with price
    // above the segment average (a miniature of TPC-H Q17's shape).
    let seg_price = ColId(60);
    let seg_price2 = ColId(61);
    let avg_out = ColId(62);
    let seg1 = RelExpr::SegmentRef {
        cols: vec![(
            ColumnMeta::new(seg_price, "p", DataType::Float, true),
            O_TOTALPRICE,
        )],
    };
    let seg2 = RelExpr::SegmentRef {
        cols: vec![(
            ColumnMeta::new(seg_price2, "p2", DataType::Float, true),
            O_TOTALPRICE,
        )],
    };
    let avg = builder::scalar_groupby(
        seg2,
        vec![orthopt_ir::AggDef::new(
            ColumnMeta::new(avg_out, "avg", DataType::Float, true),
            AggFunc::Avg,
            Some(ScalarExpr::col(seg_price2)),
        )],
    );
    let inner = builder::join(
        JoinKind::Inner,
        seg1,
        avg,
        ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(seg_price),
            ScalarExpr::col(avg_out),
        ),
    );
    let plan = RelExpr::SegmentApply {
        input: Box::new(get_orders()),
        segment_cols: vec![O_CUSTKEY],
        inner: Box::new(inner),
    };
    let out = interp.run(&plan).unwrap();
    // Customer 1: avg=150, only the 200.0 order qualifies.
    // Customer 2: avg=50 (NULL skipped), 50 > 50 is false → nothing.
    assert_eq!(out.len(), 1);
    let price_pos = out.col_pos(seg_price).unwrap();
    assert_eq!(out.rows[0][price_pos], Value::Float(200.0));
}

#[test]
fn enumerate_manufactures_distinct_keys() {
    let catalog = customers_orders();
    let interp = Reference::new(&catalog);
    let plan = RelExpr::Enumerate {
        input: Box::new(get_orders()),
        col: ColumnMeta::new(ColId(70), "rn", DataType::Int, false),
    };
    let out = interp.run(&plan).unwrap();
    let pos = out.col_pos(ColId(70)).unwrap();
    let mut ids: Vec<i64> = out
        .rows
        .iter()
        .map(|r| match &r[pos] {
            Value::Int(i) => *i,
            _ => panic!("int expected"),
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), out.len());
}
