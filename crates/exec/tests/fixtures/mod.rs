//! Shared test fixtures: a tiny customers/orders catalog mirroring the
//! paper's running example (Q1 of §1.1).
//!
//! Compiled into several test binaries, each using a different subset.
#![allow(dead_code)]

use orthopt_common::{ColId, DataType, TableId, Value};
use orthopt_ir::builder;
use orthopt_ir::RelExpr;
use orthopt_storage::{Catalog, ColumnDef, TableDef};

/// customer.c_custkey
pub const C_CUSTKEY: ColId = ColId(0);
/// customer.c_name
pub const C_NAME: ColId = ColId(1);
/// orders.o_orderkey
pub const O_ORDERKEY: ColId = ColId(2);
/// orders.o_custkey
pub const O_CUSTKEY: ColId = ColId(3);
/// orders.o_totalprice
pub const O_TOTALPRICE: ColId = ColId(4);

/// Builds `customer(c_custkey key, c_name)` and
/// `orders(o_orderkey key, o_custkey, o_totalprice)` with a few rows:
///
/// * customer 1 "alice": orders 100.0 + 200.0
/// * customer 2 "bob":   order 50.0
/// * customer 3 "carol": no orders
/// * order 13 has a NULL price for customer 2.
pub fn customers_orders() -> Catalog {
    let mut catalog = Catalog::new();
    let cust = catalog
        .create_table(TableDef::new(
            "customer",
            vec![
                ColumnDef::new("c_custkey", DataType::Int),
                ColumnDef::new("c_name", DataType::Str),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    let orders = catalog
        .create_table(TableDef::new(
            "orders",
            vec![
                ColumnDef::new("o_orderkey", DataType::Int),
                ColumnDef::new("o_custkey", DataType::Int),
                ColumnDef::nullable("o_totalprice", DataType::Float),
            ],
            vec![vec![0]],
        ))
        .unwrap();
    {
        let t = catalog.table_mut(cust);
        t.insert_all([
            vec![Value::Int(1), Value::str("alice")],
            vec![Value::Int(2), Value::str("bob")],
            vec![Value::Int(3), Value::str("carol")],
        ])
        .unwrap();
        t.analyze();
    }
    {
        let t = catalog.table_mut(orders);
        t.insert_all([
            vec![Value::Int(10), Value::Int(1), Value::Float(100.0)],
            vec![Value::Int(11), Value::Int(1), Value::Float(200.0)],
            vec![Value::Int(12), Value::Int(2), Value::Float(50.0)],
            vec![Value::Int(13), Value::Int(2), Value::Null],
        ])
        .unwrap();
        t.build_index(vec![1]).unwrap();
        t.analyze();
    }
    catalog
}

/// `Get customer` bound to the fixture column ids.
pub fn get_customer() -> RelExpr {
    builder::get(
        TableId(0),
        "customer",
        &[
            (C_CUSTKEY, "c_custkey", DataType::Int, false),
            (C_NAME, "c_name", DataType::Str, false),
        ],
        &[&[0]],
        3.0,
    )
}

/// `Get orders` bound to the fixture column ids.
pub fn get_orders() -> RelExpr {
    builder::get(
        TableId(1),
        "orders",
        &[
            (O_ORDERKEY, "o_orderkey", DataType::Int, false),
            (O_CUSTKEY, "o_custkey", DataType::Int, false),
            (O_TOTALPRICE, "o_totalprice", DataType::Float, true),
        ],
        &[&[0]],
        4.0,
    )
}
