//! Physical-operator tests: each execution-time operator the optimizer
//! can emit, exercised directly against the fixture catalog.

mod fixtures;

use fixtures::*;
use orthopt_common::row::bag_eq;
use orthopt_common::{ColId, TableId, Value};
use orthopt_exec::physical::Executor;
use orthopt_exec::{Bindings, PhysExpr};
use orthopt_ir::{AggFunc, ApplyKind, CmpOp, GroupKind, JoinKind, ScalarExpr};

fn scan_customer() -> PhysExpr {
    PhysExpr::TableScan {
        table: TableId(0),
        positions: vec![0, 1],
        cols: vec![C_CUSTKEY, C_NAME],
    }
}

fn scan_orders() -> PhysExpr {
    PhysExpr::TableScan {
        table: TableId(1),
        positions: vec![0, 1, 2],
        cols: vec![O_ORDERKEY, O_CUSTKEY, O_TOTALPRICE],
    }
}

fn agg_def(out: ColId, func: AggFunc, arg: Option<ScalarExpr>) -> orthopt_ir::AggDef {
    orthopt_ir::AggDef::new(
        orthopt_ir::ColumnMeta::new(
            out,
            "agg",
            func.output_type(Some(orthopt_common::DataType::Float)),
            true,
        ),
        func,
        arg,
    )
}

#[test]
fn table_scan_reads_all_rows() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let out = ex.exec(&scan_customer(), &Bindings::new()).unwrap();
    assert_eq!(out.len(), 3);
    assert_eq!(out.cols, vec![C_CUSTKEY, C_NAME]);
}

#[test]
fn index_seek_probes_by_parameter() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let mut binds = Bindings::new();
    binds.set(C_CUSTKEY, Value::Int(1));
    let seek = PhysExpr::IndexSeek {
        table: TableId(1),
        positions: vec![0, 1, 2],
        cols: vec![O_ORDERKEY, O_CUSTKEY, O_TOTALPRICE],
        index_cols: vec![1],
        probes: vec![ScalarExpr::col(C_CUSTKEY)],
    };
    let out = ex.exec(&seek, &binds).unwrap();
    assert_eq!(out.len(), 2);
    // NULL probe matches nothing.
    binds.set(C_CUSTKEY, Value::Null);
    assert!(ex.exec(&seek, &binds).unwrap().is_empty());
}

#[test]
fn hash_join_variants_match_nested_loop_semantics() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    for kind in [
        JoinKind::Inner,
        JoinKind::LeftOuter,
        JoinKind::LeftSemi,
        JoinKind::LeftAnti,
    ] {
        let hash = PhysExpr::HashJoin {
            kind,
            left: Box::new(scan_customer()),
            right: Box::new(scan_orders()),
            left_keys: vec![C_CUSTKEY],
            right_keys: vec![O_CUSTKEY],
            residual: ScalarExpr::true_(),
        };
        let nl = PhysExpr::NLJoin {
            kind,
            left: Box::new(scan_customer()),
            right: Box::new(scan_orders()),
            predicate: ScalarExpr::eq(ScalarExpr::col(C_CUSTKEY), ScalarExpr::col(O_CUSTKEY)),
        };
        let h = ex.exec(&hash, &Bindings::new()).unwrap();
        let n = ex.exec(&nl, &Bindings::new()).unwrap();
        assert!(bag_eq(&h.rows, &n.rows), "kind {kind:?}");
    }
}

#[test]
fn hash_join_residual_filters_matches() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let join = PhysExpr::HashJoin {
        kind: JoinKind::Inner,
        left: Box::new(scan_customer()),
        right: Box::new(scan_orders()),
        left_keys: vec![C_CUSTKEY],
        right_keys: vec![O_CUSTKEY],
        residual: ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(O_TOTALPRICE),
            ScalarExpr::lit(150.0f64),
        ),
    };
    let out = ex.exec(&join, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 1); // only the 200.0 order
}

#[test]
fn hash_join_null_keys_never_match() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    // Join orders to itself on totalprice; the NULL price must not
    // match the other NULL price.
    let left = scan_orders();
    let right = PhysExpr::TableScan {
        table: TableId(1),
        positions: vec![0, 2],
        cols: vec![ColId(80), ColId(81)],
    };
    let join = PhysExpr::HashJoin {
        kind: JoinKind::Inner,
        left: Box::new(left),
        right: Box::new(right),
        left_keys: vec![O_TOTALPRICE],
        right_keys: vec![ColId(81)],
        residual: ScalarExpr::true_(),
    };
    let out = ex.exec(&join, &Bindings::new()).unwrap();
    // Three non-NULL prices, all distinct → 3 self-matches.
    assert_eq!(out.len(), 3);
}

#[test]
fn apply_loop_with_index_seek_is_index_lookup_join() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let inner = PhysExpr::IndexSeek {
        table: TableId(1),
        positions: vec![0, 1, 2],
        cols: vec![O_ORDERKEY, O_CUSTKEY, O_TOTALPRICE],
        index_cols: vec![1],
        probes: vec![ScalarExpr::col(C_CUSTKEY)],
    };
    let apply = PhysExpr::ApplyLoop {
        kind: ApplyKind::LeftOuter,
        left: Box::new(scan_customer()),
        right: Box::new(inner),
        params: vec![C_CUSTKEY],
    };
    let out = ex.exec(&apply, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 5); // 2 + 2 + padded carol
    let padded = out
        .rows
        .iter()
        .find(|r| r[0] == Value::Int(3))
        .expect("carol");
    assert!(padded[2].is_null() && padded[4].is_null());
}

#[test]
fn apply_semi_and_anti() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let inner = PhysExpr::IndexSeek {
        table: TableId(1),
        positions: vec![0],
        cols: vec![O_ORDERKEY],
        index_cols: vec![1],
        probes: vec![ScalarExpr::col(C_CUSTKEY)],
    };
    for (kind, expect) in [(ApplyKind::Semi, 2usize), (ApplyKind::Anti, 1usize)] {
        let apply = PhysExpr::ApplyLoop {
            kind,
            left: Box::new(scan_customer()),
            right: Box::new(inner.clone()),
            params: vec![C_CUSTKEY],
        };
        assert_eq!(ex.exec(&apply, &Bindings::new()).unwrap().len(), expect);
    }
}

#[test]
fn hash_aggregate_vector_scalar_and_having_shape() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let sum = ColId(90);
    let agg = PhysExpr::HashAggregate {
        kind: GroupKind::Vector,
        input: Box::new(scan_orders()),
        group_cols: vec![O_CUSTKEY],
        aggs: vec![agg_def(
            sum,
            AggFunc::Sum,
            Some(ScalarExpr::col(O_TOTALPRICE)),
        )],
    };
    let having = PhysExpr::Filter {
        input: Box::new(agg),
        predicate: ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(150.0f64), ScalarExpr::col(sum)),
    };
    let out = ex.exec(&having, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(1));
}

#[test]
fn segment_exec_matches_reference_segment_apply() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let p1 = ColId(91);
    let p2 = ColId(92);
    let avg = ColId(93);
    let inner = PhysExpr::NLJoin {
        kind: JoinKind::Inner,
        left: Box::new(PhysExpr::SegmentScan {
            cols: vec![(p1, O_TOTALPRICE)],
        }),
        right: Box::new(PhysExpr::HashAggregate {
            kind: GroupKind::Scalar,
            input: Box::new(PhysExpr::SegmentScan {
                cols: vec![(p2, O_TOTALPRICE)],
            }),
            group_cols: vec![],
            aggs: vec![agg_def(avg, AggFunc::Avg, Some(ScalarExpr::col(p2)))],
        }),
        predicate: ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(p1), ScalarExpr::col(avg)),
    };
    let seg = PhysExpr::SegmentExec {
        input: Box::new(scan_orders()),
        segment_cols: vec![O_CUSTKEY],
        inner: Box::new(inner),
        out_cols: vec![O_CUSTKEY, p1, avg],
    };
    let out = ex.exec(&seg, &Bindings::new()).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(1));
    assert_eq!(out.rows[0][1], Value::Float(200.0));
}

#[test]
fn concat_except_assert_rownumber_sort() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let keys = PhysExpr::ProjectCols {
        input: Box::new(scan_customer()),
        cols: vec![C_CUSTKEY],
    };
    let out_col = ColId(94);
    let concat = PhysExpr::Concat {
        left: Box::new(keys.clone()),
        right: Box::new(keys.clone()),
        cols: vec![out_col],
        left_map: vec![C_CUSTKEY],
        right_map: vec![C_CUSTKEY],
    };
    assert_eq!(ex.exec(&concat, &Bindings::new()).unwrap().len(), 6);

    let two = PhysExpr::Filter {
        input: Box::new(PhysExpr::TableScan {
            table: TableId(0),
            positions: vec![0],
            cols: vec![ColId(95)],
        }),
        predicate: ScalarExpr::eq(ScalarExpr::col(ColId(95)), ScalarExpr::lit(2i64)),
    };
    let except = PhysExpr::ExceptExec {
        left: Box::new(keys.clone()),
        right: Box::new(two),
        right_map: vec![ColId(95)],
    };
    let out = ex.exec(&except, &Bindings::new()).unwrap();
    assert!(bag_eq(
        &out.rows,
        &[vec![Value::Int(1)], vec![Value::Int(3)]]
    ));

    let assert1 = PhysExpr::AssertMax1 {
        input: Box::new(keys.clone()),
    };
    assert!(ex.exec(&assert1, &Bindings::new()).is_err());

    let rn = PhysExpr::RowNumber {
        input: Box::new(keys.clone()),
        col: ColId(96),
    };
    let out = ex.exec(&rn, &Bindings::new()).unwrap();
    assert_eq!(out.cols, vec![C_CUSTKEY, ColId(96)]);

    let sort = PhysExpr::Sort {
        input: Box::new(keys),
        by: vec![(C_CUSTKEY, false)],
    };
    let out = ex.exec(&sort, &Bindings::new()).unwrap();
    let got: Vec<&Value> = out.rows.iter().map(|r| &r[0]).collect();
    assert_eq!(got, vec![&Value::Int(1), &Value::Int(2), &Value::Int(3)]);
}

#[test]
fn compute_appends_expressions() {
    let catalog = customers_orders();
    let ex = Executor { catalog: &catalog };
    let doubled = ColId(97);
    let compute = PhysExpr::Compute {
        input: Box::new(scan_orders()),
        defs: vec![(
            doubled,
            ScalarExpr::Arith {
                op: orthopt_ir::ArithOp::Mul,
                left: Box::new(ScalarExpr::col(O_TOTALPRICE)),
                right: Box::new(ScalarExpr::lit(2.0f64)),
            },
        )],
    };
    let out = ex.exec(&compute, &Bindings::new()).unwrap();
    let pos = out.col_pos(doubled).unwrap();
    let first = out.rows.iter().find(|r| r[0] == Value::Int(10)).unwrap();
    assert_eq!(first[pos], Value::Float(200.0));
    // NULL input propagates.
    let null_row = out.rows.iter().find(|r| r[0] == Value::Int(13)).unwrap();
    assert!(null_row[pos].is_null());
}
