//! Property tests for the value system: the algebraic laws the
//! hash-based operators depend on.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use orthopt_common::Value;
use proptest::prelude::*;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(Value::Int),
        (-100i64..100).prop_map(|i| Value::Float(i as f64 / 4.0)),
        prop_oneof![
            Just(Value::Float(0.0)),
            Just(Value::Float(-0.0)),
            Just(Value::Float(f64::NAN))
        ],
        "[a-c]{0,3}".prop_map(|s| Value::str(&s)),
        (-1000i32..1000).prop_map(Value::Date),
    ]
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #[test]
    fn grouping_eq_is_reflexive(v in value()) {
        prop_assert_eq!(&v, &v);
    }

    #[test]
    fn grouping_eq_is_symmetric(a in value(), b in value()) {
        prop_assert_eq!(a == b, b == a);
    }

    #[test]
    fn eq_implies_same_hash(a in value(), b in value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn sql_eq_implies_grouping_eq(a in value(), b in value()) {
        if a.sql_eq(&b) == Some(true) {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn total_cmp_is_total_and_antisymmetric(a in value(), b in value()) {
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn total_cmp_is_transitive(a in value(), b in value(), c in value()) {
        use std::cmp::Ordering::*;
        if a.total_cmp(&b) != Greater && b.total_cmp(&c) != Greater {
            prop_assert_ne!(a.total_cmp(&c), Greater, "{:?} {:?} {:?}", a, b, c);
        }
    }

    #[test]
    fn null_comparisons_are_always_unknown(v in value()) {
        prop_assert_eq!(Value::Null.sql_eq(&v), None);
        prop_assert_eq!(v.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn arithmetic_null_propagates(v in value()) {
        if let Ok(out) = Value::Null.add(&v) {
            prop_assert!(out.is_null());
        }
        if let Ok(out) = v.mul(&Value::Null) {
            prop_assert!(out.is_null());
        }
    }

    #[test]
    fn addition_commutes_on_numerics(a in -1000i64..1000, b in -1000i64..1000) {
        let x = Value::Int(a);
        let y = Value::Float(b as f64 / 8.0);
        prop_assert_eq!(x.add(&y).unwrap(), y.add(&x).unwrap());
    }
}
