//! Edge cases of `CancellationToken::child_with_deadline`: flag sharing
//! between parent and child, deadline privacy, the deadline landing
//! exactly at check time, children outliving their parent, and
//! parent-cancel racing a child deadline.

use orthopt_common::{CancellationToken, Error};
use orthopt_synccheck::sync::thread;
use std::time::Duration;

#[test]
fn parent_cancel_trips_child_and_child_cancel_trips_parent() {
    let parent = CancellationToken::new(None);
    let child = parent.child_with_deadline(None);
    assert!(!parent.is_cancelled() && !child.is_cancelled());

    parent.cancel();
    assert!(child.is_cancelled(), "parent cancel must reach the child");
    assert!(child.check("op").is_err());

    // The flag is shared both ways: a child cancel aborts the session.
    let parent = CancellationToken::new(None);
    let child = parent.child_with_deadline(Some(Duration::from_secs(3600)));
    child.cancel();
    assert!(parent.is_cancelled(), "child cancel must reach the parent");
}

#[test]
fn child_deadline_does_not_trip_parent_or_sibling() {
    let parent = CancellationToken::new(None);
    let expired = parent.child_with_deadline(Some(Duration::ZERO));
    let sibling = parent.child_with_deadline(Some(Duration::from_secs(3600)));

    assert!(expired.is_cancelled(), "zero deadline expires immediately");
    assert!(
        !parent.is_cancelled(),
        "a query timeout must not close the session"
    );
    assert!(
        !sibling.is_cancelled(),
        "a sibling query's timeout is private to it"
    );
}

#[test]
fn deadline_exactly_at_check_time_is_cancelled() {
    // `is_cancelled` uses `now >= deadline`: a deadline of ZERO is in
    // the past (or exactly "now") by the very first check, so the
    // boundary reads as expired, never as a free pass.
    let token = CancellationToken::new(Some(Duration::ZERO));
    assert!(token.is_cancelled());
    let err = token.check("scan").expect_err("expired at check time");
    match err {
        Error::Cancelled { operator, .. } => assert_eq!(operator, "scan"),
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn check_blames_the_operator_and_reports_elapsed() {
    let token = CancellationToken::new(Some(Duration::from_millis(1)));
    std::thread::sleep(Duration::from_millis(5));
    match token.check("admission") {
        Err(Error::Cancelled {
            operator,
            elapsed_ms,
        }) => {
            assert_eq!(operator, "admission");
            assert!(elapsed_ms >= 1, "elapsed must cover the deadline wait");
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
}

#[test]
fn child_outlives_dropped_parent() {
    // A session closing (its token dropped) must not invalidate an
    // in-flight query's child token: the shared flag is refcounted.
    let child = {
        let parent = CancellationToken::new(None);
        parent.child_with_deadline(Some(Duration::from_secs(3600)))
    };
    assert!(!child.is_cancelled());
    assert!(child.check("op").is_ok());
    child.cancel();
    assert!(child.is_cancelled());
}

#[test]
fn child_of_closed_session_token_starts_cancelled() {
    let parent = CancellationToken::new(None);
    parent.cancel(); // session closed
    let child = parent.child_with_deadline(Some(Duration::from_secs(3600)));
    assert!(
        child.is_cancelled(),
        "a query issued after close must be refused from the start"
    );
}

#[test]
fn child_of_inert_token_is_a_plain_deadline_token() {
    let inert = CancellationToken::default();
    assert!(!inert.is_cancelled());

    let child = inert.child_with_deadline(Some(Duration::ZERO));
    assert!(child.is_cancelled(), "the deadline still applies");
    // The derived flag is fresh, not shared with the inert parent...
    assert!(!inert.is_cancelled());

    // ...and a cancel on an inert-derived child stays local.
    let unbounded = inert.child_with_deadline(None);
    unbounded.cancel();
    assert!(unbounded.is_cancelled());
    assert!(!inert.is_cancelled(), "inert tokens are never cancelled");
}

#[test]
fn clone_and_child_share_one_flag_across_threads() {
    let parent = CancellationToken::new(None);
    let child = parent.child_with_deadline(None);
    let canceller = {
        let handle = parent.clone();
        thread::spawn(move || handle.cancel())
    };
    canceller.join().expect("canceller thread");
    assert!(parent.is_cancelled());
    assert!(child.is_cancelled());
}

#[test]
fn parent_cancel_racing_child_deadline_always_cancels_both() {
    // The two trip paths race: whichever lands, the child is cancelled
    // and the *parent* is only tripped by the explicit cancel, never by
    // the child's deadline.
    let parent = CancellationToken::new(None);
    let child = parent.child_with_deadline(Some(Duration::from_millis(2)));
    let racer = {
        let handle = parent.clone();
        thread::spawn(move || handle.cancel())
    };
    std::thread::sleep(Duration::from_millis(5));
    racer.join().expect("racing canceller");
    assert!(child.is_cancelled(), "deadline and cancel both tripped it");
    assert!(
        parent.is_cancelled(),
        "the explicit cancel tripped the parent"
    );

    // Counter-case: the deadline fires and no one cancels — the parent
    // must stay live.
    let parent = CancellationToken::new(None);
    let child = parent.child_with_deadline(Some(Duration::from_millis(1)));
    std::thread::sleep(Duration::from_millis(5));
    assert!(child.is_cancelled());
    assert!(!parent.is_cancelled());
}
