//! Per-query runtime resource governance: memory budgets and
//! cooperative cancellation.
//!
//! A [`QueryContext`] is the per-query root of governance state. It is
//! cheap to clone (two `Option<Arc<..>>`s) and is threaded through the
//! executor so every buffering operator can carve a [`MemoryReservation`]
//! out of the shared [`MemoryPool`] and every `next_batch` boundary can
//! poll the [`CancellationToken`].
//!
//! The default context is *ungoverned*: no pool, no token. In that state
//! `MemoryReservation::grow` is a branch on a `None` and
//! `CancellationToken::check` is a branch on a `None` — no atomics touch
//! the hot path, which is how the ≤2 % governor-off overhead budget is
//! met (same gating pattern as the plancheck runtime switch).

use crate::error::{Error, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared per-query byte budget. All reservations of one query charge
/// the same pool, so the limit bounds the *sum* of live buffered bytes
/// across operators (and across worker threads — the counters are
/// atomic precisely so morsel workers can charge concurrently).
#[derive(Debug)]
pub struct MemoryPool {
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryPool {
    fn new(limit: u64) -> Self {
        MemoryPool {
            limit,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Attempts to reserve `bytes` for `operator`. On refusal the pool
    /// is left unchanged and the returned error carries the structured
    /// blame fields.
    fn grow(&self, operator: &str, bytes: u64) -> Result<()> {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if now > self.limit {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(Error::ResourceExhausted {
                operator: operator.to_string(),
                requested: bytes,
                limit: self.limit,
            });
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    fn shrink(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured budget.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// A per-operator handle on the query's [`MemoryPool`].
///
/// Buffering operators create one in `open` (naming themselves for
/// blame), call [`grow`](MemoryReservation::grow) as their buffers fill,
/// and release everything either explicitly via
/// [`reset`](MemoryReservation::reset) or implicitly on drop. The handle
/// additionally tracks its own local peak so `OpStats` can report
/// per-operator memory even though the pool only knows the query total.
#[derive(Debug, Default)]
pub struct MemoryReservation {
    pool: Option<Arc<MemoryPool>>,
    operator: &'static str,
    held: u64,
    peak: u64,
}

impl MemoryReservation {
    /// A reservation attached to no pool: `grow` always succeeds and
    /// only maintains the local `held`/`peak` counters.
    pub fn detached(operator: &'static str) -> Self {
        MemoryReservation {
            pool: None,
            operator,
            held: 0,
            peak: 0,
        }
    }

    /// Charges `bytes` against the query budget; refuses with
    /// [`Error::ResourceExhausted`] when the pool would exceed its limit.
    pub fn grow(&mut self, bytes: u64) -> Result<()> {
        if bytes == 0 {
            return Ok(());
        }
        if let Some(pool) = &self.pool {
            pool.grow(self.operator, bytes)?;
        }
        self.held += bytes;
        if self.held > self.peak {
            self.peak = self.held;
        }
        Ok(())
    }

    /// Returns `bytes` to the pool (e.g. a cache being shed).
    pub fn shrink(&mut self, bytes: u64) {
        let bytes = bytes.min(self.held);
        if let Some(pool) = &self.pool {
            pool.shrink(bytes);
        }
        self.held -= bytes;
    }

    /// Releases everything held while keeping the recorded peak; used
    /// when an operator drops its buffers on `close`/rewind.
    pub fn reset(&mut self) {
        let held = self.held;
        self.shrink(held);
    }

    /// Bytes currently held by this reservation.
    pub fn held(&self) -> u64 {
        self.held
    }

    /// This reservation's own high-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// The blame label this reservation charges under.
    pub fn operator(&self) -> &'static str {
        self.operator
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.reset();
    }
}

#[derive(Debug)]
struct CancelState {
    flag: AtomicBool,
    deadline: Option<Instant>,
    started: Instant,
}

/// Cooperative cancellation handle, polled at operator batch boundaries
/// and morsel boundaries. Cloning shares the underlying flag, so a
/// caller can keep one clone and `cancel` a query mid-flight from
/// another thread.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    inner: Option<Arc<CancelState>>,
}

impl CancellationToken {
    /// A token that can be triggered via [`cancel`](Self::cancel),
    /// with an optional deadline after which checks fail on their own.
    pub fn new(deadline: Option<Duration>) -> Self {
        let started = Instant::now();
        CancellationToken {
            inner: Some(Arc::new(CancelState {
                flag: AtomicBool::new(false),
                deadline: deadline.map(|d| started + d),
                started,
            })),
        }
    }

    /// Requests cancellation; every subsequent [`check`](Self::check)
    /// on any clone fails.
    pub fn cancel(&self) {
        if let Some(s) = &self.inner {
            s.flag.store(true, Ordering::Relaxed);
        }
    }

    /// True once [`cancel`](Self::cancel) was called or the deadline
    /// passed. Inert tokens are never cancelled.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(s) => {
                s.flag.load(Ordering::Relaxed) || s.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Fails with [`Error::Cancelled`] (blaming `operator`) once the
    /// token fired or its deadline expired. Inert tokens never fail and
    /// cost a single `Option` test.
    pub fn check(&self, operator: &str) -> Result<()> {
        let Some(s) = &self.inner else { return Ok(()) };
        let tripped =
            s.flag.load(Ordering::Relaxed) || s.deadline.is_some_and(|d| Instant::now() >= d);
        if tripped {
            return Err(Error::Cancelled {
                operator: operator.to_string(),
                elapsed_ms: u64::try_from(s.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            });
        }
        Ok(())
    }
}

/// Per-query governance root: an optional memory budget plus an optional
/// cancellation token. `Default` is fully ungoverned.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    pool: Option<Arc<MemoryPool>>,
    cancel: CancellationToken,
}

impl QueryContext {
    /// Ungoverned context — no budget, no cancellation.
    pub fn new() -> Self {
        QueryContext::default()
    }

    /// Installs a fresh memory pool limited to `bytes`.
    #[must_use]
    pub fn with_memory_limit(mut self, bytes: u64) -> Self {
        self.pool = Some(Arc::new(MemoryPool::new(bytes)));
        self
    }

    /// Installs a cancellation token that trips after `timeout`.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.cancel = CancellationToken::new(Some(timeout));
        self
    }

    /// Installs a manually triggered cancellation token; grab a clone of
    /// [`cancel_token`](Self::cancel_token) to fire it from elsewhere.
    #[must_use]
    pub fn with_cancellation(mut self) -> Self {
        self.cancel = CancellationToken::new(None);
        self
    }

    /// Installs an externally created token (e.g. shared across queries).
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancellationToken) -> Self {
        self.cancel = token;
        self
    }

    /// True when either a budget or a live cancellation token is set.
    pub fn is_governed(&self) -> bool {
        self.pool.is_some() || self.cancel.inner.is_some()
    }

    /// A new reservation charging this context's pool under `operator`.
    pub fn reservation(&self, operator: &'static str) -> MemoryReservation {
        MemoryReservation {
            pool: self.pool.clone(),
            operator,
            held: 0,
            peak: 0,
        }
    }

    /// Polls the cancellation token, blaming `operator` on failure.
    pub fn check_cancelled(&self, operator: &str) -> Result<()> {
        self.cancel.check(operator)
    }

    /// The cancel handle (clone to cancel from another thread).
    pub fn cancel_token(&self) -> &CancellationToken {
        &self.cancel
    }

    /// Bytes currently reserved across the query, if budgeted.
    pub fn mem_used(&self) -> Option<u64> {
        self.pool.as_ref().map(|p| p.used())
    }

    /// Query-wide peak reserved bytes, if budgeted.
    pub fn mem_peak(&self) -> Option<u64> {
        self.pool.as_ref().map(|p| p.peak())
    }

    /// The configured budget, if any.
    pub fn mem_limit(&self) -> Option<u64> {
        self.pool.as_ref().map(|p| p.limit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungoverned_grow_and_check_never_fail() {
        let ctx = QueryContext::new();
        assert!(!ctx.is_governed());
        let mut r = ctx.reservation("Sort");
        r.grow(u64::MAX / 2).expect("no pool, no limit");
        r.grow(u64::MAX / 2).expect("no pool, no limit");
        assert!(ctx.check_cancelled("Sort").is_ok());
        assert_eq!(ctx.mem_peak(), None);
    }

    #[test]
    fn budget_trips_with_blame_and_releases() {
        let ctx = QueryContext::new().with_memory_limit(100);
        let mut a = ctx.reservation("HashJoin");
        let mut b = ctx.reservation("Sort");
        a.grow(60).expect("within budget");
        b.grow(30).expect("within budget");
        let err = b.grow(20).expect_err("over budget");
        assert_eq!(
            err,
            Error::ResourceExhausted {
                operator: "Sort".into(),
                requested: 20,
                limit: 100
            }
        );
        // Refused request must not leak into the pool.
        assert_eq!(ctx.mem_used(), Some(90));
        drop(a);
        assert_eq!(ctx.mem_used(), Some(30));
        b.grow(20).expect("fits after release");
        assert_eq!(ctx.mem_peak(), Some(90));
        drop(b);
        assert_eq!(ctx.mem_used(), Some(0));
    }

    #[test]
    fn reset_keeps_local_peak() {
        let ctx = QueryContext::new().with_memory_limit(1000);
        let mut r = ctx.reservation("Cache");
        r.grow(400).expect("within budget");
        r.reset();
        assert_eq!(r.held(), 0);
        assert_eq!(r.peak(), 400);
        assert_eq!(ctx.mem_used(), Some(0));
        assert_eq!(ctx.mem_peak(), Some(400));
    }

    #[test]
    fn manual_cancellation_fires_on_clones() {
        let ctx = QueryContext::new().with_cancellation();
        let handle = ctx.cancel_token().clone();
        assert!(ctx.check_cancelled("Scan").is_ok());
        handle.cancel();
        let err = ctx.check_cancelled("Scan").expect_err("cancelled");
        assert!(matches!(err, Error::Cancelled { ref operator, .. } if operator == "Scan"));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let ctx = QueryContext::new().with_timeout(Duration::ZERO);
        assert!(ctx.check_cancelled("Scan").is_err());
    }
}
