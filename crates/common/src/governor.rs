//! Per-query runtime resource governance: memory budgets and
//! cooperative cancellation.
//!
//! A [`QueryContext`] is the per-query root of governance state. It is
//! cheap to clone (two `Option<Arc<..>>`s) and is threaded through the
//! executor so every buffering operator can carve a [`MemoryReservation`]
//! out of the shared [`MemoryPool`] and every `next_batch` boundary can
//! poll the [`CancellationToken`].
//!
//! The default context is *ungoverned*: no pool, no token. In that state
//! `MemoryReservation::grow` is a branch on a `None` and
//! `CancellationToken::check` is a branch on a `None` — no atomics touch
//! the hot path, which is how the ≤2 % governor-off overhead budget is
//! met (same gating pattern as the plancheck runtime switch).

use crate::error::{Error, Result};
use orthopt_synccheck::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use orthopt_synccheck::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared per-query byte budget. All reservations of one query charge
/// the same pool, so the limit bounds the *sum* of live buffered bytes
/// across operators (and across worker threads — the counters are
/// atomic precisely so morsel workers can charge concurrently).
#[derive(Debug)]
pub struct MemoryPool {
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryPool {
    fn new(limit: u64) -> Self {
        MemoryPool {
            limit,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Attempts to reserve `bytes` for `operator`. On refusal the pool
    /// is left unchanged and the returned error carries the structured
    /// blame fields.
    fn grow(&self, operator: &str, bytes: u64) -> Result<()> {
        // relaxed-ok: used/peak are plain counters; no other memory is
        // published through them, and over-limit overshoot rolls back.
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if now > self.limit {
            // relaxed-ok: rollback of the counter charged above.
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(Error::ResourceExhausted {
                operator: operator.to_string(),
                requested: bytes,
                limit: self.limit,
                hint: None,
            });
        }
        // relaxed-ok: peak is monotonic telemetry, read after quiescence.
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(())
    }

    fn shrink(&self, bytes: u64) {
        // relaxed-ok: counter-only release; see grow.
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        // relaxed-ok: monitoring read of a counter.
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        // relaxed-ok: monitoring read of a counter.
        self.peak.load(Ordering::Relaxed)
    }

    /// The configured budget.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// A per-operator handle on the query's [`MemoryPool`].
///
/// Buffering operators create one in `open` (naming themselves for
/// blame), call [`grow`](MemoryReservation::grow) as their buffers fill,
/// and release everything either explicitly via
/// [`reset`](MemoryReservation::reset) or implicitly on drop. The handle
/// additionally tracks its own local peak so `OpStats` can report
/// per-operator memory even though the pool only knows the query total.
#[derive(Debug, Default)]
pub struct MemoryReservation {
    pool: Option<Arc<MemoryPool>>,
    operator: &'static str,
    held: u64,
    peak: u64,
}

impl MemoryReservation {
    /// A reservation attached to no pool: `grow` always succeeds and
    /// only maintains the local `held`/`peak` counters.
    pub fn detached(operator: &'static str) -> Self {
        MemoryReservation {
            pool: None,
            operator,
            held: 0,
            peak: 0,
        }
    }

    /// Charges `bytes` against the query budget; refuses with
    /// [`Error::ResourceExhausted`] when the pool would exceed its limit.
    pub fn grow(&mut self, bytes: u64) -> Result<()> {
        if bytes == 0 {
            return Ok(());
        }
        if let Some(pool) = &self.pool {
            pool.grow(self.operator, bytes)?;
        }
        self.held += bytes;
        if self.held > self.peak {
            self.peak = self.held;
        }
        Ok(())
    }

    /// Returns `bytes` to the pool (e.g. a cache being shed).
    pub fn shrink(&mut self, bytes: u64) {
        let bytes = bytes.min(self.held);
        if let Some(pool) = &self.pool {
            pool.shrink(bytes);
        }
        self.held -= bytes;
    }

    /// Releases everything held while keeping the recorded peak; used
    /// when an operator drops its buffers on `close`/rewind.
    pub fn reset(&mut self) {
        let held = self.held;
        self.shrink(held);
    }

    /// Bytes currently held by this reservation.
    pub fn held(&self) -> u64 {
        self.held
    }

    /// This reservation's own high-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// The blame label this reservation charges under.
    pub fn operator(&self) -> &'static str {
        self.operator
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        self.reset();
    }
}

#[derive(Debug)]
struct CancelState {
    /// Shared between a token and its children ([`CancellationToken::
    /// child_with_deadline`]), so cancelling a session-scoped parent
    /// trips every per-query child too.
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
    started: Instant,
}

/// Cooperative cancellation handle, polled at operator batch boundaries
/// and morsel boundaries. Cloning shares the underlying flag, so a
/// caller can keep one clone and `cancel` a query mid-flight from
/// another thread.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    inner: Option<Arc<CancelState>>,
}

impl CancellationToken {
    /// A token that can be triggered via [`cancel`](Self::cancel),
    /// with an optional deadline after which checks fail on their own.
    pub fn new(deadline: Option<Duration>) -> Self {
        let started = Instant::now();
        CancellationToken {
            inner: Some(Arc::new(CancelState {
                flag: Arc::new(AtomicBool::new(false)),
                deadline: deadline.map(|d| started + d),
                started,
            })),
        }
    }

    /// Derives a child token sharing this token's cancellation flag but
    /// carrying its own deadline and elapsed-time origin. Cancelling
    /// either the parent or the child trips both; the child's deadline
    /// trips only the child. A session uses this to give each query a
    /// private timeout while a single session-level `cancel` (connection
    /// dropped, session closed) still aborts whatever is in flight.
    /// Deriving from an inert token yields a plain deadline token.
    #[must_use]
    pub fn child_with_deadline(&self, deadline: Option<Duration>) -> CancellationToken {
        let started = Instant::now();
        let flag = match &self.inner {
            Some(s) => Arc::clone(&s.flag),
            None => Arc::new(AtomicBool::new(false)),
        };
        CancellationToken {
            inner: Some(Arc::new(CancelState {
                flag,
                deadline: deadline.map(|d| started + d),
                started,
            })),
        }
    }

    /// Requests cancellation; every subsequent [`check`](Self::check)
    /// on any clone fails.
    pub fn cancel(&self) {
        if let Some(s) = &self.inner {
            // relaxed-ok: a monotonic bool; observers act on the flag
            // alone and read no memory published alongside it.
            s.flag.store(true, Ordering::Relaxed);
        }
    }

    /// True once [`cancel`](Self::cancel) was called or the deadline
    /// passed. Inert tokens are never cancelled.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(s) => {
                // relaxed-ok: see cancel(); staleness only delays the stop
                // by one poll interval.
                s.flag.load(Ordering::Relaxed) || s.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Fails with [`Error::Cancelled`] (blaming `operator`) once the
    /// token fired or its deadline expired. Inert tokens never fail and
    /// cost a single `Option` test.
    pub fn check(&self, operator: &str) -> Result<()> {
        let Some(s) = &self.inner else { return Ok(()) };
        let tripped =
            // relaxed-ok: see cancel(); staleness only delays the stop
            // by one poll interval.
            s.flag.load(Ordering::Relaxed) || s.deadline.is_some_and(|d| Instant::now() >= d);
        if tripped {
            return Err(Error::Cancelled {
                operator: operator.to_string(),
                elapsed_ms: u64::try_from(s.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            });
        }
        Ok(())
    }
}

/// Per-query governance root: an optional memory budget plus an optional
/// cancellation token. `Default` is fully ungoverned.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    pool: Option<Arc<MemoryPool>>,
    cancel: CancellationToken,
}

impl QueryContext {
    /// Ungoverned context — no budget, no cancellation.
    pub fn new() -> Self {
        QueryContext::default()
    }

    /// Installs a fresh memory pool limited to `bytes`.
    #[must_use]
    pub fn with_memory_limit(mut self, bytes: u64) -> Self {
        self.pool = Some(Arc::new(MemoryPool::new(bytes)));
        self
    }

    /// Installs a cancellation token that trips after `timeout`.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.cancel = CancellationToken::new(Some(timeout));
        self
    }

    /// Installs a manually triggered cancellation token; grab a clone of
    /// [`cancel_token`](Self::cancel_token) to fire it from elsewhere.
    #[must_use]
    pub fn with_cancellation(mut self) -> Self {
        self.cancel = CancellationToken::new(None);
        self
    }

    /// Installs an externally created token (e.g. shared across queries).
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancellationToken) -> Self {
        self.cancel = token;
        self
    }

    /// True when either a budget or a live cancellation token is set.
    pub fn is_governed(&self) -> bool {
        self.pool.is_some() || self.cancel.inner.is_some()
    }

    /// A new reservation charging this context's pool under `operator`.
    pub fn reservation(&self, operator: &'static str) -> MemoryReservation {
        MemoryReservation {
            pool: self.pool.clone(),
            operator,
            held: 0,
            peak: 0,
        }
    }

    /// Polls the cancellation token, blaming `operator` on failure.
    pub fn check_cancelled(&self, operator: &str) -> Result<()> {
        self.cancel.check(operator)
    }

    /// The cancel handle (clone to cancel from another thread).
    pub fn cancel_token(&self) -> &CancellationToken {
        &self.cancel
    }

    /// Bytes currently reserved across the query, if budgeted.
    pub fn mem_used(&self) -> Option<u64> {
        self.pool.as_ref().map(|p| p.used())
    }

    /// Query-wide peak reserved bytes, if budgeted.
    pub fn mem_peak(&self) -> Option<u64> {
        self.pool.as_ref().map(|p| p.peak())
    }

    /// The configured budget, if any.
    pub fn mem_limit(&self) -> Option<u64> {
        self.pool.as_ref().map(|p| p.limit())
    }
}

// ---------------------------------------------------------------------
// Global admission control.
// ---------------------------------------------------------------------

/// Counters describing an [`AdmissionController`]'s history, for
/// observability and the admission conformance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted (immediately or after queueing).
    pub admitted: u64,
    /// Queries that had to wait for capacity before admission.
    pub queued: u64,
    /// Queries refused because the wait queue was full (or the request
    /// could never fit the global limit).
    pub shed: u64,
}

#[derive(Debug, Default)]
struct AdmitState {
    /// Bytes currently granted to admitted queries.
    used: u64,
    /// Queries blocked waiting for capacity.
    waiting: usize,
}

/// Engine-global memory pool with admission control, shared across
/// sessions.
///
/// Where the per-query [`MemoryPool`] bounds one query's live buffered
/// bytes, the controller bounds the *sum of per-query budgets across
/// every query in flight*: a query declares its budget up front and is
/// admitted only when the aggregate fits the global limit. The grant is
/// the query's child reservation of the global pool — the per-query
/// `MemoryPool` then operates entirely within it, so execution never
/// touches the global lock.
///
/// When aggregate demand exceeds the limit, new queries *queue* (bounded
/// FIFO-by-wakeup, `max_queue` deep) rather than fail; only when the
/// queue itself is full — or the request alone exceeds the global limit —
/// is the query shed with [`Error::ResourceExhausted`] blaming
/// `"admission"`. Dropping the returned [`AdmissionGuard`] releases the
/// grant and wakes waiters.
#[derive(Debug)]
pub struct AdmissionController {
    limit: u64,
    max_queue: usize,
    state: Mutex<AdmitState>,
    cv: Condvar,
    peak: AtomicU64,
    admitted: AtomicU64,
    queued: AtomicU64,
    shed: AtomicU64,
}

impl AdmissionController {
    /// A controller enforcing `limit` total granted bytes, queueing at
    /// most `max_queue` queries before shedding.
    pub fn new(limit: u64, max_queue: usize) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            limit,
            max_queue,
            state: Mutex::new(AdmitState::default()),
            cv: Condvar::new(),
            peak: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        })
    }

    /// Admits a query needing `bytes` of budget, blocking in the bounded
    /// queue while aggregate demand exceeds the global limit. Returns the
    /// grant as a guard whose drop releases it. Sheds — fails with
    /// [`Error::ResourceExhausted`] blaming `"admission"` — when the
    /// queue is full or `bytes` alone exceeds the limit. `cancel` is
    /// polled while queued, so a session torn down mid-wait leaves the
    /// queue promptly with [`Error::Cancelled`].
    pub fn admit(
        self: &Arc<Self>,
        bytes: u64,
        cancel: &CancellationToken,
    ) -> Result<AdmissionGuard> {
        let shed = |requested: u64| {
            // relaxed-ok: lifetime telemetry counter; no memory is
            // published through it.
            self.shed.fetch_add(1, Ordering::Relaxed);
            Err(Error::ResourceExhausted {
                operator: "admission".to_string(),
                requested,
                limit: self.limit,
                hint: Some("raise ORTHOPT_GLOBAL_MEM_LIMIT or deepen the admission queue"),
            })
        };
        if bytes > self.limit {
            return shed(bytes);
        }
        let mut st = self.state.lock();
        if st.used + bytes > self.limit {
            if st.waiting >= self.max_queue {
                return shed(bytes);
            }
            st.waiting += 1;
            // relaxed-ok: telemetry counter, see shed above.
            self.queued.fetch_add(1, Ordering::Relaxed);
            loop {
                // Timed wait so session cancellation is observed even if
                // no release ever happens.
                let (guard, _) = self.cv.wait_timeout(st, Duration::from_millis(20));
                st = guard;
                if cancel.is_cancelled() {
                    st.waiting -= 1;
                    drop(st);
                    cancel.check("admission")?;
                    return Err(Error::Cancelled {
                        operator: "admission".to_string(),
                        elapsed_ms: 0,
                    });
                }
                if st.used + bytes <= self.limit {
                    st.waiting -= 1;
                    break;
                }
            }
        }
        st.used += bytes;
        // relaxed-ok: peak/admitted are telemetry; the grant itself is
        // ordered by the state lock held here.
        self.peak.fetch_max(st.used, Ordering::Relaxed);
        // relaxed-ok: see above.
        self.admitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        Ok(AdmissionGuard {
            ctrl: Arc::clone(self),
            bytes,
        })
    }

    /// Bytes currently granted to admitted queries.
    pub fn used(&self) -> u64 {
        self.state.lock().used
    }

    /// High-water mark of granted bytes (never exceeds the limit).
    pub fn peak(&self) -> u64 {
        // relaxed-ok: telemetry read; exact only after quiescence.
        self.peak.load(Ordering::Relaxed)
    }

    /// The global budget.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Queries currently waiting in the admission queue.
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting
    }

    /// Lifetime admitted/queued/shed counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            // relaxed-ok: telemetry reads; exact only after quiescence.
            admitted: self.admitted.load(Ordering::Relaxed),
            // relaxed-ok: see above.
            queued: self.queued.load(Ordering::Relaxed),
            // relaxed-ok: see above.
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// A query's grant from the global [`AdmissionController`]: holds
/// `bytes` of the global budget until dropped, then releases them and
/// wakes queued queries.
#[derive(Debug)]
pub struct AdmissionGuard {
    ctrl: Arc<AdmissionController>,
    bytes: u64,
}

impl AdmissionGuard {
    /// The granted byte budget — what the query's own [`MemoryPool`]
    /// should be limited to.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut st = self.ctrl.state.lock();
        st.used = st.used.saturating_sub(self.bytes);
        drop(st);
        self.ctrl.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orthopt_synccheck::sync::thread;

    #[test]
    fn ungoverned_grow_and_check_never_fail() {
        let ctx = QueryContext::new();
        assert!(!ctx.is_governed());
        let mut r = ctx.reservation("Sort");
        r.grow(u64::MAX / 2).expect("no pool, no limit");
        r.grow(u64::MAX / 2).expect("no pool, no limit");
        assert!(ctx.check_cancelled("Sort").is_ok());
        assert_eq!(ctx.mem_peak(), None);
    }

    #[test]
    fn budget_trips_with_blame_and_releases() {
        let ctx = QueryContext::new().with_memory_limit(100);
        let mut a = ctx.reservation("HashJoin");
        let mut b = ctx.reservation("Sort");
        a.grow(60).expect("within budget");
        b.grow(30).expect("within budget");
        let err = b.grow(20).expect_err("over budget");
        assert_eq!(
            err,
            Error::ResourceExhausted {
                operator: "Sort".into(),
                requested: 20,
                limit: 100,
                hint: None
            }
        );
        // Refused request must not leak into the pool.
        assert_eq!(ctx.mem_used(), Some(90));
        drop(a);
        assert_eq!(ctx.mem_used(), Some(30));
        b.grow(20).expect("fits after release");
        assert_eq!(ctx.mem_peak(), Some(90));
        drop(b);
        assert_eq!(ctx.mem_used(), Some(0));
    }

    #[test]
    fn reset_keeps_local_peak() {
        let ctx = QueryContext::new().with_memory_limit(1000);
        let mut r = ctx.reservation("Cache");
        r.grow(400).expect("within budget");
        r.reset();
        assert_eq!(r.held(), 0);
        assert_eq!(r.peak(), 400);
        assert_eq!(ctx.mem_used(), Some(0));
        assert_eq!(ctx.mem_peak(), Some(400));
    }

    #[test]
    fn manual_cancellation_fires_on_clones() {
        let ctx = QueryContext::new().with_cancellation();
        let handle = ctx.cancel_token().clone();
        assert!(ctx.check_cancelled("Scan").is_ok());
        handle.cancel();
        let err = ctx.check_cancelled("Scan").expect_err("cancelled");
        assert!(matches!(err, Error::Cancelled { ref operator, .. } if operator == "Scan"));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let ctx = QueryContext::new().with_timeout(Duration::ZERO);
        assert!(ctx.check_cancelled("Scan").is_err());
    }

    #[test]
    fn child_token_trips_on_parent_cancel_but_not_vice_versa() {
        let parent = CancellationToken::new(None);
        let child = parent.child_with_deadline(None);
        assert!(child.check("Scan").is_ok());
        parent.cancel();
        assert!(child.check("Scan").is_err());
        assert!(parent.check("Session").is_err());

        let parent2 = CancellationToken::new(None);
        let child2 = parent2.child_with_deadline(Some(Duration::ZERO));
        assert!(child2.check("Scan").is_err(), "child deadline trips child");
        assert!(parent2.check("Session").is_ok(), "parent unaffected");
    }

    #[test]
    fn admission_grants_within_limit_and_sheds_when_queue_full() {
        let ctrl = AdmissionController::new(100, 0);
        let inert = CancellationToken::default();
        let a = ctrl.admit(60, &inert).expect("fits");
        let b = ctrl.admit(40, &inert).expect("fits exactly");
        assert_eq!(ctrl.used(), 100);
        // Queue depth 0: a third query sheds instead of waiting.
        let err = ctrl.admit(10, &inert).expect_err("queue full");
        assert_eq!(
            err,
            Error::ResourceExhausted {
                operator: "admission".into(),
                requested: 10,
                limit: 100,
                hint: Some("raise ORTHOPT_GLOBAL_MEM_LIMIT or deepen the admission queue"),
            }
        );
        drop(a);
        let c = ctrl.admit(10, &inert).expect("fits after release");
        assert_eq!(ctrl.used(), 50);
        drop(b);
        drop(c);
        assert_eq!(ctrl.used(), 0);
        assert_eq!(ctrl.peak(), 100);
        let s = ctrl.stats();
        assert_eq!((s.admitted, s.queued, s.shed), (3, 0, 1));
    }

    #[test]
    fn admission_oversized_request_sheds_immediately() {
        let ctrl = AdmissionController::new(100, 8);
        let err = ctrl
            .admit(101, &CancellationToken::default())
            .expect_err("can never fit");
        assert!(matches!(err, Error::ResourceExhausted { .. }));
        assert_eq!(ctrl.stats().shed, 1);
    }

    #[test]
    fn admission_queues_until_capacity_frees() {
        let ctrl = AdmissionController::new(100, 4);
        let inert = CancellationToken::default();
        let first = ctrl.admit(100, &inert).expect("fits");
        let ctrl2 = Arc::clone(&ctrl);
        let waiter = thread::spawn(move || {
            ctrl2
                .admit(100, &CancellationToken::default())
                .expect("queued, then admitted")
        });
        // Give the waiter time to enter the queue, then release.
        while ctrl.waiting() == 0 {
            std::thread::yield_now();
        }
        drop(first);
        let guard = waiter.join().expect("waiter thread");
        assert_eq!(guard.bytes(), 100);
        let s = ctrl.stats();
        assert_eq!((s.admitted, s.queued, s.shed), (2, 1, 0));
    }

    #[test]
    fn queued_admission_observes_cancellation() {
        let ctrl = AdmissionController::new(100, 4);
        let _hold = ctrl
            .admit(100, &CancellationToken::default())
            .expect("fits");
        let cancel = CancellationToken::new(None);
        let handle = cancel.clone();
        let ctrl2 = Arc::clone(&ctrl);
        let waiter = thread::spawn(move || ctrl2.admit(50, &cancel));
        while ctrl.waiting() == 0 {
            std::thread::yield_now();
        }
        handle.cancel();
        let err = waiter.join().expect("thread").expect_err("cancelled");
        assert!(matches!(err, Error::Cancelled { ref operator, .. } if operator == "admission"));
        assert_eq!(ctrl.waiting(), 0, "queue slot released");
    }
}
