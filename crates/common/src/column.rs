//! Typed column vectors with null bitmaps — the columnar half of the
//! execution engine's batch representation.
//!
//! A [`Column`] is an immutable, shareable slice over typed value
//! storage ([`ColData`]) plus an Arrow-style validity [`Bitmap`]
//! (bit set = value present, bit clear = SQL NULL). Columns are cheap
//! to slice (`Arc` clone + offset arithmetic), so table scans can hand
//! out windows over resident column data without touching the values.
//!
//! The representation is deliberately lossless with respect to the
//! row engine: [`Column::value`] reconstructs exactly the [`Value`]
//! that a row pipeline would have carried, and [`cols_bytes`] charges
//! exactly what [`crate::row::rows_bytes`] charges for the equivalent
//! rows, so the memory governor's thresholds do not shift between the
//! row and columnar paths (see the parity test below).

use std::sync::Arc;

use crate::row::Row;
use crate::value::{DataType, Value};

/// Validity bitmap: bit set ⇒ value present, bit clear ⇒ NULL.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    /// Number of clear (NULL) bits — lets `all_valid` answer in O(1).
    nulls: usize,
}

impl Bitmap {
    /// An all-valid bitmap of the given length.
    pub fn new_valid(len: usize) -> Bitmap {
        Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
            nulls: 0,
        }
    }

    /// Builds a bitmap from per-position validity flags.
    pub fn from_flags(flags: impl IntoIterator<Item = bool>) -> Bitmap {
        let mut b = Bitmap {
            words: Vec::new(),
            len: 0,
            nulls: 0,
        };
        for f in flags {
            b.push(f);
        }
        b
    }

    /// Appends one validity flag.
    pub fn push(&mut self, valid: bool) {
        let (w, bit) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[w] |= 1u64 << bit;
        } else {
            self.nulls += 1;
        }
        self.len += 1;
    }

    /// Whether position `i` holds a value (not NULL).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when no position is NULL — kernels use this to skip
    /// per-lane validity branches entirely.
    pub fn all_valid(&self) -> bool {
        self.nulls == 0
    }

    /// Number of NULL positions.
    pub fn null_count(&self) -> usize {
        self.nulls
    }
}

/// Typed value storage for one column.
///
/// Each variant stores the non-NULL payload inline; NULL positions hold
/// an arbitrary placeholder and are masked by the validity bitmap. The
/// [`Val`](ColData::Val) fallback keeps untypeable columns (mixed
/// `Int`/`Float` arithmetic results, heterogeneous constants) exact —
/// it stores `Value`s verbatim so no information is lost relative to
/// the row representation.
#[derive(Debug, Clone, PartialEq)]
pub enum ColData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Strings (shared payloads).
    Str(Vec<Arc<str>>),
    /// Dates as days since the epoch.
    Date(Vec<i32>),
    /// Fallback: verbatim values (mixed or untypeable columns).
    Val(Vec<Value>),
}

impl ColData {
    fn len(&self) -> usize {
        match self {
            ColData::Int(v) => v.len(),
            ColData::Float(v) => v.len(),
            ColData::Bool(v) => v.len(),
            ColData::Str(v) => v.len(),
            ColData::Date(v) => v.len(),
            ColData::Val(v) => v.len(),
        }
    }
}

/// Owned column storage: typed data plus validity.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnData {
    /// Typed payload.
    pub data: ColData,
    /// Validity bitmap (bit set = present).
    pub validity: Bitmap,
}

/// An immutable, shareable window over a [`ColumnData`].
///
/// Cloning and [slicing](Column::slice) are O(1) (`Arc` clone plus
/// offset arithmetic), which is what makes columnar scans zero-copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: Arc<ColumnData>,
    offset: usize,
    len: usize,
}

impl Column {
    /// Wraps owned column storage as a full-length column.
    pub fn from_data(data: ColumnData) -> Column {
        debug_assert_eq!(data.data.len(), data.validity.len());
        let len = data.validity.len();
        Column {
            data: Arc::new(data),
            offset: 0,
            len,
        }
    }

    /// Builds a column from values, choosing a typed representation
    /// when every non-NULL value shares one [`DataType`] and falling
    /// back to [`ColData::Val`] otherwise.
    pub fn from_values(vals: Vec<Value>) -> Column {
        let mut ty: Option<DataType> = None;
        let mut uniform = true;
        for v in &vals {
            if let Some(t) = v.data_type() {
                match ty {
                    None => ty = Some(t),
                    Some(prev) if prev != t => {
                        uniform = false;
                        break;
                    }
                    Some(_) => {}
                }
            }
        }
        let validity = Bitmap::from_flags(vals.iter().map(|v| !v.is_null()));
        let data = match (uniform, ty) {
            (true, Some(DataType::Int)) => ColData::Int(
                vals.iter()
                    .map(|v| if let Value::Int(i) = v { *i } else { 0 })
                    .collect(),
            ),
            (true, Some(DataType::Float)) => ColData::Float(
                vals.iter()
                    .map(|v| if let Value::Float(f) = v { *f } else { 0.0 })
                    .collect(),
            ),
            (true, Some(DataType::Bool)) => ColData::Bool(
                vals.iter()
                    .map(|v| matches!(v, Value::Bool(true)))
                    .collect(),
            ),
            (true, Some(DataType::Str)) => ColData::Str(
                vals.iter()
                    .map(|v| {
                        if let Value::Str(s) = v {
                            s.clone()
                        } else {
                            Arc::from("")
                        }
                    })
                    .collect(),
            ),
            (true, Some(DataType::Date)) => ColData::Date(
                vals.iter()
                    .map(|v| if let Value::Date(d) = v { *d } else { 0 })
                    .collect(),
            ),
            // All-NULL columns are typeless; keep them exact via the
            // fallback (every lane is masked anyway).
            _ => ColData::Val(vals),
        };
        Column::from_data(ColumnData { data, validity })
    }

    /// Number of values in this window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when no value in this window is NULL.
    pub fn all_valid(&self) -> bool {
        self.data.validity.all_valid()
            || (0..self.len).all(|i| self.data.validity.get(self.offset + i))
    }

    /// Whether position `i` holds a value (not NULL).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.data.validity.get(self.offset + i)
    }

    /// Reconstructs the [`Value`] at position `i` — exactly the value
    /// the equivalent row would carry.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        debug_assert!(i < self.len);
        let j = self.offset + i;
        if !self.data.validity.get(j) {
            return Value::Null;
        }
        match &self.data.data {
            ColData::Int(v) => Value::Int(v[j]),
            ColData::Float(v) => Value::Float(v[j]),
            ColData::Bool(v) => Value::Bool(v[j]),
            ColData::Str(v) => Value::Str(v[j].clone()),
            ColData::Date(v) => Value::Date(v[j]),
            ColData::Val(v) => v[j].clone(),
        }
    }

    /// Compares the value at position `i` against `v` under grouping
    /// equality (the derived `PartialEq` on [`Value`]) without
    /// materializing a `Value` for the lane.
    #[inline]
    pub fn lane_eq(&self, i: usize, v: &Value) -> bool {
        let j = self.offset + i;
        if !self.data.validity.get(j) {
            return v.is_null();
        }
        match (&self.data.data, v) {
            (ColData::Int(d), Value::Int(x)) => d[j] == *x,
            (ColData::Float(d), Value::Float(x)) => Value::Float(d[j]) == Value::Float(*x),
            (ColData::Int(d), Value::Float(_)) => Value::Int(d[j]) == *v,
            (ColData::Float(d), Value::Int(_)) => Value::Float(d[j]) == *v,
            (ColData::Bool(d), Value::Bool(x)) => d[j] == *x,
            (ColData::Str(d), Value::Str(x)) => d[j] == *x,
            (ColData::Date(d), Value::Date(x)) => d[j] == *x,
            (ColData::Val(d), _) => d[j] == *v,
            _ => false,
        }
    }

    /// A zero-copy window over `[offset, offset + len)` of this column.
    pub fn slice(&self, offset: usize, len: usize) -> Column {
        debug_assert!(offset + len <= self.len);
        Column {
            data: self.data.clone(),
            offset: self.offset + offset,
            len,
        }
    }

    /// Gathers the values at `idx` into a new dense column, preserving
    /// the typed representation.
    pub fn gather(&self, idx: &[usize]) -> Column {
        let validity = Bitmap::from_flags(idx.iter().map(|&i| self.is_valid(i)));
        let o = self.offset;
        let data = match &self.data.data {
            ColData::Int(v) => ColData::Int(idx.iter().map(|&i| v[o + i]).collect()),
            ColData::Float(v) => ColData::Float(idx.iter().map(|&i| v[o + i]).collect()),
            ColData::Bool(v) => ColData::Bool(idx.iter().map(|&i| v[o + i]).collect()),
            ColData::Str(v) => ColData::Str(idx.iter().map(|&i| v[o + i].clone()).collect()),
            ColData::Date(v) => ColData::Date(idx.iter().map(|&i| v[o + i]).collect()),
            ColData::Val(v) => ColData::Val(idx.iter().map(|&i| v[o + i].clone()).collect()),
        };
        Column::from_data(ColumnData { data, validity })
    }

    /// Concatenates columns into one dense column. Parts with the same
    /// typed representation are appended typed; mixed representations
    /// fall back to verbatim values.
    pub fn concat(parts: &[Column]) -> Column {
        let total: usize = parts.iter().map(Column::len).sum();
        let mut validity = Bitmap::from_flags(std::iter::empty());
        for p in parts {
            for i in 0..p.len {
                validity.push(p.is_valid(i));
            }
        }
        let same_variant = parts.windows(2).all(|w| {
            std::mem::discriminant(&w[0].data.data) == std::mem::discriminant(&w[1].data.data)
        });
        if !same_variant || parts.is_empty() {
            let mut vals = Vec::with_capacity(total);
            for p in parts {
                for i in 0..p.len {
                    vals.push(p.value(i));
                }
            }
            return Column::from_values(vals);
        }
        macro_rules! typed_concat {
            ($variant:ident) => {{
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    if let ColData::$variant(v) = &p.data.data {
                        out.extend_from_slice(&v[p.offset..p.offset + p.len]);
                    }
                }
                ColData::$variant(out)
            }};
        }
        let data = match &parts[0].data.data {
            ColData::Int(_) => typed_concat!(Int),
            ColData::Float(_) => typed_concat!(Float),
            ColData::Bool(_) => typed_concat!(Bool),
            ColData::Str(_) => typed_concat!(Str),
            ColData::Date(_) => typed_concat!(Date),
            ColData::Val(_) => typed_concat!(Val),
        };
        Column::from_data(ColumnData { data, validity })
    }

    /// The typed payload and the window bounds, for kernels that want
    /// direct slice access: `(data, validity, offset)`. The window
    /// covers `[offset, offset + self.len())` of the returned storage.
    pub fn parts(&self) -> (&ColData, &Bitmap, usize) {
        (&self.data.data, &self.data.validity, self.offset)
    }
}

/// Governor accounting for a columnar batch: charges exactly what
/// [`crate::row::rows_bytes`] charges for the equivalent rows — the
/// per-row `Vec` header, the inline `Value` slots, and the heap payload
/// of present string values — so ResourceExhausted thresholds are
/// identical on both paths. `len` is the batch's row count (columns may
/// be empty when the layout has zero columns).
pub fn cols_bytes(columns: &[Column], len: usize) -> u64 {
    let inline = len * (std::mem::size_of::<Row>() + columns.len() * std::mem::size_of::<Value>());
    let mut heap = 0usize;
    for c in columns {
        match &c.data.data {
            ColData::Str(v) => {
                for i in 0..c.len {
                    if c.data.validity.get(c.offset + i) {
                        heap += v[c.offset + i].len();
                    }
                }
            }
            ColData::Val(v) => {
                for i in 0..c.len {
                    if let Value::Str(s) = &v[c.offset + i] {
                        if c.data.validity.get(c.offset + i) {
                            heap += s.len();
                        }
                    }
                }
            }
            _ => {}
        }
    }
    (inline + heap) as u64
}

/// Transposes rows into columns (one per position of `width`).
pub fn rows_to_columns(rows: &[Row], width: usize) -> Vec<Column> {
    (0..width)
        .map(|j| Column::from_values(rows.iter().map(|r| r[j].clone()).collect()))
        .collect()
}

/// Transposes columns back into rows.
pub fn columns_to_rows(columns: &[Column], len: usize) -> Vec<Row> {
    (0..len)
        .map(|i| columns.iter().map(|c| c.value(i)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::rows_bytes;

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::str("alpha"), Value::Float(1.5)],
            vec![Value::Int(2), Value::Null, Value::Float(2.5)],
            vec![Value::Null, Value::str("g"), Value::Null],
        ]
    }

    #[test]
    fn roundtrip_preserves_values() {
        let rows = sample_rows();
        let cols = rows_to_columns(&rows, 3);
        assert_eq!(columns_to_rows(&cols, rows.len()), rows);
    }

    #[test]
    fn typed_representation_is_chosen() {
        let c = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(matches!(c.parts().0, ColData::Int(_)));
        assert!(!c.all_valid());
        assert_eq!(c.value(1), Value::Null);
        // Mixed numeric types fall back to verbatim storage.
        let m = Column::from_values(vec![Value::Int(1), Value::Float(2.0)]);
        assert!(matches!(m.parts().0, ColData::Val(_)));
        assert_eq!(m.value(1), Value::Float(2.0));
    }

    #[test]
    fn slice_and_gather_window_correctly() {
        let c = Column::from_values((0..10).map(Value::Int).collect());
        let s = c.slice(3, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.value(0), Value::Int(3));
        let g = s.gather(&[3, 0]);
        assert_eq!(g.value(0), Value::Int(6));
        assert_eq!(g.value(1), Value::Int(3));
    }

    #[test]
    fn concat_keeps_typed_storage() {
        let a = Column::from_values(vec![Value::Int(1), Value::Null]);
        let b = Column::from_values(vec![Value::Int(3)]);
        let c = Column::concat(&[a, b]);
        assert!(matches!(c.parts().0, ColData::Int(_)));
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(3));
    }

    #[test]
    fn lane_eq_matches_grouping_equality() {
        let c = Column::from_values(vec![Value::Int(3), Value::Null, Value::str("x")]);
        assert!(c.lane_eq(0, &Value::Int(3)));
        assert!(
            c.lane_eq(0, &Value::Float(3.0)),
            "int/float grouping equality"
        );
        assert!(c.lane_eq(1, &Value::Null));
        assert!(!c.lane_eq(1, &Value::Int(0)));
        let s = Column::from_values(vec![Value::str("x")]);
        assert!(s.lane_eq(0, &Value::str("x")));
    }

    /// Satellite: `cols_bytes` must charge the same logical totals as
    /// `rows_bytes` for the equivalent rows, so the governor's
    /// ResourceExhausted thresholds do not shift between paths.
    #[test]
    fn cols_bytes_matches_rows_bytes() {
        let cases: Vec<Vec<Row>> = vec![
            sample_rows(),
            vec![],
            vec![vec![Value::str("a long string payload"), Value::Date(42)]],
            vec![vec![Value::Null], vec![Value::Null]],
            (0..100)
                .map(|i| vec![Value::Int(i), Value::str(format!("s{i}"))])
                .collect(),
        ];
        for rows in cases {
            let width = rows.first().map_or(0, Vec::len);
            let cols = rows_to_columns(&rows, width);
            assert_eq!(
                cols_bytes(&cols, rows.len()),
                rows_bytes(&rows),
                "parity violated for {rows:?}"
            );
        }
    }

    /// Slices charge only their window — and still match the rows they
    /// logically contain.
    #[test]
    fn cols_bytes_respects_slices() {
        let rows: Vec<Row> = (0..10).map(|i| vec![Value::str(format!("v{i}"))]).collect();
        let cols = rows_to_columns(&rows, 1);
        let sliced: Vec<Column> = cols.iter().map(|c| c.slice(2, 5)).collect();
        assert_eq!(cols_bytes(&sliced, 5), rows_bytes(&rows[2..7]));
    }
}
