//! Deterministic PRNG (SplitMix64).
//!
//! The TPC-H generator and randomized tests need bit-stable sequences so
//! that benchmark numbers and failing seeds are reproducible across
//! machines and dependency upgrades; a tiny in-tree generator removes
//! that risk entirely.

/// SplitMix64 generator: tiny, fast, and statistically solid for data
/// generation (not for cryptography).
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Prng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). `lo` must be `<= hi`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn float_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }

    /// Fixed-length lowercase ASCII identifier-ish string.
    pub fn word(&mut self, len: usize) -> String {
        (0..len)
            .map(|_| (b'a' + (self.next_u64() % 26) as u8) as char)
            .collect()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut p = Prng::new(7);
        for _ in 0..1000 {
            let v = p.int_range(-3, 5);
            assert!((-3..=5).contains(&v));
        }
    }

    #[test]
    fn int_range_single_point() {
        let mut p = Prng::new(7);
        assert_eq!(p.int_range(4, 4), 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut p = Prng::new(9);
        for _ in 0..1000 {
            let v = p.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn word_has_requested_length() {
        let mut p = Prng::new(3);
        assert_eq!(p.word(8).len(), 8);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut p = Prng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        p.shuffle(&mut v);
        let mut w = v.clone();
        w.sort_unstable();
        assert_eq!(w, (0..50).collect::<Vec<_>>());
    }
}
