//! Error type shared by every layer of the stack.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere between SQL text and query results.
///
/// The paper's "exception subqueries" (§2.4, Class 3) hinge on the fact
/// that some subqueries can raise *run-time* errors — represented here by
/// [`Error::SubqueryReturnedMoreThanOneRow`], raised by the `Max1Row`
/// operator during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexer/parser failure, with position information in the message.
    Parse(String),
    /// Name resolution / typing failure while binding SQL to the IR.
    Bind(String),
    /// Normalization or optimization failure (these indicate bugs or
    /// unsupported constructs, never data-dependent conditions).
    Plan(String),
    /// Execution-time failure other than the dedicated variants below.
    Exec(String),
    /// A scalar subquery returned more than one row (SQL semantics,
    /// enforced by the `Max1Row` operator).
    SubqueryReturnedMoreThanOneRow,
    /// Division by zero in a scalar expression.
    DivideByZero,
    /// Integer arithmetic overflowed.
    NumericOverflow,
    /// Scalar evaluation met operands of incompatible types.
    TypeMismatch(String),
    /// Catalog lookup failure.
    UnknownTable(String),
    /// Column lookup failure.
    UnknownColumn(String),
    /// Invariant violation inside the engine; always a bug.
    Internal(String),
    /// A plan-invariant check failed after a rewrite or optimizer rule.
    /// The message carries the blame report: rule name, identity number,
    /// offending node and before/after plan explains.
    Plancheck(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::SubqueryReturnedMoreThanOneRow => {
                write!(f, "scalar subquery returned more than one row")
            }
            Error::DivideByZero => write!(f, "division by zero"),
            Error::NumericOverflow => write!(f, "numeric overflow"),
            Error::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Plancheck(m) => write!(f, "plan invariant violation: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Shorthand for an [`Error::Internal`] with a formatted message.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}
