//! Error type shared by every layer of the stack.

use std::fmt;

/// Convenient alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere between SQL text and query results.
///
/// The paper's "exception subqueries" (§2.4, Class 3) hinge on the fact
/// that some subqueries can raise *run-time* errors — represented here by
/// [`Error::SubqueryReturnedMoreThanOneRow`], raised by the `Max1Row`
/// operator during execution. The runtime resource governor adds two
/// further structured run-time conditions: [`Error::ResourceExhausted`]
/// (a memory budget trip at a named buffering operator) and
/// [`Error::Cancelled`] (cooperative cancellation or deadline expiry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Lexer/parser failure, with position information in the message.
    Parse(String),
    /// Name resolution / typing failure while binding SQL to the IR.
    Bind(String),
    /// Normalization or optimization failure (these indicate bugs or
    /// unsupported constructs, never data-dependent conditions).
    Plan(String),
    /// Execution-time failure other than the dedicated variants below.
    Exec(String),
    /// A scalar subquery returned more than one row (SQL semantics,
    /// enforced by the `Max1Row` operator).
    SubqueryReturnedMoreThanOneRow,
    /// Division by zero in a scalar expression.
    DivideByZero,
    /// Integer arithmetic overflowed.
    NumericOverflow,
    /// Scalar evaluation met operands of incompatible types.
    TypeMismatch(String),
    /// Catalog lookup failure.
    UnknownTable(String),
    /// Column lookup failure.
    UnknownColumn(String),
    /// Invariant violation inside the engine; always a bug.
    Internal(String),
    /// A plan-invariant check failed after a rewrite or optimizer rule.
    /// The message carries the blame report: rule name, identity number,
    /// offending node and before/after plan explains.
    Plancheck(String),
    /// A buffering operator asked the per-query memory pool for more
    /// bytes than the budget allows. Carries the blamed operator, the
    /// size of the refused request, and the configured limit.
    ResourceExhausted {
        /// Buffering site that made the refused request (e.g.
        /// `"HashJoin"`, `"Sort"`, `"Cache"`).
        operator: String,
        /// Bytes the operator tried to reserve.
        requested: u64,
        /// The per-query budget in bytes.
        limit: u64,
        /// Remediation hint naming the knob to raise (e.g.
        /// `"raise ORTHOPT_MEM_LIMIT / SET mem_limit"`). `None` when the
        /// refusing layer has no knob to suggest; sites that cannot
        /// degrade attach one via [`Error::with_hint`].
        hint: Option<&'static str>,
    },
    /// The query was cancelled cooperatively — by an explicit cancel
    /// handle or an expired deadline — at an operator boundary.
    Cancelled {
        /// Operator at whose `next_batch` boundary the cancellation was
        /// observed.
        operator: String,
        /// Milliseconds since the query (its cancellation scope) started.
        elapsed_ms: u64,
    },
    /// A contextual wrapper around another error; the inner error is
    /// reachable through [`std::error::Error::source`].
    Context {
        /// What the failing layer was doing.
        msg: String,
        /// The underlying failure.
        source: Box<Error>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Plan(m) => write!(f, "plan error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::SubqueryReturnedMoreThanOneRow => {
                write!(f, "scalar subquery returned more than one row")
            }
            Error::DivideByZero => write!(f, "division by zero"),
            Error::NumericOverflow => write!(f, "numeric overflow"),
            Error::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::Plancheck(m) => write!(f, "plan invariant violation: {m}"),
            Error::ResourceExhausted {
                operator,
                requested,
                limit,
                hint,
            } => {
                write!(
                    f,
                    "resource exhausted: {operator} requested {requested} bytes \
                     over a {limit}-byte memory budget"
                )?;
                if let Some(h) = hint {
                    write!(f, " (hint: {h})")?;
                }
                Ok(())
            }
            Error::Cancelled {
                operator,
                elapsed_ms,
            } => write!(f, "query cancelled at {operator} after {elapsed_ms}ms"),
            Error::Context { msg, source } => write!(f, "{msg}: {source}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Context { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl Error {
    /// Shorthand for an [`Error::Internal`] with a formatted message.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Wraps this error with a layer of context; the original error
    /// stays reachable through [`std::error::Error::source`].
    #[must_use]
    pub fn context(self, msg: impl Into<String>) -> Self {
        Error::Context {
            msg: msg.into(),
            source: Box::new(self),
        }
    }

    /// The innermost error of a [`Error::Context`] chain (`self` when
    /// not wrapped). Tests and retry logic match on this to see the
    /// root condition regardless of how many layers annotated it.
    pub fn root_cause(&self) -> &Error {
        let mut e = self;
        while let Error::Context { source, .. } = e {
            e = source;
        }
        e
    }

    /// Attaches a remediation hint to a [`Error::ResourceExhausted`]
    /// (including one buried under [`Error::Context`] layers); any other
    /// error passes through unchanged. Hard-fail governed sites — those
    /// with no spill or shed fallback — use this so the refusal names
    /// the knob that would have let the query proceed.
    #[must_use]
    pub fn with_hint(mut self, hint: &'static str) -> Self {
        {
            let mut e = &mut self;
            loop {
                match e {
                    Error::Context { source, .. } => e = source,
                    Error::ResourceExhausted { hint: h, .. } => {
                        h.get_or_insert(hint);
                        break;
                    }
                    _ => break,
                }
            }
        }
        self
    }

    /// True when the root cause is a governor condition (budget trip or
    /// cancellation) rather than a data-dependent or internal error.
    pub fn is_governor(&self) -> bool {
        matches!(
            self.root_cause(),
            Error::ResourceExhausted { .. } | Error::Cancelled { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn context_chains_through_source() {
        let e = Error::DivideByZero.context("evaluating predicate");
        assert_eq!(e.to_string(), "evaluating predicate: division by zero");
        let src = e.source().expect("source present");
        assert_eq!(src.to_string(), "division by zero");
        assert_eq!(e.root_cause(), &Error::DivideByZero);
    }

    #[test]
    fn governor_variants_render_structured_fields() {
        let e = Error::ResourceExhausted {
            operator: "HashJoin".into(),
            requested: 4096,
            limit: 1024,
            hint: None,
        };
        let s = e.to_string();
        assert!(s.contains("HashJoin") && s.contains("4096") && s.contains("1024"));
        assert!(!s.contains("hint"), "no hint rendered when absent");
        assert!(e.is_governor());
        let hinted = e.clone().with_hint("raise ORTHOPT_MEM_LIMIT");
        assert!(hinted
            .to_string()
            .contains("(hint: raise ORTHOPT_MEM_LIMIT)"));
        let wrapped = e
            .context("gathering rows")
            .with_hint("raise ORTHOPT_MEM_LIMIT");
        assert!(
            wrapped
                .to_string()
                .contains("hint: raise ORTHOPT_MEM_LIMIT"),
            "hint reaches a context-wrapped root: {wrapped}"
        );
        let c = Error::Cancelled {
            operator: "Sort".into(),
            elapsed_ms: 12,
        };
        assert!(c.to_string().contains("Sort"));
        assert!(c.is_governor());
        assert!(!Error::DivideByZero.is_governor());
    }
}
