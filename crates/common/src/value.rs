//! SQL values, types, and three-valued logic.
//!
//! The paper's semantics (§1.1) depend on precise NULL behaviour:
//! *scalar* aggregation returns one row even on empty input (NULL for
//! `SUM`, 0 for `COUNT`), comparisons against NULL are *unknown*, and
//! grouping treats NULLs as equal. We therefore keep two notions of
//! equality:
//!
//! * **Grouping equality** — the derived [`PartialEq`]/[`Hash`] on
//!   [`Value`]: total, NULL == NULL, used by hash joins on grouping keys,
//!   hash aggregation and duplicate elimination.
//! * **SQL comparison** — [`Value::sql_eq`] / [`Value::sql_cmp`]:
//!   three-valued, anything compared with NULL is unknown (`None`).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};

/// Data types supported by the engine (a pragmatic TPC-H-complete set).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    /// Boolean (`true`/`false`).
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (used for TPC-H decimals).
    Float,
    /// UTF-8 string.
    Str,
    /// Date as days since 1970-01-01.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// True when values of this type can participate in `+ - * /`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

/// A single SQL value. `Null` is typeless, as in SQL.
#[derive(Clone, Debug)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
    /// Days since the epoch.
    Date(i32),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The type of a non-NULL value, `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Extracts a bool under three-valued logic: NULL ↦ `None`.
    pub fn as_bool3(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(Error::TypeMismatch(format!(
                "expected bool, found {other:?}"
            ))),
        }
    }

    /// Numeric view as f64, for mixed int/float arithmetic.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Canonicalizes floats so that grouping equality and hashing agree:
    /// `-0.0` folds to `0.0` and every NaN folds to one canonical NaN.
    fn canonical_f64(f: f64) -> u64 {
        if f == 0.0 {
            0f64.to_bits()
        } else if f.is_nan() {
            f64::NAN.to_bits()
        } else {
            f.to_bits()
        }
    }

    /// SQL equality under three-valued logic. `None` means *unknown*.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL ordering comparison under three-valued logic.
    ///
    /// Mixed `Int`/`Float` comparisons coerce to float. Comparing
    /// incompatible non-NULL types is a type error upstream; here it
    /// conservatively yields unknown.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                Some(x.total_cmp(&y))
            }
        }
    }

    /// Total ordering used for deterministic output sorting (ORDER BY and
    /// test normalization): NULL sorts first, then by grouping value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Date(_) => 4,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => rank(a).cmp(&rank(b)),
            },
        }
    }

    /// `self + other` with NULL propagation.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.arith(other, "+", i64::checked_add, |a, b| a + b)
    }

    /// `self - other` with NULL propagation.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.arith(other, "-", i64::checked_sub, |a, b| a - b)
    }

    /// `self * other` with NULL propagation.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.arith(other, "*", i64::checked_mul, |a, b| a * b)
    }

    /// `self / other`: always produces a float (SQL Server style decimal
    /// division is approximated by float division). Division by zero is a
    /// run-time error; NULL operands propagate.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let a = self.numeric_operand("/")?;
        let b = other.numeric_operand("/")?;
        if b == 0.0 {
            return Err(Error::DivideByZero);
        }
        Ok(Value::Float(a / b))
    }

    /// Negation with NULL propagation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or(Error::NumericOverflow),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::TypeMismatch(format!("cannot negate {other:?}"))),
        }
    }

    fn numeric_operand(&self, op: &str) -> Result<f64> {
        self.as_f64()
            .ok_or_else(|| Error::TypeMismatch(format!("operand of {op} is not numeric: {self:?}")))
    }

    fn arith(
        &self,
        other: &Value,
        op: &str,
        int_op: fn(i64, i64) -> Option<i64>,
        float_op: fn(f64, f64) -> f64,
    ) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => {
                int_op(*a, *b).map(Value::Int).ok_or(Error::NumericOverflow)
            }
            (a, b) => {
                let (x, y) = (a.numeric_operand(op)?, b.numeric_operand(op)?);
                Ok(Value::Float(float_op(x, y)))
            }
        }
    }
}

impl PartialEq for Value {
    /// Grouping equality: total, NULL equals NULL, `-0.0 == 0.0`,
    /// NaN == NaN. Int and Float compare numerically so that mixed-type
    /// grouping keys behave.
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Value::canonical_f64(*a) == Value::canonical_f64(*b)
            }
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b && !b.is_nan()
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats must hash alike when numerically equal
            // (see PartialEq); hash every numeric through the canonical
            // float encoding unless the int is not exactly representable.
            Value::Int(i) => {
                let f = *i as f64;
                if f as i64 == *i {
                    2u8.hash(state);
                    Value::canonical_f64(f).hash(state);
                } else {
                    3u8.hash(state);
                    i.hash(state);
                }
            }
            Value::Float(f) => {
                2u8.hash(state);
                Value::canonical_f64(*f).hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

/// Three-valued AND.
pub fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued OR.
pub fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued NOT.
pub fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_grouping_equality() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn null_sql_comparison_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn float_zero_signs_group_together() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(h(&Value::Float(-0.0)), h(&Value::Float(0.0)));
    }

    #[test]
    fn nan_groups_with_itself() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(h(&Value::Float(f64::NAN)), h(&Value::Float(f64::NAN)));
    }

    #[test]
    fn int_float_numeric_equality_and_hash_agree() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn mixed_comparison_coerces() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn arithmetic_null_propagation() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).mul(&Value::Null).unwrap().is_null());
        assert!(Value::Null.div(&Value::Int(0)).unwrap().is_null());
    }

    #[test]
    fn division_by_zero_errors() {
        assert_eq!(Value::Int(1).div(&Value::Int(0)), Err(Error::DivideByZero));
    }

    #[test]
    fn division_produces_float() {
        assert_eq!(
            Value::Int(7).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert_eq!(
            Value::Int(i64::MAX).add(&Value::Int(1)),
            Err(Error::NumericOverflow)
        );
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Some(true);
        let f = Some(false);
        let u = None;
        assert_eq!(and3(t, u), u);
        assert_eq!(and3(f, u), f);
        assert_eq!(or3(t, u), t);
        assert_eq!(or3(f, u), u);
        assert_eq!(not3(u), u);
        assert_eq!(not3(t), f);
    }

    #[test]
    fn string_values_compare() {
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn total_cmp_sorts_null_first() {
        let mut v = [Value::Int(2), Value::Null, Value::Int(1)];
        v.sort_by(super::Value::total_cmp);
        assert!(v[0].is_null());
        assert_eq!(v[1], Value::Int(1));
    }
}
