//! Identifier newtypes.
//!
//! Column identity is the backbone of the whole optimizer: the binder
//! assigns a globally unique [`ColId`] to every produced column, so a
//! "correlation" is nothing more than a free [`ColId`] referenced by an
//! inner expression but produced by an outer one. All the decorrelation
//! identities of the paper (Figure 4) then become mechanical.

use std::fmt;

/// Globally unique column identifier, allocated by [`ColIdGen`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ColId(pub u32);

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a base table in the catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Monotonic allocator for fresh [`ColId`]s.
///
/// One generator is threaded through binding, rewriting and optimization
/// of a single query so that manufactured columns (Enumerate keys, probe
/// columns for `COUNT(*)` rewrites, local-aggregate outputs, …) never
/// collide with existing ones.
#[derive(Debug, Clone, Default)]
pub struct ColIdGen {
    next: u32,
}

impl ColIdGen {
    /// Creates a generator that will allocate ids starting at `first`.
    pub fn starting_at(first: u32) -> Self {
        ColIdGen { next: first }
    }

    /// Creates a generator guaranteed not to collide with any id in `used`.
    pub fn after(used: impl IntoIterator<Item = ColId>) -> Self {
        let next = used.into_iter().map(|c| c.0 + 1).max().unwrap_or(0);
        ColIdGen { next }
    }

    /// Allocates a fresh, never-before-returned column id.
    pub fn fresh(&mut self) -> ColId {
        let id = ColId(self.next);
        self.next += 1;
        id
    }

    /// The id the next call to [`ColIdGen::fresh`] would return.
    pub fn peek(&self) -> ColId {
        ColId(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_monotonic() {
        let mut g = ColIdGen::default();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert!(a < b);
    }

    #[test]
    fn after_skips_used_ids() {
        let mut g = ColIdGen::after([ColId(3), ColId(7), ColId(1)]);
        assert_eq!(g.fresh(), ColId(8));
    }

    #[test]
    fn after_empty_starts_at_zero() {
        let mut g = ColIdGen::after([]);
        assert_eq!(g.fresh(), ColId(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ColId(4).to_string(), "c4");
        assert_eq!(TableId(2).to_string(), "t2");
    }
}
