#![warn(missing_docs)]
//! Shared foundation for the `orthopt` workspace.
//!
//! This crate defines the value system (SQL types, NULL, three-valued
//! logic), row representation, identifier newtypes, the error type used
//! across the whole stack, and a small deterministic PRNG used by the
//! TPC-H data generator and the property-test harnesses.
//!
//! Everything here is deliberately engine-agnostic: the IR, optimizer and
//! executor crates all speak in terms of these types.

pub mod column;
pub mod error;
pub mod governor;
pub mod ids;
pub mod prng;
pub mod row;
pub mod value;

pub use column::{
    cols_bytes, columns_to_rows, rows_to_columns, Bitmap, ColData, Column, ColumnData,
};
pub use error::{Error, Result};
pub use governor::{
    AdmissionController, AdmissionGuard, AdmissionStats, CancellationToken, MemoryPool,
    MemoryReservation, QueryContext,
};
pub use ids::{ColId, ColIdGen, TableId};
pub use prng::Prng;
pub use row::Row;
pub use value::{DataType, Value};
