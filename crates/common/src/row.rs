//! Row representation and helpers.

use crate::value::Value;

/// A row is simply a vector of values; the *layout* (which [`crate::ColId`]
/// lives at which position) travels separately with each operator's
/// output, so rows themselves stay cheap to build and move.
pub type Row = Vec<Value>;

/// Sorts rows with the total order (NULL-first), producing a canonical
/// ordering for deterministic output and bag comparison in tests.
pub fn sort_rows(rows: &mut [Row]) {
    rows.sort_by(cmp_rows);
}

/// Total comparison of two rows, lexicographic by position.
pub fn cmp_rows(a: &Row, b: &Row) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.total_cmp(y);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// Approximate heap footprint of one row in bytes, used by the memory
/// governor to charge buffering operators. Counts the `Vec` header, the
/// inline `Value` slots, and the heap payload of string values. This is
/// an accounting estimate (allocator slack and `Arc` sharing are
/// ignored), but it is deterministic and monotone in the data size,
/// which is all budget enforcement needs.
pub fn row_bytes(row: &[Value]) -> u64 {
    let inline = std::mem::size_of::<Row>() + std::mem::size_of_val(row);
    let heap: usize = row
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.len(),
            _ => 0,
        })
        .sum();
    (inline + heap) as u64
}

/// Sum of [`row_bytes`] over a batch of rows.
pub fn rows_bytes(rows: &[Row]) -> u64 {
    rows.iter().map(|r| row_bytes(r)).sum()
}

/// Bag (multiset) equality of two row collections, ignoring order.
pub fn bag_eq(a: &[Row], b: &[Row]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut x: Vec<Row> = a.to_vec();
    let mut y: Vec<Row> = b.to_vec();
    sort_rows(&mut x);
    sort_rows(&mut y);
    x == y
}

/// Bag equality with relative tolerance on floats — physical plans may
/// reassociate floating-point aggregation (e.g. local/global SUM
/// splits), which legitimately perturbs the last bits.
pub fn bag_eq_approx(a: &[Row], b: &[Row], rel_eps: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut x: Vec<Row> = a.to_vec();
    let mut y: Vec<Row> = b.to_vec();
    sort_rows(&mut x);
    sort_rows(&mut y);
    x.iter().zip(&y).all(|(r1, r2)| {
        r1.len() == r2.len()
            && r1.iter().zip(r2).all(|(v1, v2)| match (v1, v2) {
                (Value::Float(f1), Value::Float(f2)) => {
                    let scale = f1.abs().max(f2.abs()).max(1.0);
                    (f1 - f2).abs() <= rel_eps * scale
                }
                _ => v1 == v2,
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_eq_ignores_order() {
        let a = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let b = vec![vec![Value::Int(2)], vec![Value::Int(1)]];
        assert!(bag_eq(&a, &b));
    }

    #[test]
    fn bag_eq_respects_multiplicity() {
        let a = vec![vec![Value::Int(1)], vec![Value::Int(1)]];
        let b = vec![vec![Value::Int(1)]];
        assert!(!bag_eq(&a, &b));
    }

    #[test]
    fn bag_eq_handles_nulls() {
        let a = vec![vec![Value::Null], vec![Value::Int(1)]];
        let b = vec![vec![Value::Int(1)], vec![Value::Null]];
        assert!(bag_eq(&a, &b));
    }

    #[test]
    fn approx_bag_eq_tolerates_ulp_noise() {
        let a = vec![vec![Value::Float(100.0)]];
        let b = vec![vec![Value::Float(100.0 + 1e-12)]];
        assert!(bag_eq_approx(&a, &b, 1e-9));
        let c = vec![vec![Value::Float(101.0)]];
        assert!(!bag_eq_approx(&a, &c, 1e-9));
    }

    #[test]
    fn approx_bag_eq_still_exact_for_ints() {
        let a = vec![vec![Value::Int(1)]];
        let b = vec![vec![Value::Int(2)]];
        assert!(!bag_eq_approx(&a, &b, 1e-9));
    }

    #[test]
    fn sort_rows_is_deterministic() {
        let mut r = vec![
            vec![Value::Int(2), Value::str("b")],
            vec![Value::Int(2), Value::str("a")],
            vec![Value::Null],
        ];
        sort_rows(&mut r);
        assert!(r[0][0].is_null());
        assert_eq!(r[1][1], Value::str("a"));
    }
}
