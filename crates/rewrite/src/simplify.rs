//! Normalization simplifications: composite-aggregate expansion,
//! select merging, predicate pushdown (the filter half of §3.1's
//! reordering), and empty-subexpression detection (§4).

use std::collections::BTreeSet;

use orthopt_common::{ColId, DataType, Value};
use orthopt_ir::{AggDef, AggFunc, ColumnMeta, GroupKind, JoinKind, MapDef, RelExpr, ScalarExpr};

use crate::RewriteCtx;

/// Expands composite aggregates: `AVG` has no local/global split of its
/// own (§3.3 footnote 3), so it is computed from `SUM` and `COUNT` plus
/// a computing project. After this pass every aggregate in the tree is
/// splittable.
pub fn expand_composite_aggs(mut rel: RelExpr, ctx: &mut RewriteCtx) -> RelExpr {
    for child in rel.children_mut() {
        let taken = take(child);
        *child = expand_composite_aggs(taken, ctx);
    }
    // Also walk into scalar subquery bodies.
    rel.transform_scalars(&mut |e| {
        let body = match e {
            ScalarExpr::Subquery(r) => Some(r),
            ScalarExpr::Exists { rel: r, .. } => Some(r),
            ScalarExpr::InSubquery { rel: r, .. } => Some(r),
            ScalarExpr::QuantifiedCmp { rel: r, .. } => Some(r),
            _ => None,
        };
        if let Some(body) = body {
            let taken = std::mem::replace(
                body.as_mut(),
                RelExpr::ConstRel {
                    cols: vec![],
                    rows: vec![],
                },
            );
            **body = expand_composite_aggs(taken, ctx);
        }
    });
    let RelExpr::GroupBy {
        kind,
        input,
        group_cols,
        aggs,
    } = rel
    else {
        return rel;
    };
    if !aggs.iter().any(|a| a.func == AggFunc::Avg) {
        return RelExpr::GroupBy {
            kind,
            input,
            group_cols,
            aggs,
        };
    }
    let mut new_aggs: Vec<AggDef> = Vec::with_capacity(aggs.len() + 1);
    let mut defs: Vec<MapDef> = Vec::new();
    let mut keep_cols: Vec<ColId> = group_cols.clone();
    for agg in aggs {
        if agg.func != AggFunc::Avg {
            keep_cols.push(agg.out.id);
            new_aggs.push(agg);
            continue;
        }
        let arg = agg.arg.expect("AVG has an argument");
        let sum_col = ColumnMeta::new(ctx.gen.fresh(), "avg_sum", DataType::Float, true);
        let cnt_col = ColumnMeta::new(ctx.gen.fresh(), "avg_cnt", DataType::Int, false);
        new_aggs.push(AggDef {
            out: sum_col.clone(),
            func: AggFunc::Sum,
            arg: Some(arg.clone()),
            distinct: agg.distinct,
        });
        new_aggs.push(AggDef {
            out: cnt_col.clone(),
            func: AggFunc::Count,
            arg: Some(arg),
            distinct: agg.distinct,
        });
        // avg = CASE WHEN cnt = 0 THEN NULL ELSE sum / cnt END
        defs.push(MapDef {
            col: agg.out.clone(),
            expr: ScalarExpr::Case {
                operand: None,
                whens: vec![(
                    ScalarExpr::eq(ScalarExpr::col(cnt_col.id), ScalarExpr::lit(0i64)),
                    ScalarExpr::Literal(Value::Null),
                )],
                else_: Some(Box::new(ScalarExpr::Arith {
                    op: orthopt_ir::ArithOp::Div,
                    left: Box::new(ScalarExpr::col(sum_col.id)),
                    right: Box::new(ScalarExpr::col(cnt_col.id)),
                })),
            },
        });
        keep_cols.push(agg.out.id);
    }
    let grouped = RelExpr::GroupBy {
        kind,
        input,
        group_cols,
        aggs: new_aggs,
    };
    RelExpr::Project {
        input: Box::new(RelExpr::Map {
            input: Box::new(grouped),
            defs,
        }),
        cols: keep_cols,
    }
}

/// Structural simplifications, applied bottom-up to fixpoint-ish:
/// select merging and elimination, empty-subexpression propagation,
/// trivial projection removal.
pub fn simplify(mut rel: RelExpr) -> RelExpr {
    for child in rel.children_mut() {
        let taken = take(child);
        *child = simplify(taken);
    }
    loop {
        match step(rel) {
            Step::Changed(r) => rel = r,
            Step::Done(r) => return r,
        }
    }
}

enum Step {
    Changed(RelExpr),
    Done(RelExpr),
}

fn is_empty_const(rel: &RelExpr) -> bool {
    matches!(rel, RelExpr::ConstRel { rows, .. } if rows.is_empty())
}

fn empty_like(rel: &RelExpr) -> RelExpr {
    RelExpr::ConstRel {
        cols: rel.output_cols(),
        rows: vec![],
    }
}

fn step(rel: RelExpr) -> Step {
    match rel {
        // σ_true(E) = E; σ_false(E) = ∅; merge stacked selects.
        RelExpr::Select { input, predicate } => {
            if predicate.is_true() {
                return Step::Changed(*input);
            }
            if matches!(&predicate, ScalarExpr::Literal(v) if !matches!(v, Value::Bool(true))) {
                // FALSE or NULL constant predicate: empty.
                let e = empty_like(&input);
                return Step::Changed(e);
            }
            if is_empty_const(&input) {
                return Step::Changed(*input);
            }
            if let RelExpr::Select {
                input: inner,
                predicate: p2,
            } = *input
            {
                return Step::Changed(RelExpr::Select {
                    input: inner,
                    predicate: ScalarExpr::and([p2, predicate]),
                });
            }
            Step::Done(RelExpr::Select { input, predicate })
        }
        RelExpr::Join {
            kind,
            left,
            right,
            predicate,
        } => {
            if is_empty_const(&left) {
                let e = empty_like(&RelExpr::Join {
                    kind,
                    left,
                    right,
                    predicate,
                });
                return Step::Changed(e);
            }
            if is_empty_const(&right) {
                return match kind {
                    JoinKind::Inner | JoinKind::LeftSemi => {
                        let e = empty_like(&RelExpr::Join {
                            kind,
                            left,
                            right,
                            predicate,
                        });
                        Step::Changed(e)
                    }
                    JoinKind::LeftAnti => Step::Changed(*left),
                    JoinKind::LeftOuter => {
                        // L LOJ ∅ = L padded with NULL columns.
                        let defs = right
                            .output_cols()
                            .into_iter()
                            .map(|c| MapDef {
                                col: ColumnMeta {
                                    nullable: true,
                                    ..c
                                },
                                expr: ScalarExpr::Literal(Value::Null),
                            })
                            .collect();
                        Step::Changed(RelExpr::Map { input: left, defs })
                    }
                };
            }
            Step::Done(RelExpr::Join {
                kind,
                left,
                right,
                predicate,
            })
        }
        RelExpr::GroupBy {
            kind,
            input,
            group_cols,
            aggs,
        } => {
            if is_empty_const(&input) && matches!(kind, GroupKind::Vector | GroupKind::Local) {
                let e = empty_like(&RelExpr::GroupBy {
                    kind,
                    input,
                    group_cols,
                    aggs,
                });
                return Step::Changed(e);
            }
            if is_empty_const(&input) && kind == GroupKind::Scalar {
                // Scalar aggregation of the empty relation is a constant.
                let cols: Vec<ColumnMeta> = aggs.iter().map(|a| a.out.clone()).collect();
                let row: Vec<Value> = aggs.iter().map(|a| a.func.on_empty()).collect();
                return Step::Changed(RelExpr::ConstRel {
                    cols,
                    rows: vec![row],
                });
            }
            Step::Done(RelExpr::GroupBy {
                kind,
                input,
                group_cols,
                aggs,
            })
        }
        // Identity projection removal; collapse stacked projects.
        RelExpr::Project { input, cols } => {
            if input.output_col_ids() == cols {
                return Step::Changed(*input);
            }
            if is_empty_const(&input) {
                let e = empty_like(&RelExpr::Project { input, cols });
                return Step::Changed(e);
            }
            if let RelExpr::Project { input: inner, .. } = *input {
                return Step::Changed(RelExpr::Project { input: inner, cols });
            }
            Step::Done(RelExpr::Project { input, cols })
        }
        RelExpr::Map { input, defs } => {
            if defs.is_empty() {
                return Step::Changed(*input);
            }
            if is_empty_const(&input) {
                let e = empty_like(&RelExpr::Map { input, defs });
                return Step::Changed(e);
            }
            Step::Done(RelExpr::Map { input, defs })
        }
        RelExpr::UnionAll {
            left,
            right,
            cols,
            left_map,
            right_map,
        } => {
            if is_empty_const(&left) && is_empty_const(&right) {
                return Step::Changed(RelExpr::ConstRel { cols, rows: vec![] });
            }
            Step::Done(RelExpr::UnionAll {
                left,
                right,
                cols,
                left_map,
                right_map,
            })
        }
        RelExpr::Apply { kind, left, right } => {
            if is_empty_const(&left) {
                let e = empty_like(&RelExpr::Apply { kind, left, right });
                return Step::Changed(e);
            }
            Step::Done(RelExpr::Apply { kind, left, right })
        }
        other => Step::Done(other),
    }
}

/// Predicate pushdown: moves filter conjuncts toward the tables they
/// constrain — through inner joins, the preserved side of outerjoins,
/// and GroupBy when the columns are functionally determined by the
/// grouping columns (the filter/GroupBy reorder of §3.1).
pub fn push_down_predicates(mut rel: RelExpr) -> RelExpr {
    for child in rel.children_mut() {
        let taken = take(child);
        *child = push_down_predicates(taken);
    }
    let RelExpr::Select { input, predicate } = rel else {
        return rel;
    };
    let mut remaining: Vec<ScalarExpr> = Vec::new();
    let mut current = *input;
    for conjunct in predicate.conjuncts() {
        match try_push(conjunct.clone(), current) {
            Ok(updated) => current = updated,
            Err(unchanged) => {
                current = unchanged;
                remaining.push(conjunct);
            }
        }
    }
    let leftover = ScalarExpr::and(remaining);
    if leftover.is_true() {
        current
    } else {
        RelExpr::Select {
            input: Box::new(current),
            predicate: leftover,
        }
    }
}

/// Places one conjunct inside `rel` (as deep as it goes). `Ok` means the
/// conjunct was consumed; `Err` returns the tree unchanged so the caller
/// keeps the conjunct above.
#[allow(clippy::result_large_err)] // Err carries the tree back by design
fn try_push(conjunct: ScalarExpr, rel: RelExpr) -> std::result::Result<RelExpr, RelExpr> {
    if conjunct.has_subquery() {
        return Err(rel);
    }
    let cols = conjunct.cols();
    match rel {
        RelExpr::Join {
            kind,
            left,
            right,
            predicate,
        } => {
            let left_ids: BTreeSet<ColId> = left.output_col_ids().into_iter().collect();
            let right_ids: BTreeSet<ColId> = right.output_col_ids().into_iter().collect();
            let on_left = cols.iter().all(|c| left_ids.contains(c));
            let on_right = cols.iter().all(|c| right_ids.contains(c));
            if on_left {
                // Every join variant preserves or filters the left side's
                // rows; a left-only conjunct commutes below.
                let new_left = sink(conjunct, *left);
                return Ok(RelExpr::Join {
                    kind,
                    left: Box::new(new_left),
                    right,
                    predicate,
                });
            }
            match kind {
                JoinKind::Inner => {
                    if on_right {
                        let new_right = sink(conjunct, *right);
                        Ok(RelExpr::Join {
                            kind,
                            left,
                            right: Box::new(new_right),
                            predicate,
                        })
                    } else {
                        // Mixed columns: merge into the join predicate.
                        Ok(RelExpr::Join {
                            kind,
                            left,
                            right,
                            predicate: ScalarExpr::and([predicate, conjunct]),
                        })
                    }
                }
                JoinKind::LeftOuter | JoinKind::LeftSemi | JoinKind::LeftAnti => {
                    Err(RelExpr::Join {
                        kind,
                        left,
                        right,
                        predicate,
                    })
                }
            }
        }
        RelExpr::GroupBy {
            kind,
            input,
            group_cols,
            aggs,
        } => {
            // §3.1: a filter moves below a GroupBy iff its columns are
            // functionally determined by the grouping columns — here the
            // conservative, syntactic version: columns ⊆ grouping columns.
            if matches!(kind, GroupKind::Vector | GroupKind::Local)
                && !group_cols.is_empty()
                && cols.iter().all(|c| group_cols.contains(c))
            {
                let new_input = sink(conjunct, *input);
                Ok(RelExpr::GroupBy {
                    kind,
                    input: Box::new(new_input),
                    group_cols,
                    aggs,
                })
            } else {
                Err(RelExpr::GroupBy {
                    kind,
                    input,
                    group_cols,
                    aggs,
                })
            }
        }
        RelExpr::Select { input, predicate } => match try_push(conjunct, *input) {
            Ok(updated) => Ok(RelExpr::Select {
                input: Box::new(updated),
                predicate,
            }),
            Err(unchanged) => Err(RelExpr::Select {
                input: Box::new(unchanged),
                predicate,
            }),
        },
        RelExpr::Project { input, cols: pcols } => match try_push(conjunct, *input) {
            Ok(updated) => Ok(RelExpr::Project {
                input: Box::new(updated),
                cols: pcols,
            }),
            Err(unchanged) => Err(RelExpr::Project {
                input: Box::new(unchanged),
                cols: pcols,
            }),
        },
        // A conjunct over the outer side's columns commutes below any
        // Apply variant: σ_c(R A⊗ E) = (σ_c R) A⊗ E.
        RelExpr::Apply { kind, left, right } => {
            let left_ids: BTreeSet<ColId> = left.output_col_ids().into_iter().collect();
            if cols.iter().all(|c| left_ids.contains(c)) {
                let new_left = sink(conjunct, *left);
                Ok(RelExpr::Apply {
                    kind,
                    left: Box::new(new_left),
                    right,
                })
            } else {
                Err(RelExpr::Apply { kind, left, right })
            }
        }
        other => Err(other),
    }
}

/// Pushes as deep as possible; if nothing below consumes the conjunct,
/// wraps the subtree with a Select right here.
fn sink(conjunct: ScalarExpr, rel: RelExpr) -> RelExpr {
    match try_push(conjunct.clone(), rel) {
        Ok(updated) => updated,
        Err(unchanged) => RelExpr::Select {
            input: Box::new(unchanged),
            predicate: conjunct,
        },
    }
}

fn take(slot: &mut RelExpr) -> RelExpr {
    std::mem::replace(
        slot,
        RelExpr::ConstRel {
            cols: vec![],
            rows: vec![],
        },
    )
}
