//! Correlation removal: the Figure-4 identities (§2.3).
//!
//! `Apply` is pushed down the operator tree, towards the leaves, until
//! the right child is no longer parameterized off the left child — at
//! which point identities (1)/(2) replace it with an ordinary join
//! variant. Identities (7)–(9) require a key on the outer relation; a
//! key is *manufactured* with `Enumerate` when none is derivable.
//!
//! Identities that introduce additional common subexpressions — (5),
//! (6) and (7), the paper's **Class 2** — are gated behind
//! [`crate::RewriteConfig::unnest_class2`]; by default those subqueries
//! stay correlated, exactly as in the paper's implementation. `Max1Row`
//! that survived elimination marks **Class 3** and always stays
//! correlated.

use std::collections::BTreeSet;

use orthopt_common::{ColId, DataType, Result};
use orthopt_ir::props::{self};
use orthopt_ir::{
    AggDef, AggFunc, ApplyKind, ColumnMeta, GroupKind, JoinKind, MapDef, RelExpr, ScalarExpr,
};

use crate::{verify, RewriteCtx};

/// Pushes down and removes Apply operators wherever the identities
/// permit; unremovable Applies (Class 2 without the flag, Class 3)
/// remain in the tree for correlated execution.
pub fn remove_applies(rel: RelExpr, ctx: &mut RewriteCtx) -> Result<RelExpr> {
    let mut rel = rel;
    for child in rel.children_mut() {
        let taken = take(child);
        *child = remove_applies(taken, ctx)?;
    }
    loop {
        match rel {
            RelExpr::Apply { kind, left, right } => {
                let before = verify::active().then(|| RelExpr::Apply {
                    kind,
                    left: left.clone(),
                    right: right.clone(),
                });
                match push_once(kind, *left, *right, ctx)? {
                    Pushed::Changed(new, identity) => {
                        verify::step(
                            verify::RuleTag {
                                rule: "apply_removal::push_once",
                                identity,
                            },
                            before.as_ref(),
                            &new,
                        )?;
                        // Re-run children that the rewrite may have
                        // created (e.g. an Apply pushed one level down).
                        let mut new = new;
                        for child in new.children_mut() {
                            let taken = take(child);
                            *child = remove_applies(taken, ctx)?;
                        }
                        rel = new;
                        if !matches!(rel, RelExpr::Apply { .. }) {
                            return Ok(rel);
                        }
                    }
                    Pushed::Stuck(l, r) => {
                        return Ok(RelExpr::Apply {
                            kind,
                            left: l,
                            right: r,
                        })
                    }
                }
            }
            other => return Ok(other),
        }
    }
}

fn take(slot: &mut RelExpr) -> RelExpr {
    std::mem::replace(
        slot,
        RelExpr::ConstRel {
            cols: vec![],
            rows: vec![],
        },
    )
}

enum Pushed {
    /// A successful push, tagged with the Apply-removal identity number
    /// (1–9) that fired, when the rewrite is one of the paper's numbered
    /// identities; `None` for auxiliary canonicalizations.
    Changed(RelExpr, Option<u8>),
    Stuck(Box<RelExpr>, Box<RelExpr>),
}

/// True when `inner` is parameterized off `outer`.
fn correlated_with(inner: &RelExpr, outer_cols: &BTreeSet<ColId>) -> bool {
    inner.free_cols().iter().any(|c| outer_cols.contains(c))
}

/// Wraps `rel` with `Enumerate` when no key is derivable (the paper:
/// "if the relation does not have a key, one can always be manufactured
/// during execution").
fn ensure_key(rel: RelExpr, ctx: &mut RewriteCtx) -> RelExpr {
    if !props::keys(&rel).is_empty() {
        return rel;
    }
    let col = ColumnMeta::new(ctx.gen.fresh(), "rn", DataType::Int, false);
    RelExpr::Enumerate {
        input: Box::new(rel),
        col,
    }
}

fn apply(kind: ApplyKind, left: RelExpr, right: RelExpr) -> RelExpr {
    RelExpr::Apply {
        kind,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn push_once(
    kind: ApplyKind,
    outer: RelExpr,
    inner: RelExpr,
    ctx: &mut RewriteCtx,
) -> Result<Pushed> {
    let outer_cols: BTreeSet<ColId> = outer.output_col_ids().into_iter().collect();

    // Identity (1): no parameters resolved from the outer — plain join.
    if !correlated_with(&inner, &outer_cols) {
        return Ok(Pushed::Changed(
            RelExpr::Join {
                kind: kind.to_join_kind(),
                left: Box::new(outer),
                right: Box::new(inner),
                predicate: ScalarExpr::true_(),
            },
            Some(1),
        ));
    }

    match inner {
        // ---- Select ---------------------------------------------------
        RelExpr::Select { input, predicate } => {
            if !correlated_with(&input, &outer_cols) {
                // Identity (2): absorb the parameterized select as the
                // join predicate.
                return Ok(Pushed::Changed(
                    RelExpr::Join {
                        kind: kind.to_join_kind(),
                        left: Box::new(outer),
                        right: input,
                        predicate,
                    },
                    Some(2),
                ));
            }
            match kind {
                // Identity (3): pull the select above A×.
                ApplyKind::Cross => Ok(Pushed::Changed(
                    RelExpr::Select {
                        input: Box::new(apply(ApplyKind::Cross, outer, *input)),
                        predicate,
                    },
                    Some(3),
                )),
                ApplyKind::Semi | ApplyKind::Anti => {
                    match strip_for_existential(*input, vec![predicate], &outer_cols) {
                        Ok((base, preds)) => Ok(Pushed::Changed(
                            RelExpr::Join {
                                kind: kind.to_join_kind(),
                                left: Box::new(outer),
                                right: Box::new(base),
                                predicate: ScalarExpr::and(preds),
                            },
                            Some(2),
                        )),
                        Err((base, preds)) => Ok(Pushed::Stuck(
                            Box::new(outer),
                            Box::new(RelExpr::Select {
                                input: Box::new(base),
                                predicate: ScalarExpr::and(preds),
                            }),
                        )),
                    }
                }
                ApplyKind::LeftOuter => Ok(Pushed::Stuck(
                    Box::new(outer),
                    Box::new(RelExpr::Select { input, predicate }),
                )),
            }
        }

        // ---- Project (identity 4) -------------------------------------
        RelExpr::Project { input, cols } => match kind {
            ApplyKind::Cross | ApplyKind::LeftOuter => {
                let mut new_cols = outer.output_col_ids();
                new_cols.extend(cols);
                Ok(Pushed::Changed(
                    RelExpr::Project {
                        input: Box::new(apply(kind, outer, *input)),
                        cols: new_cols,
                    },
                    Some(4),
                ))
            }
            // Projection cannot change emptiness.
            ApplyKind::Semi | ApplyKind::Anti => {
                Ok(Pushed::Changed(apply(kind, outer, *input), Some(4)))
            }
        },

        // ---- Map (identity 4 for computed columns) --------------------
        RelExpr::Map { input, defs } => match kind {
            ApplyKind::Cross => Ok(Pushed::Changed(
                RelExpr::Map {
                    input: Box::new(apply(ApplyKind::Cross, outer, *input)),
                    defs,
                },
                Some(4),
            )),
            ApplyKind::LeftOuter => {
                // Pulling Map above an outerjoin-Apply is only valid when
                // each computed column is NULL on NULL-padded rows
                // (strictness) — otherwise padding would differ.
                let inner_cols: BTreeSet<ColId> = input.output_col_ids().into_iter().collect();
                if defs
                    .iter()
                    .all(|d| props::always_null_when(&d.expr, &inner_cols))
                {
                    Ok(Pushed::Changed(
                        RelExpr::Map {
                            input: Box::new(apply(ApplyKind::LeftOuter, outer, *input)),
                            defs,
                        },
                        Some(4),
                    ))
                } else {
                    Ok(Pushed::Stuck(
                        Box::new(outer),
                        Box::new(RelExpr::Map { input, defs }),
                    ))
                }
            }
            // Computed columns cannot change emptiness.
            ApplyKind::Semi | ApplyKind::Anti => {
                Ok(Pushed::Changed(apply(kind, outer, *input), Some(4)))
            }
        },

        // ---- Scalar GroupBy (identity 9) ------------------------------
        RelExpr::GroupBy {
            kind: GroupKind::Scalar,
            input,
            aggs,
            ..
        } if matches!(kind, ApplyKind::Cross | ApplyKind::LeftOuter) => {
            // Scalar aggregation returns exactly one row, so A× and
            // A^LOJ coincide here.
            let outer = ensure_key(outer, ctx);
            let group_cols = outer.output_col_ids();
            let (input, aggs) = fix_aggs_for_outerjoin(*input, aggs, ctx);
            Ok(Pushed::Changed(
                RelExpr::GroupBy {
                    kind: GroupKind::Vector,
                    input: Box::new(apply(ApplyKind::LeftOuter, outer, input)),
                    group_cols,
                    aggs,
                },
                Some(9),
            ))
        }

        // ---- Vector / Local GroupBy (identity 8) ----------------------
        RelExpr::GroupBy {
            kind: gk @ (GroupKind::Vector | GroupKind::Local),
            input,
            group_cols,
            aggs,
        } => match kind {
            ApplyKind::Cross => {
                let outer = ensure_key(outer, ctx);
                let mut new_groups = outer.output_col_ids();
                new_groups.extend(group_cols);
                Ok(Pushed::Changed(
                    RelExpr::GroupBy {
                        kind: gk,
                        input: Box::new(apply(ApplyKind::Cross, outer, *input)),
                        group_cols: new_groups,
                        aggs,
                    },
                    Some(8),
                ))
            }
            // Vector aggregation is empty exactly when its input is:
            // existential tests ignore the aggregates entirely.
            ApplyKind::Semi | ApplyKind::Anti => {
                Ok(Pushed::Changed(apply(kind, outer, *input), Some(8)))
            }
            ApplyKind::LeftOuter => Ok(Pushed::Stuck(
                Box::new(outer),
                Box::new(RelExpr::GroupBy {
                    kind: gk,
                    input,
                    group_cols,
                    aggs,
                }),
            )),
        },

        // ---- UnionAll (identity 5, Class 2) ---------------------------
        RelExpr::UnionAll {
            left,
            right,
            cols,
            left_map,
            right_map,
        } if kind == ApplyKind::Cross && ctx.config.unnest_class2 => {
            // (R A× E1) ∪ (R A× E2): R is duplicated verbatim — a common
            // subexpression. Output gains R's columns on both branches.
            let outer_ids = outer.output_col_ids();
            let outer_metas = outer.output_cols();
            let mut new_cols = outer_metas;
            new_cols.extend(cols);
            let mut new_left_map = outer_ids.clone();
            new_left_map.extend(left_map);
            let mut new_right_map = outer_ids;
            new_right_map.extend(right_map);
            Ok(Pushed::Changed(
                RelExpr::UnionAll {
                    left: Box::new(apply(ApplyKind::Cross, outer.clone(), *left)),
                    right: Box::new(apply(ApplyKind::Cross, outer, *right)),
                    cols: new_cols,
                    left_map: new_left_map,
                    right_map: new_right_map,
                },
                Some(5),
            ))
        }

        // ---- Except (identity 6, Class 2) ------------------------------
        RelExpr::Except {
            left,
            right,
            right_map,
        } if kind == ApplyKind::Cross && ctx.config.unnest_class2 => {
            let outer_ids = outer.output_col_ids();
            let mut new_right_map = outer_ids;
            new_right_map.extend(right_map);
            Ok(Pushed::Changed(
                RelExpr::Except {
                    left: Box::new(apply(ApplyKind::Cross, outer.clone(), *left)),
                    right: Box::new(apply(ApplyKind::Cross, outer, *right)),
                    right_map: new_right_map,
                },
                Some(6),
            ))
        }

        // ---- Join -----------------------------------------------------
        RelExpr::Join {
            kind: jk,
            left: e1,
            right: e2,
            predicate,
        } => push_through_join(kind, outer, jk, *e1, *e2, predicate, ctx),

        // Existential tests over UNION ALL distribute without touching
        // the aggregates: emptiness of a union is emptiness of both
        // branches (anti chains; semi via bag difference, Class 2).
        RelExpr::UnionAll { left, right, .. } if kind == ApplyKind::Anti => Ok(Pushed::Changed(
            apply(
                ApplyKind::Anti,
                apply(ApplyKind::Anti, outer, *left),
                *right,
            ),
            Some(5),
        )),
        RelExpr::UnionAll { left, right, .. }
            if kind == ApplyKind::Semi && ctx.config.unnest_class2 =>
        {
            // semi(R,E) = R ∖ anti(R,E): every R row is in exactly one.
            let anti = apply(
                ApplyKind::Anti,
                apply(ApplyKind::Anti, outer.clone(), *left),
                *right,
            );
            let right_map = outer.output_col_ids();
            Ok(Pushed::Changed(
                RelExpr::Except {
                    left: Box::new(outer),
                    right: Box::new(anti),
                    right_map,
                },
                Some(5),
            ))
        }

        // ---- Max1Row: Class 3, stays correlated ------------------------
        other @ (RelExpr::Max1Row { .. }
        | RelExpr::Apply { .. }
        | RelExpr::SegmentApply { .. }
        | RelExpr::SegmentRef { .. }
        | RelExpr::Enumerate { .. }
        | RelExpr::GroupBy { .. }
        | RelExpr::UnionAll { .. }
        | RelExpr::Except { .. }
        | RelExpr::Get(_)
        | RelExpr::ConstRel { .. }) => {
            // Last resort for outerjoin-Apply (Class 2): compensate the
            // padding explicitly —
            //   R A^LOJ E = (R A× E) ∪ ((R A^anti E) × NULLs)
            // — after which the A× and A^anti sides push further.
            if kind == ApplyKind::LeftOuter
                && ctx.config.unnest_class2
                && !matches!(other, RelExpr::Max1Row { .. } | RelExpr::Apply { .. })
            {
                return Ok(Pushed::Changed(loj_compensation(outer, other, ctx), None));
            }
            Ok(Pushed::Stuck(Box::new(outer), Box::new(other)))
        }
    }
}

/// `R A^LOJ E` as a union of the matching side and the NULL-padded
/// non-matching side (introduces common subexpressions — Class 2).
fn loj_compensation(outer: RelExpr, inner: RelExpr, ctx: &mut RewriteCtx) -> RelExpr {
    let outer_metas = outer.output_cols();
    let inner_metas = inner.output_cols();
    let matched = apply(ApplyKind::Cross, outer.clone(), inner.clone());
    let unmatched = apply(ApplyKind::Anti, outer, inner);
    // NULL columns for the padded side, under fresh ids.
    let null_defs: Vec<MapDef> = inner_metas
        .iter()
        .map(|m| MapDef {
            col: ColumnMeta::new(ctx.gen.fresh(), m.name.clone(), m.ty, true),
            expr: ScalarExpr::Literal(orthopt_common::Value::Null),
        })
        .collect();
    let padded_ids: Vec<ColId> = null_defs.iter().map(|d| d.col.id).collect();
    let padded = RelExpr::Map {
        input: Box::new(unmatched),
        defs: null_defs,
    };
    let mut cols: Vec<ColumnMeta> = outer_metas.clone();
    cols.extend(inner_metas.iter().cloned().map(|mut m| {
        m.nullable = true;
        m
    }));
    let outer_ids: Vec<ColId> = outer_metas.iter().map(|m| m.id).collect();
    let mut left_map = outer_ids.clone();
    left_map.extend(inner_metas.iter().map(|m| m.id));
    let mut right_map = outer_ids;
    right_map.extend(padded_ids);
    RelExpr::UnionAll {
        left: Box::new(matched),
        right: Box::new(padded),
        cols,
        left_map,
        right_map,
    }
}

/// Identity (9)'s aggregate fix-up: the rewrite is valid only for
/// aggregates with `agg(∅) = agg({NULL})`. `COUNT(*)` violates it, so a
/// non-nullable *probe* column is manufactured on the inner side and
/// `COUNT(*)` becomes `COUNT(probe)`; non-strict aggregate arguments
/// (e.g. constants) are guarded with `CASE WHEN probe IS NULL`.
fn fix_aggs_for_outerjoin(
    input: RelExpr,
    aggs: Vec<AggDef>,
    ctx: &mut RewriteCtx,
) -> (RelExpr, Vec<AggDef>) {
    let inner_cols: BTreeSet<ColId> = input.output_col_ids().into_iter().collect();
    let needs_probe = aggs.iter().any(|a| {
        a.func == AggFunc::CountStar
            || a.arg
                .as_ref()
                .is_some_and(|arg| !props::always_null_when(arg, &inner_cols))
    });
    if !needs_probe {
        return (input, aggs);
    }
    let probe = ColumnMeta::new(ctx.gen.fresh(), "probe", DataType::Int, false);
    // The probe Map is deliberately non-strict, so it must sit *below*
    // the correlated selects: otherwise it would block the Apply push
    // it exists to enable.
    let probed = insert_probe(
        input,
        MapDef {
            col: probe.clone(),
            expr: ScalarExpr::lit(1i64),
        },
    );
    let guarded = aggs
        .into_iter()
        .map(|mut a| {
            if a.func == AggFunc::CountStar {
                a.func = AggFunc::Count;
                a.arg = Some(ScalarExpr::col(probe.id));
            } else if let Some(arg) = a.arg.take() {
                if props::always_null_when(&arg, &inner_cols) {
                    a.arg = Some(arg);
                } else {
                    a.arg = Some(ScalarExpr::Case {
                        operand: None,
                        whens: vec![(
                            ScalarExpr::IsNull {
                                expr: Box::new(ScalarExpr::col(probe.id)),
                                negated: false,
                            },
                            ScalarExpr::Literal(orthopt_common::Value::Null),
                        )],
                        else_: Some(Box::new(arg)),
                    });
                }
            }
            a
        })
        .collect();
    (probed, guarded)
}

/// Sinks a probe-column definition below selects (and through projects)
/// so the remaining correlated operators above it can still be absorbed
/// by identity (2).
fn insert_probe(rel: RelExpr, def: MapDef) -> RelExpr {
    match rel {
        RelExpr::Select { input, predicate } => RelExpr::Select {
            input: Box::new(insert_probe(*input, def)),
            predicate,
        },
        RelExpr::Project { input, mut cols } => {
            cols.push(def.col.id);
            RelExpr::Project {
                input: Box::new(insert_probe(*input, def)),
                cols,
            }
        }
        RelExpr::Map { input, defs } => RelExpr::Map {
            input: Box::new(insert_probe(*input, def)),
            defs,
        },
        other => RelExpr::Map {
            input: Box::new(other),
            defs: vec![def],
        },
    }
}

/// Collects predicates through Select/Map/Project down to a base; for
/// semijoin/antijoin Applies row multiplicity is irrelevant, so Maps
/// are substituted away and Projects dropped. Returns `Ok` when the
/// base is uncorrelated with the outer, `Err` with the re-assembled
/// pieces otherwise.
#[allow(clippy::type_complexity, clippy::result_large_err)]
fn strip_for_existential(
    rel: RelExpr,
    mut preds: Vec<ScalarExpr>,
    outer_cols: &BTreeSet<ColId>,
) -> std::result::Result<(RelExpr, Vec<ScalarExpr>), (RelExpr, Vec<ScalarExpr>)> {
    let mut current = rel;
    loop {
        match current {
            RelExpr::Select { input, predicate } => {
                preds.extend(predicate.conjuncts());
                current = *input;
            }
            RelExpr::Project { input, .. } => {
                current = *input;
            }
            RelExpr::Map { input, defs } => {
                let map: std::collections::HashMap<ColId, ScalarExpr> =
                    defs.into_iter().map(|d| (d.col.id, d.expr)).collect();
                for p in &mut preds {
                    p.substitute(&map);
                }
                current = *input;
            }
            base => {
                if correlated_with(&base, outer_cols) || preds.iter().any(ScalarExpr::has_subquery)
                {
                    return Err((base, preds));
                }
                return Ok((base, preds));
            }
        }
    }
}

/// Apply pushed through a join child (the uncorrelated side commutes
/// out; two correlated sides form identity (7), Class 2).
fn push_through_join(
    kind: ApplyKind,
    outer: RelExpr,
    jk: JoinKind,
    e1: RelExpr,
    e2: RelExpr,
    predicate: ScalarExpr,
    ctx: &mut RewriteCtx,
) -> Result<Pushed> {
    let outer_cols: BTreeSet<ColId> = outer.output_col_ids().into_iter().collect();
    let c1 = correlated_with(&e1, &outer_cols);
    let c2 = correlated_with(&e2, &outer_cols)
        || predicate
            .cols()
            .iter()
            .any(|c| outer_cols.contains(c) && !e1.produced_cols().contains(c));

    match (kind, jk) {
        (ApplyKind::Cross, JoinKind::Inner) => {
            if c1 && !c2 && predicate_stays(&predicate, &outer_cols) {
                // (R A× E1) ⋈p E2
                return Ok(Pushed::Changed(
                    RelExpr::Join {
                        kind: JoinKind::Inner,
                        left: Box::new(apply(ApplyKind::Cross, outer, e1)),
                        right: Box::new(e2),
                        predicate,
                    },
                    Some(7),
                ));
            }
            if !c1 && c2 && predicate_stays(&predicate, &outer_cols) {
                // (R A× E2) ⋈p E1 — commute; column order restored above.
                return Ok(Pushed::Changed(
                    RelExpr::Join {
                        kind: JoinKind::Inner,
                        left: Box::new(apply(ApplyKind::Cross, outer, e2)),
                        right: Box::new(e1),
                        predicate,
                    },
                    Some(7),
                ));
            }
            if !predicate.is_true() {
                // Canonicalize σp(E1 × E2) and let identity (3) take it.
                return Ok(Pushed::Changed(
                    apply(
                        ApplyKind::Cross,
                        outer,
                        RelExpr::Select {
                            input: Box::new(RelExpr::Join {
                                kind: JoinKind::Inner,
                                left: Box::new(e1),
                                right: Box::new(e2),
                                predicate: ScalarExpr::true_(),
                            }),
                            predicate,
                        },
                    ),
                    None,
                ));
            }
            if ctx.config.unnest_class2 {
                // Identity (7): R A× (E1 × E2) =
                //   (R A× E1) ⋈_{R.key} (R' A× E2'), R' a fresh copy.
                let outer = ensure_key(outer, ctx);
                let key = props::keys(&outer)
                    .into_iter()
                    .min_by_key(BTreeSet::len)
                    .expect("ensure_key guarantees a key");
                let (outer2, rename) = outer.clone_with_fresh_cols(&mut ctx.gen);
                let mut e2 = e2;
                // Point E2's parameters at the copy.
                e2.remap_columns(&rename);
                let key_pred = ScalarExpr::and(
                    key.iter()
                        .map(|c| ScalarExpr::eq(ScalarExpr::col(*c), ScalarExpr::col(rename[c]))),
                );
                let left = apply(ApplyKind::Cross, outer, e1);
                let right = apply(ApplyKind::Cross, outer2, e2);
                let mut out_cols = left.output_col_ids();
                let left_width = out_cols.len();
                let right_out = right.output_col_ids();
                // Keep E2's columns, drop the duplicated outer copy.
                let copy_ids: BTreeSet<ColId> = rename.values().copied().collect();
                out_cols.extend(right_out.into_iter().filter(|c| !copy_ids.contains(c)));
                let _ = left_width;
                return Ok(Pushed::Changed(
                    RelExpr::Project {
                        input: Box::new(RelExpr::Join {
                            kind: JoinKind::Inner,
                            left: Box::new(left),
                            right: Box::new(right),
                            predicate: key_pred,
                        }),
                        cols: out_cols,
                    },
                    Some(7),
                ));
            }
            Ok(Pushed::Stuck(
                Box::new(outer),
                Box::new(RelExpr::Join {
                    kind: jk,
                    left: Box::new(e1),
                    right: Box::new(e2),
                    predicate,
                }),
            ))
        }
        (ApplyKind::Cross, JoinKind::LeftOuter) if c1 && !c2 => {
            // Padding happens per E1-row in both forms.
            Ok(Pushed::Changed(
                RelExpr::Join {
                    kind: JoinKind::LeftOuter,
                    left: Box::new(apply(ApplyKind::Cross, outer, e1)),
                    right: Box::new(e2),
                    predicate,
                },
                Some(7),
            ))
        }
        (ApplyKind::Cross, JoinKind::LeftSemi | JoinKind::LeftAnti) if c1 && !c2 => {
            Ok(Pushed::Changed(
                RelExpr::Join {
                    kind: jk,
                    left: Box::new(apply(ApplyKind::Cross, outer, e1)),
                    right: Box::new(e2),
                    predicate,
                },
                Some(7),
            ))
        }
        (ApplyKind::Semi | ApplyKind::Anti, JoinKind::Inner) => {
            // Canonicalize to σp(cross) and use the existential strip.
            let stripped = strip_for_existential(
                RelExpr::Select {
                    input: Box::new(RelExpr::Join {
                        kind: JoinKind::Inner,
                        left: Box::new(e1),
                        right: Box::new(e2),
                        predicate: ScalarExpr::true_(),
                    }),
                    predicate,
                },
                vec![],
                &outer_cols,
            );
            match stripped {
                Ok((base, preds)) => Ok(Pushed::Changed(
                    RelExpr::Join {
                        kind: kind.to_join_kind(),
                        left: Box::new(outer),
                        right: Box::new(base),
                        predicate: ScalarExpr::and(preds),
                    },
                    Some(2),
                )),
                Err((base, preds)) => Ok(Pushed::Stuck(
                    Box::new(outer),
                    Box::new(RelExpr::Select {
                        input: Box::new(base),
                        predicate: ScalarExpr::and(preds),
                    }),
                )),
            }
        }
        _ => Ok(Pushed::Stuck(
            Box::new(outer),
            Box::new(RelExpr::Join {
                kind: jk,
                left: Box::new(e1),
                right: Box::new(e2),
                predicate,
            }),
        )),
    }
}

/// The join predicate may reference outer parameters — after the push
/// they become plain references to the Apply side's columns, which is
/// fine as long as the predicate has no nested subqueries.
fn predicate_stays(predicate: &ScalarExpr, _outer: &BTreeSet<ColId>) -> bool {
    !predicate.has_subquery()
}
