//! Deliberately broken rule variants, for testing the verifier.
//!
//! Each function applies a *mutated* version of a real rewrite rule —
//! one with a guard removed or a bookkeeping step forgotten — and then
//! runs the same plancheck step the genuine rule runs. A correct
//! verifier must reject the result with a blame report naming the
//! mutated rule; the mutation tests in `crates/core/tests` assert
//! exactly that. Only compiled under the `plancheck` feature.

// The decline path of [`rewrite_first`] hands the unmatched node back
// through `Err` by design — no allocation, no loss of ownership.
#![allow(clippy::result_large_err)]

use orthopt_common::Result;
use orthopt_ir::{ApplyKind, JoinKind, RelExpr};

use crate::verify::{self, RuleTag};

/// Applies `f` at the first (top-down) node where it fires, leaving the
/// rest of the tree untouched. `f` returns `Ok(new)` to replace the
/// node, `Err(original)` to decline.
fn rewrite_first<F>(rel: RelExpr, f: &mut F, hit: &mut bool) -> RelExpr
where
    F: FnMut(RelExpr) -> std::result::Result<RelExpr, RelExpr>,
{
    if *hit {
        return rel;
    }
    match f(rel) {
        Ok(new) => {
            *hit = true;
            new
        }
        Err(mut rel) => {
            for child in rel.children_mut() {
                let taken = std::mem::replace(
                    child,
                    RelExpr::ConstRel {
                        cols: vec![],
                        rows: vec![],
                    },
                );
                *child = rewrite_first(taken, f, hit);
                if *hit {
                    break;
                }
            }
            rel
        }
    }
}

/// Mutated outerjoin simplification: converts every `LOJ` to an inner
/// join *unconditionally* and records no witnesses. The audit must
/// notice the conversion-count/witness mismatch.
pub fn outerjoin_drop_witness(rel: RelExpr) -> Result<RelExpr> {
    let before = rel.clone();
    let mut after = rel;
    let mut convert = |r: RelExpr| match r {
        RelExpr::Join {
            kind: JoinKind::LeftOuter,
            left,
            right,
            predicate,
        } => Ok(RelExpr::Join {
            kind: JoinKind::Inner,
            left,
            right,
            predicate,
        }),
        other => Err(other),
    };
    let mut hit = false;
    after = rewrite_first(after, &mut convert, &mut hit);
    verify::step_outerjoin(
        RuleTag::pass("mutation::outerjoin_drop_witness"),
        &before,
        &after,
        &[],
    )?;
    Ok(after)
}

/// Mutated identity (2): absorbs a parameterized Select into a join
/// without checking that the Select's *input* is uncorrelated. When it
/// is correlated, the resulting join's right child references columns
/// produced by its left sibling — a correlation-scoping leak.
pub fn select_absorb_ignoring_correlation(rel: RelExpr) -> Result<RelExpr> {
    let before = verify::snapshot(&rel);
    let mut broken = |r: RelExpr| match r {
        RelExpr::Apply { kind, left, right } => match *right {
            RelExpr::Select { input, predicate } => Ok(RelExpr::Join {
                kind: kind.to_join_kind(),
                left,
                right: input,
                predicate,
            }),
            other => Err(RelExpr::Apply {
                kind,
                left,
                right: Box::new(other),
            }),
        },
        other => Err(other),
    };
    let mut hit = false;
    let after = rewrite_first(rel, &mut broken, &mut hit);
    verify::step(
        RuleTag {
            rule: "mutation::select_absorb_ignoring_correlation",
            identity: Some(2),
        },
        before.as_ref(),
        &after,
    )?;
    Ok(after)
}

/// Mutated identity (5): pushes `A×` below a `UnionAll`, extends the
/// output columns with the outer's columns but *forgets to extend the
/// branch maps* — the positional maps no longer match the output width.
pub fn union_push_forgetting_maps(rel: RelExpr) -> Result<RelExpr> {
    let before = verify::snapshot(&rel);
    let mut broken = |r: RelExpr| match r {
        RelExpr::Apply {
            kind: ApplyKind::Cross,
            left: outer,
            right,
        } => match *right {
            RelExpr::UnionAll {
                left,
                right,
                cols,
                left_map,
                right_map,
            } => {
                let mut new_cols = outer.output_cols();
                new_cols.extend(cols);
                Ok(RelExpr::UnionAll {
                    left: Box::new(RelExpr::Apply {
                        kind: ApplyKind::Cross,
                        left: outer.clone(),
                        right: left,
                    }),
                    right: Box::new(RelExpr::Apply {
                        kind: ApplyKind::Cross,
                        left: outer,
                        right,
                    }),
                    cols: new_cols,
                    left_map,
                    right_map,
                })
            }
            other => Err(RelExpr::Apply {
                kind: ApplyKind::Cross,
                left: outer,
                right: Box::new(other),
            }),
        },
        other => Err(other),
    };
    let mut hit = false;
    let after = rewrite_first(rel, &mut broken, &mut hit);
    verify::step(
        RuleTag {
            rule: "mutation::union_push_forgetting_maps",
            identity: Some(5),
        },
        before.as_ref(),
        &after,
    )?;
    Ok(after)
}

/// Mutated column pruning: projects a `GroupBy`'s input down to the
/// grouping columns alone, destroying the columns its aggregate
/// arguments still reference.
pub fn prune_destroys_agg_input(rel: RelExpr) -> Result<RelExpr> {
    let before = verify::snapshot(&rel);
    let mut broken = |r: RelExpr| match r {
        RelExpr::GroupBy {
            kind,
            input,
            group_cols,
            aggs,
        } if aggs.iter().any(|a| a.arg.is_some()) => Ok(RelExpr::GroupBy {
            kind,
            input: Box::new(RelExpr::Project {
                input,
                cols: group_cols.clone(),
            }),
            group_cols,
            aggs,
        }),
        other => Err(other),
    };
    let mut hit = false;
    let after = rewrite_first(rel, &mut broken, &mut hit);
    verify::step(
        RuleTag::pass("mutation::prune_destroys_agg_input"),
        before.as_ref(),
        &after,
    )?;
    Ok(after)
}
